//! "People You May Know" on the read-only store — §II.C's second case
//! study and the Figure II.3 data cycle.
//!
//! "This application is powered by a single store backed by the custom
//! read-only storage engine. The store saves, for every member id, a list
//! of recommended member ids, along with a score. Due to continuous
//! iterations on the prediction algorithm ... most of the scores change
//! between runs. ... This has helped us achieve an average latency in
//! sub-milliseconds for this store."
//!
//! The example runs two complete build → pull → swap cycles (two "Hadoop
//! job runs"), serves reads, then exercises the instantaneous rollback.
//!
//! Run with: `cargo run --release --example pymk_readonly`

use bytes::Bytes;
use li_commons::hist::Histogram;
use li_commons::ring::HashRing;
use li_voldemort::readonly::{ReadOnlyBuilder, ReadOnlyStore, ScratchDir};
use li_workload::datasets::{pymk_dataset, PymkRecord};
use li_workload::keys::member_key;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

const MEMBERS: u64 = 20_000;
const NODES: u16 = 3;
const REPLICATION: usize = 2;

fn records_for_run(seed: u64) -> Vec<(Bytes, Bytes)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    pymk_dataset(&mut rng, MEMBERS, 10)
        .into_iter()
        .map(|r| {
            (
                Bytes::from(member_key(r.member)),
                Bytes::from(r.to_bytes()),
            )
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let hdfs = ScratchDir::new("pymk-hdfs")?;
    let local = ScratchDir::new("pymk-local")?;
    let nodes: Vec<li_commons::ring::NodeId> =
        (0..NODES).map(li_commons::ring::NodeId).collect();
    let ring = HashRing::balanced(24, &nodes)?;
    let builder = ReadOnlyBuilder::new(ring.clone(), REPLICATION, 4);
    let stores: Vec<Arc<ReadOnlyStore>> = nodes
        .iter()
        .map(|&node| {
            Arc::new(
                ReadOnlyStore::open(
                    local.path().join(format!("node-{}", node.0)),
                    node,
                    ring.clone(),
                    REPLICATION,
                )
                .unwrap(),
            )
        })
        .collect();

    // ----- Run 1: the nightly "Hadoop" job -----------------------------
    let t = Instant::now();
    let out = builder.build(records_for_run(1), 1, hdfs.path())?;
    println!(
        "build v1: {} replica records across {} nodes in {:?}",
        out.replica_records,
        out.node_partitions.len(),
        t.elapsed()
    );
    let t = Instant::now();
    for store in &stores {
        store.pull(&out.node_dir(store_node(store)), 1, None)?;
    }
    println!("pull  v1: fetched (data files before index files) in {:?}", t.elapsed());
    let t = Instant::now();
    for store in &stores {
        store.swap(1)?;
    }
    println!("swap  v1: atomic across nodes in {:?}", t.elapsed());

    // Serve: sub-millisecond point reads via binary search on MD5 index.
    let mut hist = Histogram::new();
    for member in (0..MEMBERS).step_by(7) {
        let key = member_key(member);
        let owner_stores: Vec<&Arc<ReadOnlyStore>> = stores
            .iter()
            .filter(|s| s.get(&key).is_some())
            .collect();
        assert_eq!(owner_stores.len(), REPLICATION, "member {member}");
        let t = Instant::now();
        let value = owner_stores[0].get(&key).expect("present");
        hist.record(t.elapsed().as_nanos() as u64);
        let parsed = PymkRecord::from_bytes(member, &value).expect("parses");
        assert_eq!(parsed.recommendations.len(), 10);
    }
    println!("serve v1: point reads {}", hist.summary_ms());

    // ----- Run 2: scores change between runs ---------------------------
    let out2 = builder.build(records_for_run(2), 2, hdfs.path())?;
    for store in &stores {
        store.pull(&out2.node_dir(store_node(store)), 2, None)?;
        store.swap(2)?;
    }
    let probe = member_key(123);
    let v2_value = stores.iter().find_map(|s| s.get(&probe)).unwrap();
    println!("swap  v2: member 123 now scored by run 2");

    // ----- Data problem! Instantaneous rollback ------------------------
    for store in &stores {
        let restored = store.rollback()?;
        assert_eq!(restored, 1);
    }
    let v1_value = stores.iter().find_map(|s| s.get(&probe)).unwrap();
    assert_ne!(v1_value, v2_value, "rollback restored run-1 scores");
    println!("rollback: serving version is v1 again (old versions kept on disk)");

    println!("\npymk_readonly OK");
    Ok(())
}

fn store_node(store: &Arc<ReadOnlyStore>) -> li_commons::ring::NodeId {
    store.node()
}
