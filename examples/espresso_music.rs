//! The Espresso Music database of §IV — Figures IV.2 and IV.3 live.
//!
//! Builds the Artist/Album/Song database, exercises the hierarchical URI
//! data model, secondary-index queries, transactional multi-table posts,
//! schema evolution, and a full master failover driven by Helix.
//!
//! Run with: `cargo run --example espresso_music`

use li_commons::schema::{Field, FieldType, Record, RecordSchema, Value};
use li_espresso::{DatabaseSchema, EspressoCluster, TableSchema};
use li_sqlstore::RowKey;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Schemas (JSON-definable; built via the API here) --------------
    let album_schema = RecordSchema::new(
        "Album",
        1,
        vec![
            Field::new("year", FieldType::Long).indexed(),
            Field::new("label", FieldType::Optional(Box::new(FieldType::Str))),
        ],
    )?;
    let song_schema = RecordSchema::new(
        "Song",
        1,
        vec![Field::new("lyrics", FieldType::Str).indexed()],
    )?;
    let music = DatabaseSchema::new("Music", 12, 2)
        .with_table(TableSchema::new("Album", ["artist", "album"]), album_schema)?
        .with_table(
            TableSchema::new("Song", ["artist", "album", "song"]),
            song_schema,
        )?;

    let cluster = EspressoCluster::new(3)?;
    cluster.create_database(music)?;
    println!("Espresso cluster: 3 storage nodes, Music DB with 12 partitions x 2 replicas");

    // --- Figure IV.2: the Album table, application view ----------------
    let album = |year: i64| {
        Record::new()
            .with("year", Value::Long(year))
            .with("label", Value::Null)
    };
    for (artist, title, year) in [
        ("Akon", "Trouble", 2004),
        ("Akon", "Stadium", 2011),
        ("Babyface", "Lovers", 1986),
        ("Babyface", "A_Closer_Look", 1991),
        ("Babyface", "Face2Face", 2001),
        ("Coolio", "Steal_Hear", 2008),
    ] {
        cluster.put("Music", "Album", RowKey::new([artist, title]), &album(year))?;
    }

    // GET a collection resource.
    let babyface = cluster.get_uri("/Music/Album/Babyface")?;
    println!("\nGET /Music/Album/Babyface -> {} albums", babyface.len());
    for (key, record) in &babyface {
        println!("  {key}  year={:?}", record.get("year"));
    }

    // --- The paper's free-text query ------------------------------------
    cluster.put(
        "Music",
        "Song",
        RowKey::new(["The_Beatles", "Sgt._Pepper", "Lucy_in_the_Sky_with_Diamonds"]),
        &Record::new().with(
            "lyrics",
            Value::Str("Picture yourself in a boat on a river... Lucy in the sky with diamonds".into()),
        ),
    )?;
    cluster.put(
        "Music",
        "Song",
        RowKey::new(["The_Beatles", "Magical_Mystery_Tour", "I_am_the_Walrus"]),
        &Record::new().with("lyrics", Value::Str("I am he as you are he".into())),
    )?;
    let hits = cluster.get_uri("/Music/Song/The_Beatles?query=lyrics:\"Lucy in the sky\"")?;
    println!("\nGET /Music/Song/The_Beatles?query=lyrics:\"Lucy in the sky\"");
    for (key, _) in &hits {
        println!("  -> {key}");
    }
    assert_eq!(hits.len(), 1);

    // --- Transactional multi-table POST ---------------------------------
    cluster.post_transactional(
        "Music",
        vec![
            ("Album".into(), RowKey::new(["Etta_James", "Gold"]), album(2007)),
            (
                "Song".into(),
                RowKey::new(["Etta_James", "Gold", "At_Last"]),
                Record::new().with("lyrics", Value::Str("At last my love has come along".into())),
            ),
        ],
    )?;
    println!("\nPOST /Music/*/Etta_James (album + song, atomically) OK");

    // --- Replication + failover -----------------------------------------
    cluster.pump_replication()?;
    let (partition, master) = cluster.route("Music", "Babyface")?;
    println!("\nBabyface's partition {partition} mastered by {master}; crashing it...");
    cluster.crash_node(master)?;
    let (_, new_master) = cluster.route("Music", "Babyface")?;
    println!("Helix promoted {new_master} (slave drained the relay first)");
    let after = cluster.get_uri("/Music/Album/Babyface")?;
    assert_eq!(after.len(), 3, "no data lost in failover");
    cluster.put(
        "Music",
        "Album",
        RowKey::new(["Babyface", "The_Day"]),
        &album(1996),
    )?;
    println!(
        "writes flow on the new master: Babyface now has {} albums",
        cluster.get_uri("/Music/Album/Babyface")?.len()
    );

    println!("\nespresso_music OK");
    Ok(())
}
