//! Quickstart: the whole data infrastructure in thirty lines.
//!
//! Builds the Figure I.1 platform — primary DB, Databus, Voldemort cache,
//! search index, two Kafka clusters — and pushes one user action and one
//! activity event through every pipeline.
//!
//! Run with: `cargo run --example quickstart`

use linkedin_data_infra::DataPlatform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 4 Voldemort nodes, 2 Kafka brokers per cluster.
    let platform = DataPlatform::new(4, 2)?;

    // A member follows two companies: one OLTP transaction on the primary.
    platform.follow_company(42, 1001)?;
    platform.follow_company(42, 1002)?;
    platform.follow_company(77, 1001)?;

    // A profile edit and some activity events.
    platform.update_profile(42, "staff engineer, distributed systems")?;
    platform.track("event=page_view member=42 page=/in/profile")?;
    platform.track("event=click member=77 page=/company/1001")?;

    // Run the asynchronous pipelines (Databus consumers, Kafka mirror...).
    platform.pump()?;

    // Derived systems now agree with the primary:
    println!("member 42 follows      : {:?}", platform.followed_companies(42)?);
    println!("company 1001 followers : {:?}", platform.followers(1001)?);
    println!(
        "search 'distributed'   : {:?}",
        platform.search.search("distributed")
    );

    // The activity events reached the live cluster...
    let mut online_events = 0;
    for partition in 0..8 {
        online_events += platform.activity_consumer(partition)?.poll()?.len();
    }
    println!("online activity events : {online_events}");

    // ...and the mirrored offline cluster's warehouse.
    let loaded = platform.force_warehouse_load()?;
    println!("warehouse rows loaded  : {loaded}");

    assert_eq!(platform.followed_companies(42)?, vec![1001, 1002]);
    assert_eq!(platform.followers(1001)?, vec![42, 77]);
    println!("\nquickstart OK");
    Ok(())
}
