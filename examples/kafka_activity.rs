//! Kafka end to end — Figure V.1 plus the §V.D production pipeline.
//!
//! Three brokers, an over-partitioned topic, batching + compressing
//! producers, a consumer group that rebalances through ZooKeeper, and the
//! live → mirror → warehouse pipeline with the count-auditing scheme.
//!
//! Run with: `cargo run --release --example kafka_activity`

use li_commons::compress::Codec;
use li_kafka::audit::{AuditReconciler, AuditedProducer, AUDIT_TOPIC};
use li_kafka::mirror::{MirrorMaker, WarehouseLoader};
use li_kafka::{GroupConsumer, KafkaCluster, Producer};
use li_workload::events::activity_batch;
use li_workload::zipf::Zipfian;
use rand::SeedableRng;
use std::time::Duration;

const TOPIC: &str = "activity";
const PARTITIONS: u32 = 12;
const EVENTS: usize = 5_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Live cluster ----------------------------------------------------
    let live = KafkaCluster::new(3)?;
    live.create_topic(TOPIC, PARTITIONS)?;
    live.create_topic(AUDIT_TOPIC, 1)?;

    // Producers batch and compress (the 2/3 bandwidth saving).
    let producer = AuditedProducer::new(
        Producer::new(live.clone())
            .with_batch_size(100)
            .with_codec(Codec::Lz),
        &live,
        "frontend-7",
        Duration::from_secs(60),
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let zipf = Zipfian::ycsb(100_000);
    for line in activity_batch(&mut rng, &zipf, EVENTS) {
        producer.send(TOPIC, &line)?;
    }
    producer.publish_audit_and_flush()?;
    println!("produced {EVENTS} activity events (batched, compressed)");

    // --- A consumer group splits the topic -------------------------------
    let mut alpha = GroupConsumer::join(live.clone(), "newsfeed", TOPIC, "alpha")?;
    let mut beta = GroupConsumer::join(live.clone(), "newsfeed", TOPIC, "beta")?;
    let mut gamma = GroupConsumer::join(live.clone(), "newsfeed", TOPIC, "gamma")?;
    for _ in 0..2 {
        alpha.rebalance()?;
        beta.rebalance()?;
        gamma.rebalance()?;
    }
    println!(
        "group 'newsfeed': alpha={:?} beta={:?} gamma={:?}",
        alpha.owned_partitions(),
        beta.owned_partitions(),
        gamma.owned_partitions()
    );
    let mut consumed = alpha.poll()?.len() + beta.poll()?.len() + gamma.poll()?.len();
    println!("group consumed {consumed} events across 3 members");
    assert_eq!(consumed, EVENTS);

    // gamma crashes; the survivors pick up its partitions via ZooKeeper.
    let watch = alpha.watch_membership()?;
    gamma.crash(&live);
    assert!(watch.try_recv().is_ok(), "rebalance triggered");
    for _ in 0..2 {
        alpha.rebalance()?;
        beta.rebalance()?;
    }
    println!(
        "after crash: alpha={:?} beta={:?}",
        alpha.owned_partitions(),
        beta.owned_partitions()
    );
    // New events flow only to survivors, resuming from committed offsets.
    for line in activity_batch(&mut rng, &zipf, 500) {
        producer.send(TOPIC, &line)?;
    }
    producer.publish_audit_and_flush()?;
    consumed = alpha.poll()?.len() + beta.poll()?.len();
    assert_eq!(consumed, 500, "no loss, no duplication after rebalance");
    println!("post-rebalance: survivors consumed {consumed} new events");

    // --- Mirror to the offline datacenter and load the warehouse ---------
    let offline = KafkaCluster::new(2)?;
    offline.create_topic(TOPIC, PARTITIONS)?;
    offline.create_topic(AUDIT_TOPIC, 1)?;
    let mirror = MirrorMaker::new(live.clone(), offline.clone(), [TOPIC, AUDIT_TOPIC])?;
    let copied = mirror.pump()?;
    println!("mirror copied {copied} stored messages (compressed wrappers intact)");
    let loader = WarehouseLoader::new(offline.clone(), [TOPIC], Duration::ZERO);
    let loaded = loader.run_load()?;
    println!("warehouse loaded {loaded} rows");
    assert_eq!(loaded, EVENTS + 500);

    // --- Audit: verify no data loss along the whole pipeline -------------
    for cluster_name in ["live", "offline"] {
        let cluster = if cluster_name == "live" { &live } else { &offline };
        let report = AuditReconciler::reconcile(cluster, TOPIC)?;
        let clean = report.iter().all(|w| w.clean());
        let produced: u64 = report.iter().map(|w| w.produced).sum();
        println!("audit[{cluster_name}]: {produced} produced, clean={clean}");
        assert!(clean, "audit mismatch on {cluster_name}: {report:?}");
    }

    println!("\nkafka_activity OK");
    Ok(())
}
