//! Company Follow at scale — the first Voldemort case study of §II.C.
//!
//! "Two stores to maintain a cache-like interface on top of our primary
//! storage Oracle — the first one stores member id to list of company ids
//! followed by the user and the second one stores company id to a list of
//! member ids that follow it. Both stores are fed by a Databus relay ...
//! Both the stores have a Zipfian distribution for their data size, but
//! still manage to retrieve large values with an average latency of 4 ms."
//!
//! This example loads a Zipfian-sized dataset through the full
//! primary → Databus → Voldemort pipeline, then measures cache-read
//! latency against value size.
//!
//! Run with: `cargo run --release --example company_follow`

use li_commons::hist::Histogram;
use li_workload::datasets::company_follow_dataset;
use linkedin_data_infra::DataPlatform;
use rand::SeedableRng;
use std::time::Instant;

const MEMBERS: u64 = 2_000;
const COMPANIES: u64 = 300;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = DataPlatform::new(4, 1)?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    // Synthesize Zipfian follow relationships and feed them through the
    // primary as real follow transactions (sampled subset for runtime).
    let (member_rows, company_rows) =
        company_follow_dataset(&mut rng, MEMBERS, COMPANIES, 400);
    println!(
        "dataset: {} members, {} companies (Zipfian list sizes: largest company value {} bytes)",
        member_rows.len(),
        company_rows.len(),
        company_rows.iter().map(|c| c.value.len()).max().unwrap_or(0),
    );

    let started = Instant::now();
    let mut follows = 0u64;
    for (member_idx, row) in member_rows.iter().enumerate().take(500) {
        let _ = row;
        // Re-derive a small follow set per member from the dataset shape.
        for company in 0..(1 + member_idx % 7) as u64 {
            platform
                .follow_company(member_idx as u64, (member_idx as u64 * 37 + company * 13) % COMPANIES)?;
            follows += 1;
        }
    }
    platform.pump()?;
    println!(
        "loaded {follows} follow actions through primary+Databus in {:?}",
        started.elapsed()
    );

    // Measure the cache read path (the paper's 4 ms claim is testbed
    // latency; here we check the *shape*: large Zipfian values still serve
    // at in-memory latencies).
    let mut hist = Histogram::new();
    let mut hits = 0;
    for company in 0..COMPANIES {
        let t = Instant::now();
        let followers = platform.followers(company)?;
        hist.record(t.elapsed().as_nanos() as u64);
        if !followers.is_empty() {
            hits += 1;
        }
    }
    println!("company-followers reads: {}", hist.summary_ms());
    println!("companies with followers: {hits}/{COMPANIES}");

    // Spot-check cache vs primary agreement.
    let member = 3u64;
    let cached = platform.followed_companies(member)?;
    println!("member {member} follows (from Voldemort cache): {cached:?}");
    assert!(!cached.is_empty());
    println!("\ncompany_follow OK");
    Ok(())
}
