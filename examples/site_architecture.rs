//! Figure I.1, end to end: "a very high-level overview of LinkedIn's
//! architecture, focusing on the core data systems."
//!
//! One simulated browsing session exercises every tier:
//!
//! 1. user actions commit to the **primary data store** (live storage);
//! 2. **Databus** transports the changes to subscribers — the Voldemort
//!    **cache stores** and the people-**search** index;
//! 3. activity events stream through **Kafka** to online consumers;
//! 4. the offline mirror + warehouse loader stand in for the **batch**
//!    (Hadoop/warehouse) tier;
//! 5. a late-joining Databus subscriber bootstraps via **snapshot** —
//!    the long look-back path the bootstrap server exists for.
//!
//! Run with: `cargo run --example site_architecture`

use li_databus::{ConsumerCallback, DatabusClient, ServerFilter, Window};
use linkedin_data_infra::platform::ACTIVITY_TOPIC;
use linkedin_data_infra::DataPlatform;
use parking_lot::Mutex;
use std::sync::Arc;

/// A "read replica" subscriber that joins late and must bootstrap.
#[derive(Default)]
struct LateReplica {
    rows_seen: Mutex<usize>,
    snapshots: Mutex<usize>,
}

impl ConsumerCallback for LateReplica {
    fn on_window(&self, window: &Window) -> Result<(), String> {
        *self.rows_seen.lock() += window.changes.len();
        Ok(())
    }
    fn on_snapshot_start(&self) {
        *self.snapshots.lock() += 1;
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = DataPlatform::new(4, 2)?;
    println!("== The site is up: primary + Databus + Voldemort + search + 2x Kafka ==\n");

    // -- 1. Users act: profile edits and company follows (data tier) ----
    for member in 0..50u64 {
        platform.update_profile(member, &format!("engineer number {member} in systems"))?;
        platform.follow_company(member, member % 5)?;
        platform.follow_company(member, 100 + member % 3)?;
    }
    println!("primary store committed {} transactions", platform.primary.last_scn());

    // -- 2. Streams fan the changes out ----------------------------------
    platform.pump()?;
    println!("relay buffered {} windows; bootstrap applied up to scn {}",
        platform.relay.window_count(),
        platform.bootstrap.applied_scn());
    println!("company 2's followers (Voldemort cache): {:?}", platform.followers(2)?);
    println!("search 'engineer systems' hits: {}", platform.search.search("engineer systems").len());

    // -- 3. Activity events stream through Kafka -------------------------
    for member in 0..50u64 {
        platform.track(&format!("event=page_view member={member} page=/feed"))?;
    }
    platform.pump()?;
    let mut online = 0;
    for partition in 0..8 {
        online += platform.activity_consumer(partition)?.poll()?.len();
    }
    println!("online Kafka consumers saw {online} activity events");

    // -- 4. The offline tier (mirror + warehouse load job) ---------------
    let loaded = platform.force_warehouse_load()?;
    println!("offline warehouse loaded {loaded} events (via mirrored cluster)");

    // -- 5. A brand-new subscriber bootstraps from a snapshot ------------
    let replica = Arc::new(LateReplica::default());
    let late_client = DatabusClient::new(
        platform.relay.clone(),
        Some(platform.bootstrap.clone()),
        replica.clone(),
    );
    // Push enough new traffic that the relay's window on history is not
    // enough... for this small run the relay still holds everything, so
    // force the late-joiner down the bootstrap path by rewinding to 0 on a
    // pre-trimmed buffer -- here we simply consume; either path must yield
    // a complete view.
    late_client.catch_up()?;
    println!(
        "late subscriber caught up: {} rows ({} snapshot loads)",
        *replica.rows_seen.lock(),
        *replica.snapshots.lock()
    );

    assert!(online == 50);
    assert_eq!(loaded, 50);
    assert!(*replica.rows_seen.lock() > 0);
    let _ = ACTIVITY_TOPIC;

    // -- 5b. Relay fan-out: consumers share the buffer's memory ----------
    // §III.C promises "hundreds of consumers per relay with no additional
    // impact on the source database". Serve the full stream to 100 more
    // subscribers: each gets zero-copy shared views of the same frozen
    // windows, and the source sees none of it.
    let ingested_before = platform.relay.windows_ingested();
    let mut shared_views = 0usize;
    for _ in 0..100 {
        let views = platform
            .relay
            .events_after_shared(0, usize::MAX, &ServerFilter::all())?;
        shared_views += views.iter().filter(|v| v.is_shared()).count();
    }
    assert_eq!(platform.relay.windows_ingested(), ingested_before, "no source impact");
    println!(
        "fan-out: 100 extra subscribers served {shared_views} shared (zero-copy) windows; \
         relay reads served: {}",
        platform.relay.reads_served()
    );

    // -- 6. The run's observability: one snapshot over every tier --------
    println!("\n== per-run metrics (site-wide registry) ==\n");
    println!("{}", platform.metrics_snapshot().to_text_table());
    println!("site_architecture OK");
    Ok(())
}
