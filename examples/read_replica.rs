//! Read replicas over Databus — §III.A: "Among these applications are ...
//! Read Replicas", and §III.B's motivation: "in the case of replication
//! for read scaling, pipeline latency can lead to higher front-end
//! latencies since more traffic will go to the master for the freshest
//! results."
//!
//! A primary database fans out through one relay to several replica
//! databases; a stale replica that falls off the relay catches up through
//! the bootstrap server's consolidated delta; and a declarative
//! transformation feeds a *sanitized* replica for analytics.
//!
//! Run with: `cargo run --example read_replica`

use li_databus::{
    BootstrapServer, ConsumerCallback, DatabusClient, LogShippingAdapter, Relay, TransformRule,
    Transformation, Window,
};
use li_sqlstore::{Database, RowKey};
use parking_lot::Mutex;
use std::sync::Arc;

/// A replica database maintained by a Databus consumer.
struct ReplicaConsumer {
    db: Arc<Database>,
    windows: Mutex<u64>,
}

impl ReplicaConsumer {
    fn new(name: &str, tables: &[&str]) -> Arc<Self> {
        let db = Arc::new(Database::new(name));
        for t in tables {
            db.create_table(*t).unwrap();
        }
        Arc::new(ReplicaConsumer {
            db,
            windows: Mutex::new(0),
        })
    }
}

impl ConsumerCallback for ReplicaConsumer {
    fn on_window(&self, window: &Window) -> Result<(), String> {
        self.db
            .apply_changes(&window.changes)
            .map_err(|e| e.to_string())?;
        *self.windows.lock() += 1;
        Ok(())
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Primary + relay + bootstrap.
    let primary = Database::new("primary");
    primary.create_table("member_profile")?;
    primary.create_table("salary")?;
    let relay = Arc::new(Relay::new("primary", 128 * 1024)); // small: evicts
    LogShippingAdapter::attach(&primary, relay.clone());
    let bootstrap = Arc::new(BootstrapServer::new());

    // Replica 1: full read replica (serves read traffic near the edge).
    let replica = ReplicaConsumer::new("read-replica-1", &["member_profile", "salary"]);
    let replica_client = DatabusClient::new(relay.clone(), Some(bootstrap.clone()), replica.clone());

    // Replica 2: analytics replica behind a privacy transformation.
    let analytics = ReplicaConsumer::new("analytics", &["member_profile", "salary"]);
    let analytics_client = DatabusClient::new(relay.clone(), Some(bootstrap.clone()), analytics.clone())
        .with_transformation(Transformation::new().with(TransformRule::RedactValues {
            table: "salary".into(),
        }));

    // Write a first wave and replicate.
    for i in 0..500u32 {
        primary.put_one(
            "member_profile",
            RowKey::single(format!("m{i}")),
            format!("profile text {i}").into_bytes(),
            1,
        )?;
        primary.put_one(
            "salary",
            RowKey::single(format!("m{i}")),
            format!("{}", 100_000 + i).into_bytes(),
            1,
        )?;
        bootstrap.catch_up_from(&relay)?;
    }
    bootstrap.apply_log();
    replica_client.catch_up()?;
    analytics_client.catch_up()?;
    println!(
        "replica-1: {} rows in member_profile, {} in salary",
        replica.db.row_count("member_profile")?,
        replica.db.row_count("salary")?
    );
    let salary = analytics.db.get("salary", &RowKey::single("m7"))?.unwrap();
    println!(
        "analytics salary for m7: {:?} (redacted by the declarative transform)",
        String::from_utf8_lossy(&salary.value)
    );
    assert_eq!(salary.value.as_ref(), b"<redacted>");

    // Replica 1 goes down for maintenance; the primary keeps committing
    // until the relay has evicted what the replica missed.
    let stall_at = replica_client.checkpoint();
    for i in 500..3_000u32 {
        primary.put_one(
            "member_profile",
            RowKey::single(format!("m{}", i % 700)),
            format!("updated text {i} ").repeat(12).into_bytes(),
            1,
        )?;
        bootstrap.catch_up_from(&relay)?;
    }
    bootstrap.apply_log();
    assert!(relay.oldest_scn() > stall_at + 1, "relay evicted the gap");

    // Catch-up goes through the bootstrap server's consolidated delta —
    // "fast playback" instead of replaying 2.5K raw events.
    replica_client.catch_up()?;
    let stats = replica_client.stats();
    println!(
        "replica-1 recovered via bootstrap: {} consolidated delta(s), {} relay windows total",
        stats.deltas, stats.windows_from_relay
    );
    assert_eq!(stats.deltas, 1);

    // Replica now agrees with the primary on a spot-checked row.
    let primary_row = primary.get("member_profile", &RowKey::single("m100"))?.unwrap();
    let replica_row = replica
        .db
        .get("member_profile", &RowKey::single("m100"))?
        .unwrap();
    assert_eq!(primary_row.value, replica_row.value);
    println!("replica-1 row m100 matches primary after fast playback");

    println!("\nread_replica OK");
    Ok(())
}
