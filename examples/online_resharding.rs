//! Online resharding under live traffic (ROADMAP item 4 / claim C-25).
//!
//! The paper's serving systems assume static partition maps; this run
//! moves partitions *while the closed-loop site workload hammers every
//! tier*: two Voldemort partitions and one Espresso profile partition
//! migrate off node 0 mid-load through the phased coordinator —
//! snapshot copy → delta catch-up → dual-write + shadow-read
//! verification → atomic cutover flip — and every SLO/conservation
//! gate must stay green: reads never block, acked writes are never
//! lost, and each started migration cuts over exactly once with zero
//! shadow-verification refusals.
//!
//! Run with: `cargo run --release --example online_resharding`

use linkedin_data_infra::site_bench::{SiteBench, SiteBenchConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = SiteBenchConfig::smoke(1500, 3, 400, 42);
    config.migrate_partitions = 2;

    println!(
        "preparing: {} members, {} drivers x {} ops, {} Voldemort partition moves + 1 Espresso move in flight",
        config.graph.members, config.drivers, config.ops_per_driver, config.migrate_partitions
    );
    let bench = SiteBench::prepare(config)?;
    let report = bench.run()?;

    println!("\n{}", report.summary());

    println!("migration phases (cluster-lifetime counters):");
    for name in [
        "migration.snapshot_items",
        "migration.delta_items",
        "migration.delta_rounds",
        "migration.shadow_reads",
        "migration.shadow_mismatch",
        "migration.cutover_flips",
        "migration.cutover_refusals",
    ] {
        println!(
            "  {name:<28} {}",
            report.snapshot.counter(name).unwrap_or(0)
        );
    }

    if !report.all_gates_pass() {
        return Err("a gate failed with migration in flight".into());
    }
    println!("\nall gates green with 3 live partition moves mid-load");
    Ok(())
}
