//! Minimal `crossbeam`-compatible channels.
//!
//! Provides the `crossbeam::channel` subset the workspace uses: unbounded
//! and bounded multi-producer multi-consumer channels whose `Sender` and
//! `Receiver` both implement `Clone`. Backed by a mutex-protected queue
//! plus condvars; throughput is adequate for the simulation workloads
//! here.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::Duration;

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        /// Signalled when a slot frees up in a bounded channel.
        vacancy: Condvar,
        /// `None` = unbounded.
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned when sending on a channel with no receivers left.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and currently full.
        Full(T),
        /// All receivers have disconnected.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders have disconnected and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] / [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvError {
        /// The wait timed out.
        Timeout,
        /// All senders have disconnected and the queue is drained.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel empty"),
                TryRecvError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    fn shared<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            vacancy: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        shared(None)
    }

    /// Creates a bounded channel holding at most `capacity` values
    /// (minimum 1). [`Sender::send`] blocks while full — backpressure —
    /// and [`Sender::try_send`] fails fast with [`TrySendError::Full`].
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        shared(Some(capacity.max(1)))
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, blocking while a bounded channel is full;
        /// fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(cap) = self.0.capacity {
                while queue.len() >= cap {
                    if self.0.receivers.load(Ordering::Acquire) == 0 {
                        return Err(SendError(value));
                    }
                    queue = self
                        .0
                        .vacancy
                        .wait(queue)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
            if self.0.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            queue.push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }

        /// Enqueues without blocking: a full bounded channel returns
        /// [`TrySendError::Full`] (the caller's coalescing point).
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            if self.0.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            let mut queue = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(cap) = self.0.capacity {
                if queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            queue.push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
            match queue.pop_front() {
                Some(value) => {
                    self.0.vacancy.notify_one();
                    Ok(value)
                }
                None if self.0.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a value arrives or `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut queue = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(value) = queue.pop_front() {
                    self.0.vacancy.notify_one();
                    return Ok(value);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvError::Timeout);
                }
                let (q, _) = self
                    .0
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = q;
            }
        }

        /// Drains everything currently queued without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::AcqRel);
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.0.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Blocked bounded senders must observe the disconnect.
                self.0.vacancy.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_try_recv() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnected_after_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_with_no_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn bounded_try_send_reports_full() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.try_recv(), Ok(1));
            tx.try_send(3).unwrap();
        }

        #[test]
        fn bounded_send_blocks_until_vacancy() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let h = std::thread::spawn(move || {
                tx.send(2).unwrap(); // blocks until the reader drains
                2
            });
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(h.join().unwrap(), 2);
            assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(2));
        }

        #[test]
        fn bounded_blocked_sender_unblocks_on_receiver_drop() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let h = std::thread::spawn(move || tx.send(2));
            std::thread::sleep(Duration::from_millis(20));
            drop(rx);
            assert_eq!(h.join().unwrap(), Err(SendError(2)));
        }

        #[test]
        fn cloned_receivers_share_queue() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx1.try_recv(), Ok(1));
            assert_eq!(rx2.try_recv(), Ok(2));
        }
    }
}
