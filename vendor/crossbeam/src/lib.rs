//! Minimal `crossbeam`-compatible channels.
//!
//! Provides the `crossbeam::channel` subset the workspace uses: unbounded
//! multi-producer multi-consumer channels whose `Sender` and `Receiver`
//! both implement `Clone`. Backed by a mutex-protected queue plus a
//! condvar; throughput is adequate for the simulation workloads here.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::Duration;

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned when sending on a channel with no receivers left.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders have disconnected and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] / [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvError {
        /// The wait timed out.
        Timeout,
        /// All senders have disconnected and the queue is drained.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel empty"),
                TryRecvError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.0
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
            match queue.pop_front() {
                Some(value) => Ok(value),
                None if self.0.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a value arrives or `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut queue = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvError::Timeout);
                }
                let (q, _) = self
                    .0
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = q;
            }
        }

        /// Drains everything currently queued without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::AcqRel);
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_try_recv() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnected_after_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_with_no_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn cloned_receivers_share_queue() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx1.try_recv(), Ok(1));
            assert_eq!(rx2.try_recv(), Ok(2));
        }
    }
}
