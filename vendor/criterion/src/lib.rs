//! Minimal criterion-compatible benchmark harness.
//!
//! Provides the structural API the workspace's `harness = false` benches
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`]
//! / [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`criterion_group!`], [`criterion_main!`] — with a simple
//! median-of-samples timer instead of criterion's full statistical engine.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so benches importing `criterion::black_box` keep working.
pub use std::hint::black_box;

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            throughput: None,
        }
    }
}

/// Units of work per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many abstract elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark identifier with a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id like `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares work-per-iteration for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Runs one parameterized benchmark closure.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let median = bencher.median();
        let rate = match (self.throughput, median.as_nanos()) {
            (Some(Throughput::Elements(n)), nanos) if nanos > 0 => {
                format!("  ({:.0} elem/s)", n as f64 * 1e9 / nanos as f64)
            }
            (Some(Throughput::Bytes(n)), nanos) if nanos > 0 => {
                format!("  ({:.1} MiB/s)", n as f64 * 1e9 / nanos as f64 / (1 << 20) as f64)
            }
            _ => String::new(),
        };
        println!("  {}/{id}: median {median:?}{rate}", self.name);
    }

    /// Closes the group (prints nothing extra; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure to time the measured body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `body`, collecting the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut body: R) {
        // One untimed warmup iteration.
        black_box(body());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(body());
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

/// Declares a benchmark group in criterion's `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                {
                    let mut criterion: $crate::Criterion = $config;
                    $target(&mut criterion);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.throughput(Throughput::Elements(1));
        group.bench_function("add", |b| b.iter(|| black_box(2u64) + 2));
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_to_completion() {
        let mut criterion = Criterion::default().sample_size(5);
        sample_bench(&mut criterion);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 42).to_string(), "f/42");
    }
}
