//! Minimal serde-shaped serialization traits over a JSON value model.
//!
//! The real serde pivots on a generic data model plus proc-macro derives;
//! neither is available offline, so this stand-in collapses the design to
//! the part the workspace needs: a [`JsonValue`] tree, [`Serialize`] /
//! [`Deserialize`] traits mapping types to and from it, and a [`JsonKey`]
//! trait for map keys (JSON object keys are strings, so integer-keyed maps
//! serialize through their decimal form, exactly as serde_json does).
//!
//! Types that previously used `#[derive(Serialize, Deserialize)]` now
//! carry short hand-written impls; the `serde_json` façade crate provides
//! the familiar `to_string` / `from_str` entry points over these traits.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A parsed JSON document.
///
/// Integers keep their signedness ([`Int`](JsonValue::Int) vs
/// [`UInt`](JsonValue::UInt)) so u64 counters round-trip exactly; floats
/// are only produced by tokens with a fraction or exponent.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer that fits i64 (all negative integers parse here).
    Int(i64),
    /// Integer above `i64::MAX`.
    UInt(u64),
    /// Number written with a fraction or exponent.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<JsonValue>),
    /// Object; insertion order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => {
                entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer value as i64, when representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(v) => Some(*v),
            JsonValue::UInt(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Integer value as u64, when non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(v) => u64::try_from(*v).ok(),
            JsonValue::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric value as f64 (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::UInt(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entry list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// One-word description used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Int(_) | JsonValue::UInt(_) => "integer",
            JsonValue::Float(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error describing an unexpected value shape.
    pub fn expected(what: &str, got: &JsonValue) -> Self {
        DeError(format!("expected {what}, got {}", got.kind()))
    }

    /// Builds an error for a missing object field.
    pub fn missing(field: &str) -> Self {
        DeError(format!("missing field `{field}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into the JSON value model.
pub trait Serialize {
    /// Converts `self` into a [`JsonValue`].
    fn to_json_value(&self) -> JsonValue;
}

/// Types reconstructible from the JSON value model.
pub trait Deserialize: Sized {
    /// Parses `Self` out of a [`JsonValue`].
    fn from_json_value(value: &JsonValue) -> Result<Self, DeError>;
}

/// Types usable as JSON object keys (serde stringifies non-string keys).
pub trait JsonKey: Sized {
    /// Renders the key as an object-key string.
    fn to_key(&self) -> String;
    /// Parses the key back from its string form.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! int_impls {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_json_value(&self) -> JsonValue {
                #[allow(unused_comparisons)]
                if (*self as i128) >= 0 && (*self as i128) > i64::MAX as i128 {
                    JsonValue::UInt(*self as u64)
                } else {
                    JsonValue::Int(*self as i64)
                }
            }
        }
        impl Deserialize for $ty {
            fn from_json_value(value: &JsonValue) -> Result<Self, DeError> {
                let err = || DeError::expected(stringify!($ty), value);
                match value {
                    JsonValue::Int(v) => <$ty>::try_from(*v).map_err(|_| err()),
                    JsonValue::UInt(v) => <$ty>::try_from(*v).map_err(|_| err()),
                    _ => Err(err()),
                }
            }
        }
        impl JsonKey for $ty {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| {
                    DeError(format!("bad {} key `{key}`", stringify!($ty)))
                })
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_json_value(value: &JsonValue) -> Result<Self, DeError> {
        value.as_f64().ok_or_else(|| DeError::expected("number", value))
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(value: &JsonValue) -> Result<Self, DeError> {
        value.as_bool().ok_or_else(|| DeError::expected("bool", value))
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_json_value(value: &JsonValue) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", value))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(value: &JsonValue) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::expected("array", value))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> JsonValue {
        match self {
            Some(v) => v.to_json_value(),
            None => JsonValue::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(value: &JsonValue) -> Result<Self, DeError> {
        match value {
            JsonValue::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> JsonValue {
        (*self).to_json_value()
    }
}

impl<K: JsonKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<K: JsonKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json_value(value: &JsonValue) -> Result<Self, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::expected("object", value))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_json_value(v)?)))
            .collect()
    }
}

impl<K: JsonKey + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_json_value(&self) -> JsonValue {
        // Sort keys for canonical output, as serde_json's BTreeMap-backed
        // maps would.
        let mut entries: Vec<(String, JsonValue)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_json_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        JsonValue::Object(entries)
    }
}

impl<K: JsonKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_json_value(value: &JsonValue) -> Result<Self, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::expected("object", value))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_json_value(v)?)))
            .collect()
    }
}

/// Deserializes a required field out of an object value.
pub fn get_field<T: Deserialize>(value: &JsonValue, name: &str) -> Result<T, DeError> {
    match value.get(name) {
        Some(field) => T::from_json_value(field),
        None => Err(DeError::missing(name)),
    }
}

/// Deserializes an optional field, substituting `T::default()` when the
/// field is absent (the `#[serde(default)]` behavior).
pub fn get_field_or_default<T: Deserialize + Default>(
    value: &JsonValue,
    name: &str,
) -> Result<T, DeError> {
    match value.get(name) {
        Some(field) => T::from_json_value(field),
        None => Ok(T::default()),
    }
}

/// Builds a [`JsonValue::Object`] from name/value pairs.
pub fn object(entries: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for v in [0i64, -5, i64::MAX] {
            assert_eq!(i64::from_json_value(&v.to_json_value()), Ok(v));
        }
        assert_eq!(
            u64::from_json_value(&u64::MAX.to_json_value()),
            Ok(u64::MAX)
        );
        assert_eq!(
            String::from_json_value(&"hi".to_string().to_json_value()),
            Ok("hi".to_string())
        );
        assert_eq!(bool::from_json_value(&true.to_json_value()), Ok(true));
    }

    #[test]
    fn uint_overflow_detected() {
        let big = JsonValue::UInt(u64::MAX);
        assert!(i64::from_json_value(&big).is_err());
        assert_eq!(big.as_u64(), Some(u64::MAX));
        assert_eq!(big.as_i64(), None);
    }

    #[test]
    fn int_keyed_maps_stringify() {
        let mut map = BTreeMap::new();
        map.insert(3u16, 9u64);
        let json = map.to_json_value();
        assert_eq!(json.get("3").and_then(JsonValue::as_u64), Some(9));
        let back: BTreeMap<u16, u64> = BTreeMap::from_json_value(&json).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn option_null_round_trip() {
        let none: Option<u32> = None;
        assert_eq!(none.to_json_value(), JsonValue::Null);
        assert_eq!(Option::<u32>::from_json_value(&JsonValue::Null), Ok(None));
        assert_eq!(
            Option::<u32>::from_json_value(&JsonValue::Int(4)),
            Ok(Some(4))
        );
    }
}
