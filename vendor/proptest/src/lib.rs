//! Minimal proptest-compatible property-testing harness.
//!
//! Implements the subset of the proptest API this workspace uses:
//! [`Strategy`] with `prop_map`/`prop_flat_map`/`boxed`, integer-range and
//! regex-subset (`"[a-z]{1,16}"`) strategies, tuples, [`collection`]
//! combinators, [`sample::Index`], [`Just`], [`prop_oneof!`], `any::<T>()`,
//! and the [`proptest!`]/[`prop_assert!`] macros.
//!
//! Differences from real proptest: cases are generated from a seed derived
//! deterministically from the test name (reproducible across runs, no
//! regression files), and failing inputs are reported but not shrunk.

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The RNG handed to [`Strategy::generate`].
pub type TestRng = StdRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Feeds generated values into `f` to pick a second-stage strategy.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (backs [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.random_range(0..self.options.len());
        self.options[pick].generate(rng)
    }
}

macro_rules! range_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

/// Regex-subset string strategy: `"[a-z]{1,16}"`-style patterns — one
/// bracketed character class (ranges and literal characters) followed by an
/// optional `{m}` / `{m,n}` repetition (default: exactly one).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_pattern(self);
        let len = if min == max {
            min
        } else {
            rng.random_range(min..=max)
        };
        (0..len)
            .map(|_| alphabet[rng.random_range(0..alphabet.len())])
            .collect()
    }
}

fn unsupported_pattern(pattern: &str) -> ! {
    panic!(
        "unsupported pattern `{pattern}`: this proptest stand-in only \
         understands `[class]{{m,n}}` string patterns"
    )
}

fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let rest = pattern
        .strip_prefix('[')
        .unwrap_or_else(|| unsupported_pattern(pattern));
    let (class, rest) = rest
        .split_once(']')
        .unwrap_or_else(|| unsupported_pattern(pattern));
    let mut alphabet = Vec::new();
    let mut chars = class.chars().peekable();
    while let Some(c) = chars.next() {
        if chars.peek() == Some(&'-') {
            chars.next();
            let end = chars
                .next()
                .unwrap_or_else(|| unsupported_pattern(pattern));
            for code in (c as u32)..=(end as u32) {
                if let Some(ch) = char::from_u32(code) {
                    alphabet.push(ch);
                }
            }
        } else {
            alphabet.push(c);
        }
    }
    if alphabet.is_empty() {
        unsupported_pattern(pattern);
    }
    let (min, max) = match rest {
        "" => (1, 1),
        _ => {
            let body = rest
                .strip_prefix('{')
                .and_then(|r| r.strip_suffix('}'))
                .unwrap_or_else(|| unsupported_pattern(pattern));
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim()
                        .parse::<usize>()
                        .unwrap_or_else(|_| unsupported_pattern(pattern)),
                    n.trim()
                        .parse::<usize>()
                        .unwrap_or_else(|_| unsupported_pattern(pattern)),
                ),
                None => {
                    let exact = body
                        .trim()
                        .parse::<usize>()
                        .unwrap_or_else(|_| unsupported_pattern(pattern));
                    (exact, exact)
                }
            }
        }
    };
    (alphabet, min, max)
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary_with(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($ty:ty => $via:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary_with(rng: &mut TestRng) -> Self {
                rng.next_u64() as $via as $ty
            }
        }
    )*};
}

int_arbitrary!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => u64,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => u64
);

impl Arbitrary for bool {
    fn arbitrary_with(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_with(rng: &mut TestRng) -> Self {
        rng.random()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_with(rng)
    }
}

/// Canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategies over collections.
pub mod collection {
    use super::{Rng, Strategy, TestRng};
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    /// `Vec` strategy with element strategy and length range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    fn pick_len(size: &Range<usize>, rng: &mut TestRng) -> usize {
        if size.start + 1 >= size.end {
            size.start
        } else {
            rng.random_range(size.clone())
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = pick_len(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` strategy (duplicates collapse, so sets may be smaller
    /// than the drawn size — same as real proptest's minimum-size caveat).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates ordered sets with up to `size.end - 1` elements.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = pick_len(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeMap` strategy (duplicate keys collapse).
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// Generates ordered maps with up to `size.end - 1` entries.
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = pick_len(&self.size, rng);
            (0..len)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Index-into-a-collection support.
pub mod sample {
    use super::{Arbitrary, TestRng};
    use rand::RngCore;

    /// A deferred index: carries raw entropy and projects onto any
    /// collection length at use time via [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Projects this draw onto `0..len`; panics when `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary_with(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a property-test case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The result type of a property-test body.
pub type TestCaseResult = Result<(), TestCaseError>;

fn name_seed(name: &str) -> u64 {
    // FNV-1a; any stable hash works, it just pins the case stream per test.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        seed ^= byte as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    seed
}

/// Runs `body` against `config.cases` generated inputs. Called by the
/// [`proptest!`] expansion; not part of the public proptest API.
pub fn run_proptest<S, F>(config: ProptestConfig, name: &str, strategy: S, body: F)
where
    S: Strategy,
    F: Fn(S::Value) -> TestCaseResult,
{
    let seed = name_seed(name);
    for case in 0..config.cases {
        let mut rng =
            TestRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let value = strategy.generate(&mut rng);
        let shown = format!("{value:?}");
        match catch_unwind(AssertUnwindSafe(|| body(value))) {
            Ok(Ok(())) => {}
            Ok(Err(error)) => panic!(
                "proptest `{name}` failed at case {case}/{}: {error}\n    input: {shown}",
                config.cases
            ),
            Err(panic) => {
                let message = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic>");
                panic!(
                    "proptest `{name}` panicked at case {case}/{}: {message}\n    input: {shown}",
                    config.cases
                );
            }
        }
    }
}

/// Declares property tests. Parameters are either `name in strategy` or
/// `name: Type` (the latter uses `any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    ($config:expr;) => {};
    ($config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest(
                $config,
                stringify!($name),
                ($($strategy,)+),
                |($($arg,)+)| {
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_items!($config; $($rest)*);
    };
    ($config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident : $ty:ty),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest(
                $config,
                stringify!($name),
                ($($crate::any::<$ty>(),)+),
                |($($arg,)+)| {
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_items!($config; $($rest)*);
    };
}

/// Asserts inside a property test, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)+);
            }
        }
    };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left), stringify!($right), l
                );
            }
        }
    };
}

/// Uniform choice among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The usual `use proptest::prelude::*;` surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
        TestCaseResult, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_regex_stay_in_bounds() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        use rand::SeedableRng;
        for _ in 0..200 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let s = "[a-c]{2,5}".generate(&mut rng);
            assert!((2..=5).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    use crate::Strategy;

    #[test]
    fn union_covers_all_arms() {
        use rand::SeedableRng;
        let strategy = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::TestRng::seed_from_u64(2);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(strategy.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn determinism_per_name() {
        use rand::SeedableRng;
        let mut a = crate::TestRng::seed_from_u64(crate::name_seed("x"));
        let mut b = crate::TestRng::seed_from_u64(crate::name_seed("x"));
        let strategy = crate::collection::vec(0u8..255, 0..16);
        assert_eq!(strategy.generate(&mut a), strategy.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_in_form(v in 0u64..100, s in "[x-z]{1,4}") {
            prop_assert!(v < 100);
            prop_assert!(!s.is_empty() && s.len() <= 4);
        }

        #[test]
        fn macro_typed_form(v: u64, flag: bool) {
            // Both domains are trivially valid; exercise the macro path.
            prop_assert_eq!(v, v);
            prop_assert!(flag == flag);
        }

        #[test]
        fn flat_map_and_collections(
            items in crate::collection::vec((0u8..4).prop_flat_map(|n| 0u32..(n as u32 + 1)), 1..8),
            idx in any::<crate::sample::Index>(),
        ) {
            prop_assert!(!items.is_empty());
            let picked = items[idx.index(items.len())];
            prop_assert!(picked < 4);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_input() {
        crate::run_proptest(
            ProptestConfig::with_cases(16),
            "always_fails",
            (0u8..4,),
            |(_v,)| Err(TestCaseError::fail("nope")),
        );
    }
}
