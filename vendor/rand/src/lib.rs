//! Minimal `rand` 0.9-compatible RNG.
//!
//! Implements the subset of the rand API this workspace uses — seeded
//! [`rngs::StdRng`], the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, and
//! [`rng()`] — over a xoshiro256++ core seeded via splitmix64. Streams are
//! fully deterministic per seed, which the simulation harness and the
//! workload generators rely on for reproducible runs.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random bits.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bits = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bits[..chunk.len()]);
        }
    }
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain by [`Rng::random`].
pub trait Random {
    /// Draws one uniformly distributed value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for u16 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Random for u8 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Random for i64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $ty)
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty random_range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $ty;
                }
                start.wrapping_add((rng.next_u64() as u128 % span) as $ty)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty random_range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value over `T`'s full domain ([0, 1) for floats).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Uniform value in `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic RNG: xoshiro256++ seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// A lazily seeded per-call generator, the analog of rand's `ThreadRng`.
    #[derive(Debug, Clone)]
    pub struct ThreadRng(StdRng);

    impl ThreadRng {
        pub(crate) fn new() -> Self {
            use std::time::{SystemTime, UNIX_EPOCH};
            let nanos = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
                .unwrap_or(0x5EED);
            ThreadRng(StdRng::seed_from_u64(nanos | 1))
        }
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Returns a fresh non-deterministically seeded generator (rand 0.9's
/// `rand::rng()`).
pub fn rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = rngs::StdRng::seed_from_u64(1);
        let mut b = rngs::StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.random_range(0.5..0.75);
            assert!((0.5..0.75).contains(&f));
            let i: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn random_floats_in_unit_interval() {
        let mut rng = rngs::StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.random();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn fill_bytes_covers_whole_slice() {
        let mut rng = rngs::StdRng::seed_from_u64(5);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn uniformity_sanity() {
        // Mean of 10k unit-interval draws should be near 0.5.
        let mut rng = rngs::StdRng::seed_from_u64(6);
        let sum: f64 = (0..10_000).map(|_| f64::random(&mut rng)).sum();
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean={mean}");
    }
}
