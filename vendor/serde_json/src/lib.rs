//! Minimal serde_json-compatible façade: JSON text ⇄ [`Value`] ⇄ typed
//! values via the vendored `serde` traits.
//!
//! Supports the full JSON grammar (nested containers, string escapes
//! including `\uXXXX` with surrogate pairs, scientific notation) plus the
//! usual entry points: [`to_string`], [`to_string_pretty`], [`to_vec`],
//! [`from_str`], [`from_slice`].

pub use serde::JsonValue as Value;
use serde::{DeError, Deserialize, Serialize};
use std::fmt;

/// JSON parse or conversion error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses a typed value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_json_value(&value).map_err(Error::from)
}

/// Parses a typed value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(text)
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => {
            if v.is_finite() {
                // Emit a fraction so the token parses back as a float.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    out.push_str(&format!("{v:.1}"));
                } else {
                    out.push_str(&v.to_string());
                }
            } else {
                // JSON has no Inf/NaN; serde_json emits null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), Error> {
        let c = self
            .peek()
            .ok_or_else(|| Error("unterminated escape".into()))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let unit = self.hex4()?;
                let c = if (0xD800..0xDC00).contains(&unit) {
                    // High surrogate: must pair with \uXXXX low surrogate.
                    if self.peek() != Some(b'\\') {
                        return Err(Error("unpaired surrogate".into()));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(Error("unpaired surrogate".into()));
                    }
                    self.pos += 1;
                    let low = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return Err(Error("invalid low surrogate".into()));
                    }
                    let code =
                        0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                    char::from_u32(code).ok_or_else(|| Error("bad codepoint".into()))?
                } else {
                    char::from_u32(unit).ok_or_else(|| Error("bad codepoint".into()))?
                };
                out.push(c);
            }
            other => {
                return Err(Error(format!("bad escape `\\{}`", other as char)));
            }
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|e| Error(e.to_string()))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|e| Error(e.to_string()))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Value::Int(v))
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(Value::UInt(v))
        } else {
            // Out-of-range integer: fall back to float like serde_json's
            // arbitrary_precision-less mode.
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-42").unwrap(), Value::Int(-42));
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(parse("1.5e3").unwrap(), Value::Float(1500.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""é""#).unwrap(), Value::Str("é".into()));
        assert_eq!(
            parse(r#""😀""#).unwrap(),
            Value::Str("😀".into())
        );
    }

    #[test]
    fn nested_round_trip() {
        let text = r#"{"a":[1,2.5,{"b":null}],"c":"x"}"#;
        let value = parse(text).unwrap();
        let printed = to_string(&Raw(value.clone())).unwrap();
        assert_eq!(parse(&printed).unwrap(), value);
    }

    #[test]
    fn pretty_print_is_reparseable() {
        let value = parse(r#"{"k":[1,{"n":true}],"s":"v"}"#).unwrap();
        let pretty = to_string_pretty(&Raw(value.clone())).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), value);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn float_round_trips_as_float() {
        // 3.0 must print with a fraction so it re-parses as Float not Int.
        let printed = to_string(&3.0f64).unwrap();
        assert_eq!(parse(&printed).unwrap(), Value::Float(3.0));
    }

    /// Passthrough wrapper so tests can print raw Values.
    struct Raw(Value);
    impl Serialize for Raw {
        fn to_json_value(&self) -> Value {
            self.0.clone()
        }
    }
}
