//! Minimal `bytes`-compatible byte buffers.
//!
//! [`Bytes`] is an immutable, cheaply cloneable, sliceable byte container:
//! clones and slices share one reference-counted allocation, so handing a
//! message payload to N consumers copies pointers, not bytes — the
//! zero-copy property the Kafka log's page-cache serving path relies on.
//! [`Buf`]/[`BufMut`] are the cursor traits the varint and record codecs
//! are generic over.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted slice of bytes.
///
/// Backed by an `Arc<Vec<u8>>` so that `Bytes::from(vec)` is a move, not
/// a copy — freezing a log segment's append buffer into shared storage
/// costs two pointer writes, never a memcpy.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice (copied once into shared storage; the
    /// real crate borrows it, which is an optimization not a semantic).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Copies `data` into a new shared allocation.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-slice sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            start <= end && end <= self.len(),
            "slice {start}..{end} out of bounds for Bytes of length {}",
            self.len()
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Whether `self` and `other` are views of the same underlying
    /// allocation (regardless of the ranges they cover). This is the
    /// zero-copy proof primitive: a payload sliced out of a log segment
    /// shares the segment's allocation, a decoded copy does not.
    pub fn shares_allocation(&self, other: &Bytes) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    /// Takes ownership of `data` without copying it.
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Self {
        Bytes::from(data.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl From<&'static str> for Bytes {
    fn from(data: &'static str) -> Self {
        Bytes::copy_from_slice(data.as_bytes())
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(data: [u8; N]) -> Self {
        Bytes::copy_from_slice(&data)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The current contiguous unread chunk.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 on empty buffer");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Copies `dst.len()` bytes out of the buffer.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice past end of buffer"
        );
        let n = dst.len();
        dst.copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, byte: u8);

    /// Appends a slice.
    fn put_slice(&mut self, data: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, byte: u8) {
        self.push(byte);
    }
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(Arc::strong_count(&a.data), 2);
    }

    #[test]
    fn slice_views_same_allocation() {
        let a = Bytes::from(vec![0, 1, 2, 3, 4]);
        let mid = a.slice(1..4);
        assert_eq!(mid.as_ref(), &[1, 2, 3]);
        let tail = mid.slice(2..);
        assert_eq!(tail.as_ref(), &[3]);
        assert_eq!(Arc::strong_count(&a.data), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_past_end_panics() {
        Bytes::from(vec![1]).slice(0..2);
    }

    #[test]
    fn from_vec_is_zero_copy() {
        let v = vec![1u8, 2, 3];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_ref().as_ptr(), ptr, "freeze must not move the data");
    }

    #[test]
    fn shares_allocation_distinguishes_views_from_copies() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        let view = a.slice(1..3);
        let copy = Bytes::copy_from_slice(&a);
        assert!(a.shares_allocation(&view));
        assert!(view.shares_allocation(&a));
        assert!(!a.shares_allocation(&copy));
    }

    #[test]
    fn buf_cursor_over_slice() {
        let data = [9u8, 8, 7];
        let mut cursor = &data[..];
        assert_eq!(cursor.remaining(), 3);
        assert_eq!(cursor.get_u8(), 9);
        let mut rest = [0u8; 2];
        cursor.copy_to_slice(&mut rest);
        assert_eq!(rest, [8, 7]);
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn bufmut_appends() {
        let mut out = Vec::new();
        out.put_u8(1);
        out.put_slice(&[2, 3]);
        assert_eq!(out, vec![1, 2, 3]);
    }
}
