//! Minimal `parking_lot`-compatible locks backed by `std::sync`.
//!
//! The real parking_lot offers faster userspace locks; this stand-in keeps
//! the same API shape (no lock poisoning, `Condvar::wait_for`) so the rest
//! of the workspace compiles and runs unchanged in an offline build
//! environment. Poisoned std locks are recovered transparently, matching
//! parking_lot's "no poisoning" semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock without poisoning.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]. The inner option is only `None` transiently
/// while a condvar wait has borrowed the underlying std guard.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(PoisonError::into_inner),
        ))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard(Some(guard))),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard(Some(p.into_inner())))
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside condvar wait")
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Blocks on the condvar until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, WaitTimeoutResult(r.timed_out())),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, WaitTimeoutResult(r.timed_out()))
            }
        };
        guard.0 = Some(inner);
        result
    }
}

/// A reader-writer lock without poisoning.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = m.lock();
        let result = cv.wait_for(&mut guard, Duration::from_millis(5));
        assert!(result.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let t = std::thread::spawn(move || {
            *m2.lock() = true;
            cv2.notify_all();
        });
        let mut guard = m.lock();
        while !*guard {
            cv.wait_for(&mut guard, Duration::from_millis(50));
        }
        t.join().unwrap();
        assert!(*guard);
    }
}
