//! Empty library target: this package exists to host the workspace-level
//! `examples/` and `tests/` directories (see those for content).
