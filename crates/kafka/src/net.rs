//! Transfer-path modelling: the `sendfile` zero-copy claim.
//!
//! "A typical approach to sending bytes from a local file to a remote
//! socket involves ... 4 data copying and 2 system calls. On Linux ...
//! there exists a sendfile API that can directly transfer bytes from a
//! file channel to a socket channel ... Kafka exploits the sendfile API to
//! efficiently deliver bytes in a log segment file from a broker to a
//! consumer" (§V.B).
//!
//! In-process, the page cache is a `Bytes` buffer. The zero-copy path
//! hands out a reference-counted slice (no byte movement, one "syscall");
//! the conventional path performs the four explicit copies. The
//! `kafka_zerocopy` benchmark measures the difference; the counters here
//! make the copy arithmetic checkable.

use bytes::Bytes;

/// Which send path to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferMode {
    /// `sendfile`: file channel → socket channel.
    ZeroCopy,
    /// read → user buffer → kernel socket buffer → wire.
    FourCopy,
}

/// Accounting for one transfer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Bytes physically copied by the CPU.
    pub bytes_copied: u64,
    /// System calls performed.
    pub syscalls: u64,
}

impl TransferStats {
    /// Folds another transfer's accounting into this one (the benchmarks
    /// sum per-call stats over a whole sweep).
    pub fn accumulate(&mut self, other: TransferStats) {
        self.bytes_copied += other.bytes_copied;
        self.syscalls += other.syscalls;
    }
}

/// Which broker-side ingress path a set of produce requests takes. The
/// group-commit drainer turns many producers' pending groups into one
/// gathered receive and one log append — the ingress mirror of the
/// `sendfile` egress claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProducePath {
    /// Legacy: each produce request is its own recv + append.
    PerRequest,
    /// Group commit: all pending groups land in one gathered recv
    /// (`recvmmsg`-style) and one vectored append (`pwritev`-style).
    GroupCommit,
}

/// Models broker ingress of `groups` pre-encoded frame groups, returning
/// the bytes as they land in the log plus the syscall/copy accounting.
/// Both paths deliver identical bytes; only the arithmetic differs.
pub fn produce_transfer(groups: &[&[u8]], path: ProducePath) -> (Bytes, TransferStats) {
    let total: usize = groups.iter().map(|g| g.len()).sum();
    match path {
        ProducePath::PerRequest => {
            let mut log = Vec::with_capacity(total);
            let mut stats = TransferStats::default();
            for group in groups {
                // (1) socket -> application buffer   [recv syscall]
                let mut app_buffer = vec![0u8; group.len()];
                app_buffer.copy_from_slice(group);
                // (2) application buffer -> page cache [write syscall]
                log.extend_from_slice(&app_buffer);
                stats.accumulate(TransferStats {
                    bytes_copied: 2 * group.len() as u64,
                    syscalls: 2,
                });
            }
            (Bytes::from(log), stats)
        }
        ProducePath::GroupCommit => {
            // One gathered receive for every pending group...
            let mut app_buffer = Vec::with_capacity(total);
            for group in groups {
                app_buffer.extend_from_slice(group);
            }
            // ...and one vectored append into the page cache.
            let log = app_buffer.clone();
            (
                Bytes::from(log),
                TransferStats {
                    bytes_copied: 2 * total as u64,
                    syscalls: 2,
                },
            )
        }
    }
}

/// Serves `range` of a segment (`page_cache`) to a "socket", returning the
/// bytes as the consumer would see them plus the accounting.
pub fn transfer(page_cache: &Bytes, start: usize, len: usize, mode: TransferMode) -> (Bytes, TransferStats) {
    let end = (start + len).min(page_cache.len());
    match mode {
        TransferMode::ZeroCopy => {
            // sendfile: one syscall, no CPU copies — the socket reads
            // straight out of the page cache.
            (
                page_cache.slice(start..end),
                TransferStats {
                    bytes_copied: 0,
                    syscalls: 1,
                },
            )
        }
        TransferMode::FourCopy => {
            let span = end - start;
            // (1) page cache -> application buffer   [read syscall]
            let mut app_buffer = vec![0u8; span];
            app_buffer.copy_from_slice(&page_cache[start..end]);
            // (2) application buffer -> kernel socket buffer [send syscall]
            let mut socket_buffer = vec![0u8; span];
            socket_buffer.copy_from_slice(&app_buffer);
            // (3) kernel socket buffer -> NIC ring (modelled copy)
            let mut nic = vec![0u8; span];
            nic.copy_from_slice(&socket_buffer);
            // (4) wire -> receiver buffer (modelled copy)
            let mut receiver = vec![0u8; span];
            receiver.copy_from_slice(&nic);
            (
                Bytes::from(receiver),
                TransferStats {
                    bytes_copied: 4 * span as u64,
                    syscalls: 2,
                },
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment() -> Bytes {
        Bytes::from((0..=255u8).cycle().take(64 * 1024).collect::<Vec<u8>>())
    }

    #[test]
    fn both_paths_deliver_identical_bytes() {
        let cache = segment();
        let (zero, _) = transfer(&cache, 1000, 5000, TransferMode::ZeroCopy);
        let (four, _) = transfer(&cache, 1000, 5000, TransferMode::FourCopy);
        assert_eq!(zero, four);
        assert_eq!(zero.len(), 5000);
    }

    #[test]
    fn copy_accounting_matches_the_paper() {
        let cache = segment();
        let (_, zero) = transfer(&cache, 0, 10_000, TransferMode::ZeroCopy);
        let (_, four) = transfer(&cache, 0, 10_000, TransferMode::FourCopy);
        assert_eq!(zero.bytes_copied, 0);
        assert_eq!(zero.syscalls, 1);
        assert_eq!(four.bytes_copied, 40_000, "4 copies of 10k");
        assert_eq!(four.syscalls, 2);
    }

    #[test]
    fn zero_copy_shares_underlying_storage() {
        let cache = segment();
        let (slice, _) = transfer(&cache, 0, 1024, TransferMode::ZeroCopy);
        // Same allocation: the slice's data pointer is inside the cache.
        let cache_range = cache.as_ptr() as usize..cache.as_ptr() as usize + cache.len();
        assert!(cache_range.contains(&(slice.as_ptr() as usize)));
    }

    #[test]
    fn range_clamped_to_segment() {
        let cache = segment();
        let (bytes, _) = transfer(&cache, cache.len() - 10, 1000, TransferMode::ZeroCopy);
        assert_eq!(bytes.len(), 10);
    }

    #[test]
    fn produce_paths_deliver_identical_bytes() {
        let groups: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 100 + i as usize]).collect();
        let refs: Vec<&[u8]> = groups.iter().map(Vec::as_slice).collect();
        let (per, _) = produce_transfer(&refs, ProducePath::PerRequest);
        let (grouped, _) = produce_transfer(&refs, ProducePath::GroupCommit);
        assert_eq!(per, grouped);
        assert_eq!(per.len(), groups.iter().map(Vec::len).sum::<usize>());
    }

    #[test]
    fn group_commit_amortizes_syscalls_over_the_batch() {
        let groups: Vec<Vec<u8>> = (0..16u8).map(|i| vec![i; 1000]).collect();
        let refs: Vec<&[u8]> = groups.iter().map(Vec::as_slice).collect();
        let (_, per) = produce_transfer(&refs, ProducePath::PerRequest);
        let (_, grouped) = produce_transfer(&refs, ProducePath::GroupCommit);
        // Per-request: 2 syscalls per group. Group commit: 2 total.
        assert_eq!(per.syscalls, 32);
        assert_eq!(grouped.syscalls, 2);
        // Copy volume is identical — the win is in syscall count.
        assert_eq!(per.bytes_copied, grouped.bytes_copied);
        assert_eq!(grouped.bytes_copied, 2 * 16_000);
    }

    #[test]
    fn transfer_stats_accumulate_sums_both_fields() {
        let mut total = TransferStats::default();
        total.accumulate(TransferStats { bytes_copied: 10, syscalls: 1 });
        total.accumulate(TransferStats { bytes_copied: 32, syscalls: 2 });
        assert_eq!(total, TransferStats { bytes_copied: 42, syscalls: 3 });
    }
}
