//! Transfer-path modelling: the `sendfile` zero-copy claim.
//!
//! "A typical approach to sending bytes from a local file to a remote
//! socket involves ... 4 data copying and 2 system calls. On Linux ...
//! there exists a sendfile API that can directly transfer bytes from a
//! file channel to a socket channel ... Kafka exploits the sendfile API to
//! efficiently deliver bytes in a log segment file from a broker to a
//! consumer" (§V.B).
//!
//! In-process, the page cache is a `Bytes` buffer. The zero-copy path
//! hands out a reference-counted slice (no byte movement, one "syscall");
//! the conventional path performs the four explicit copies. The
//! `kafka_zerocopy` benchmark measures the difference; the counters here
//! make the copy arithmetic checkable.

use bytes::Bytes;

/// Which send path to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferMode {
    /// `sendfile`: file channel → socket channel.
    ZeroCopy,
    /// read → user buffer → kernel socket buffer → wire.
    FourCopy,
}

/// Accounting for one transfer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Bytes physically copied by the CPU.
    pub bytes_copied: u64,
    /// System calls performed.
    pub syscalls: u64,
}

/// Serves `range` of a segment (`page_cache`) to a "socket", returning the
/// bytes as the consumer would see them plus the accounting.
pub fn transfer(page_cache: &Bytes, start: usize, len: usize, mode: TransferMode) -> (Bytes, TransferStats) {
    let end = (start + len).min(page_cache.len());
    match mode {
        TransferMode::ZeroCopy => {
            // sendfile: one syscall, no CPU copies — the socket reads
            // straight out of the page cache.
            (
                page_cache.slice(start..end),
                TransferStats {
                    bytes_copied: 0,
                    syscalls: 1,
                },
            )
        }
        TransferMode::FourCopy => {
            let span = end - start;
            // (1) page cache -> application buffer   [read syscall]
            let mut app_buffer = vec![0u8; span];
            app_buffer.copy_from_slice(&page_cache[start..end]);
            // (2) application buffer -> kernel socket buffer [send syscall]
            let mut socket_buffer = vec![0u8; span];
            socket_buffer.copy_from_slice(&app_buffer);
            // (3) kernel socket buffer -> NIC ring (modelled copy)
            let mut nic = vec![0u8; span];
            nic.copy_from_slice(&socket_buffer);
            // (4) wire -> receiver buffer (modelled copy)
            let mut receiver = vec![0u8; span];
            receiver.copy_from_slice(&nic);
            (
                Bytes::from(receiver),
                TransferStats {
                    bytes_copied: 4 * span as u64,
                    syscalls: 2,
                },
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment() -> Bytes {
        Bytes::from((0..=255u8).cycle().take(64 * 1024).collect::<Vec<u8>>())
    }

    #[test]
    fn both_paths_deliver_identical_bytes() {
        let cache = segment();
        let (zero, _) = transfer(&cache, 1000, 5000, TransferMode::ZeroCopy);
        let (four, _) = transfer(&cache, 1000, 5000, TransferMode::FourCopy);
        assert_eq!(zero, four);
        assert_eq!(zero.len(), 5000);
    }

    #[test]
    fn copy_accounting_matches_the_paper() {
        let cache = segment();
        let (_, zero) = transfer(&cache, 0, 10_000, TransferMode::ZeroCopy);
        let (_, four) = transfer(&cache, 0, 10_000, TransferMode::FourCopy);
        assert_eq!(zero.bytes_copied, 0);
        assert_eq!(zero.syscalls, 1);
        assert_eq!(four.bytes_copied, 40_000, "4 copies of 10k");
        assert_eq!(four.syscalls, 2);
    }

    #[test]
    fn zero_copy_shares_underlying_storage() {
        let cache = segment();
        let (slice, _) = transfer(&cache, 0, 1024, TransferMode::ZeroCopy);
        // Same allocation: the slice's data pointer is inside the cache.
        let cache_range = cache.as_ptr() as usize..cache.as_ptr() as usize + cache.len();
        assert!(cache_range.contains(&(slice.as_ptr() as usize)));
    }

    #[test]
    fn range_clamped_to_segment() {
        let cache = segment();
        let (bytes, _) = transfer(&cache, cache.len() - 10, 1000, TransferMode::ZeroCopy);
        assert_eq!(bytes.len(), 10);
    }
}
