//! Cross-datacenter mirroring and the offline load pipeline.
//!
//! "We also deploy a cluster of Kafka in a separate datacenter for offline
//! analysis ... This instance of Kafka runs a set of embedded consumers to
//! pull data from the Kafka instances in the live datacenters. We then run
//! data load jobs to pull data from this replica cluster of Kafka into
//! Hadoop and our data warehouse ... the end-to-end latency for the
//! complete pipeline is about 10 seconds on average" (§V.D).
//!
//! [`MirrorMaker`] is the embedded-consumer stage (it copies *stored*
//! messages, wrappers included, so compression survives the hop);
//! [`WarehouseLoader`] is the batch load job, draining the mirror on a
//! period — the stage that dominates the paper's ~10 s end-to-end latency.

use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use li_commons::sim::Clock;

use crate::cluster::KafkaCluster;
use crate::message::{KafkaError, MessageSet};

/// The embedded consumer that replicates topics from a live cluster into
/// an offline one.
pub struct MirrorMaker {
    source: Arc<KafkaCluster>,
    target: Arc<KafkaCluster>,
    topics: Vec<String>,
    /// (topic, partition) -> next source offset.
    offsets: Mutex<HashMap<(String, u32), u64>>,
}

impl MirrorMaker {
    /// Mirrors `topics` from `source` to `target`. The topics must exist
    /// on both clusters with the same partition counts.
    pub fn new(
        source: Arc<KafkaCluster>,
        target: Arc<KafkaCluster>,
        topics: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<Self, KafkaError> {
        let topics: Vec<String> = topics.into_iter().map(Into::into).collect();
        for topic in &topics {
            let n = source.num_partitions(topic)?;
            if target.num_partitions(topic)? != n {
                return Err(KafkaError::Group(format!(
                    "partition count mismatch for `{topic}`"
                )));
            }
        }
        Ok(MirrorMaker {
            source,
            target,
            topics,
            offsets: Mutex::new(HashMap::new()),
        })
    }

    /// One mirroring pass: copies every new stored message. Returns
    /// messages copied (compressed wrappers count as one — they are
    /// mirrored without being expanded).
    ///
    /// Zero-decode: the source's [`crate::message::FetchChunk`]s are
    /// appended to the target byte-verbatim — frames are never decoded,
    /// decompressed, or re-encoded on the hop, so compression survives it
    /// and the only per-message work is the target's structural frame walk.
    pub fn pump(&self) -> Result<usize, KafkaError> {
        let mut copied = 0;
        for topic in &self.topics {
            for partition in 0..self.source.num_partitions(topic)? {
                let key = (topic.clone(), partition);
                let offset = *self.offsets.lock().get(&key).unwrap_or(&0);
                let broker = self.source.broker_for(topic, partition)?;
                let (chunks, next) =
                    broker.fetch_chunks(topic, partition, offset, usize::MAX)?;
                if chunks.is_empty() {
                    continue;
                }
                let target_broker = self.target.broker_for(topic, partition)?;
                for chunk in &chunks {
                    target_broker.produce_frames(
                        topic,
                        partition,
                        &chunk.data,
                        chunk.messages,
                        chunk.payload_bytes(),
                    )?;
                    copied += chunk.messages as usize;
                }
                self.offsets.lock().insert(key, next);
            }
        }
        Ok(copied)
    }
}

/// A record landed in the "warehouse".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarehouseRow {
    /// Source topic.
    pub topic: String,
    /// Message payload.
    pub payload: Bytes,
    /// When the load job committed the row (nanoseconds, cluster clock).
    pub loaded_at: u64,
}

/// The batch "data load job": drains the offline cluster into warehouse
/// rows on a period, stamping load time for latency accounting.
pub struct WarehouseLoader {
    cluster: Arc<KafkaCluster>,
    clock: Arc<dyn Clock>,
    topics: Vec<String>,
    period: Duration,
    last_run: Mutex<Duration>,
    offsets: Mutex<HashMap<(String, u32), u64>>,
    warehouse: Mutex<Vec<WarehouseRow>>,
}

impl WarehouseLoader {
    /// Creates a loader that runs at most every `period`.
    pub fn new(
        cluster: Arc<KafkaCluster>,
        topics: impl IntoIterator<Item = impl Into<String>>,
        period: Duration,
    ) -> Self {
        let clock = cluster.clock().clone();
        WarehouseLoader {
            cluster,
            clock,
            topics: topics.into_iter().map(Into::into).collect(),
            period,
            last_run: Mutex::new(Duration::ZERO),
            offsets: Mutex::new(HashMap::new()),
            warehouse: Mutex::new(Vec::new()),
        }
    }

    /// Ticks the scheduler: runs a load when the period has elapsed.
    /// Returns rows loaded this tick.
    pub fn tick(&self) -> Result<usize, KafkaError> {
        {
            let mut last = self.last_run.lock();
            let now = self.clock.now();
            if now.saturating_sub(*last) < self.period {
                return Ok(0);
            }
            *last = now;
        }
        self.run_load()
    }

    /// Forces a load pass immediately.
    pub fn run_load(&self) -> Result<usize, KafkaError> {
        let mut loaded = 0;
        let now = self.clock.now_nanos();
        for topic in &self.topics {
            for partition in 0..self.cluster.num_partitions(topic)? {
                let key = (topic.clone(), partition);
                let offset = *self.offsets.lock().get(&key).unwrap_or(&0);
                let broker = self.cluster.broker_for(topic, partition)?;
                let (chunks, next) =
                    broker.fetch_chunks(topic, partition, offset, usize::MAX)?;
                for chunk in &chunks {
                    for item in chunk {
                        let (_, message) = item?;
                        // Uncompressed rows alias the mirror's segment
                        // memory; wrappers decompress once per batch.
                        for inner in MessageSet::unwrap_message(&message)? {
                            self.warehouse.lock().push(WarehouseRow {
                                topic: topic.clone(),
                                payload: inner.payload,
                                loaded_at: now,
                            });
                            loaded += 1;
                        }
                    }
                }
                self.offsets.lock().insert(key, next);
            }
        }
        Ok(loaded)
    }

    /// Snapshot of the warehouse contents.
    pub fn rows(&self) -> Vec<WarehouseRow> {
        self.warehouse.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogConfig;
    use crate::producer::Producer;
    use li_commons::compress::Codec;
    use li_commons::sim::SimClock;

    fn two_clusters(clock: &SimClock) -> (Arc<KafkaCluster>, Arc<KafkaCluster>) {
        let live =
            KafkaCluster::with_parts(2, LogConfig::default(), Arc::new(clock.clone())).unwrap();
        let offline =
            KafkaCluster::with_parts(1, LogConfig::default(), Arc::new(clock.clone())).unwrap();
        for c in [&live, &offline] {
            c.create_topic("events", 4).unwrap();
        }
        (live, offline)
    }

    #[test]
    fn mirror_copies_everything_once() {
        let clock = SimClock::new();
        let (live, offline) = two_clusters(&clock);
        let producer = Producer::new(live.clone());
        for i in 0..50 {
            producer.send("events", format!("e{i}")).unwrap();
        }
        producer.flush().unwrap();
        let mirror = MirrorMaker::new(live, offline.clone(), ["events"]).unwrap();
        assert_eq!(mirror.pump().unwrap(), 50);
        assert_eq!(mirror.pump().unwrap(), 0, "idempotent when caught up");
        let total: usize = (0..4)
            .map(|p| {
                offline
                    .broker_for("events", p)
                    .unwrap()
                    .fetch("events", p, 0, usize::MAX)
                    .unwrap()
                    .0
                    .len()
            })
            .sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn compressed_wrappers_survive_the_hop() {
        let clock = SimClock::new();
        let (live, offline) = two_clusters(&clock);
        let producer = Producer::new(live.clone())
            .with_batch_size(25)
            .with_codec(Codec::Lz);
        for i in 0..100 {
            producer.send("events", format!("pageview {i} pageview")).unwrap();
        }
        producer.flush().unwrap();
        let mirror = MirrorMaker::new(live, offline.clone(), ["events"]).unwrap();
        let copied = mirror.pump().unwrap();
        assert!(copied < 100, "wrappers copied, not expanded: {copied}");
        // The loader unwraps them into 100 application rows.
        let loader = WarehouseLoader::new(offline, ["events"], Duration::ZERO);
        assert_eq!(loader.run_load().unwrap(), 100);
    }

    #[test]
    fn loader_is_periodic() {
        let clock = SimClock::new();
        let (live, offline) = two_clusters(&clock);
        let producer = Producer::new(live.clone());
        let mirror = MirrorMaker::new(live, offline.clone(), ["events"]).unwrap();
        let loader = WarehouseLoader::new(offline, ["events"], Duration::from_secs(10));

        producer.send("events", "first").unwrap();
        producer.flush().unwrap();
        mirror.pump().unwrap();
        clock.advance(Duration::from_secs(10));
        assert_eq!(loader.tick().unwrap(), 1);
        // Within the period: nothing loads even though data is waiting.
        producer.send("events", "second").unwrap();
        producer.flush().unwrap();
        mirror.pump().unwrap();
        clock.advance(Duration::from_secs(3));
        assert_eq!(loader.tick().unwrap(), 0);
        clock.advance(Duration::from_secs(7));
        assert_eq!(loader.tick().unwrap(), 1);
        assert_eq!(loader.rows().len(), 2);
    }

    #[test]
    fn partition_mismatch_rejected() {
        let clock = SimClock::new();
        let live =
            KafkaCluster::with_parts(1, LogConfig::default(), Arc::new(clock.clone())).unwrap();
        let offline =
            KafkaCluster::with_parts(1, LogConfig::default(), Arc::new(clock.clone())).unwrap();
        live.create_topic("t", 2).unwrap();
        offline.create_topic("t", 3).unwrap();
        assert!(MirrorMaker::new(live, offline, ["t"]).is_err());
    }
}
