//! Partition logs: segments, logical offsets, flush policy, retention.
//!
//! "Each partition of a topic corresponds to a logical log. Physically, a
//! log is implemented as a set of segment files of approximately the same
//! size. Every time a producer publishes a message to a partition, the
//! broker simply appends the message to the last segment file. For better
//! performance, we flush the segment files to disk only after a
//! configurable number of messages have been published or a certain amount
//! of time has elapsed. A message is only exposed to the consumers after
//! it is flushed. ... each message is addressed by its logical offset in
//! the log. ... For every partition in a topic, a broker keeps in memory
//! the initial offset of each segment file" (§V.B).

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

use li_commons::sim::Clock;

use crate::message::{KafkaError, Message};

/// Log tuning knobs.
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Roll to a new segment after the active one exceeds this.
    pub segment_bytes: usize,
    /// Flush after this many appended messages.
    pub flush_interval_messages: u64,
    /// Flush after this much time since the last flush.
    pub flush_interval: Duration,
    /// Delete segments not appended to for this long — "a message is
    /// automatically deleted if it has been retained in the broker longer
    /// than a certain period (e.g., 7 days)".
    pub retention: Duration,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            segment_bytes: 1 << 20,
            flush_interval_messages: 1,
            flush_interval: Duration::from_millis(100),
            retention: Duration::from_secs(7 * 24 * 3600),
        }
    }
}

#[derive(Debug)]
struct Segment {
    base_offset: u64,
    data: Vec<u8>,
    last_append: Duration,
}

#[derive(Debug)]
struct LogInner {
    segments: Vec<Segment>,
    /// Absolute offset one past the last appended byte.
    log_end: u64,
    /// Absolute offset one past the last *flushed* (consumer-visible) byte.
    visible_end: u64,
    unflushed_messages: u64,
    last_flush: Duration,
}

/// One topic-partition's log.
pub struct PartitionLog {
    config: LogConfig,
    clock: Arc<dyn Clock>,
    inner: Mutex<LogInner>,
    data_ready: Condvar,
}

impl std::fmt::Debug for PartitionLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("PartitionLog")
            .field("segments", &inner.segments.len())
            .field("log_end", &inner.log_end)
            .field("visible_end", &inner.visible_end)
            .finish()
    }
}

impl PartitionLog {
    /// Creates an empty log.
    pub fn new(config: LogConfig, clock: Arc<dyn Clock>) -> Self {
        let now = clock.now();
        PartitionLog {
            config,
            clock,
            inner: Mutex::new(LogInner {
                segments: vec![Segment {
                    base_offset: 0,
                    data: Vec::new(),
                    last_append: now,
                }],
                log_end: 0,
                visible_end: 0,
                unflushed_messages: 0,
                last_flush: now,
            }),
            data_ready: Condvar::new(),
        }
    }

    /// Appends one message, returning its logical offset. Visibility waits
    /// for the flush policy.
    pub fn append(&self, message: &Message) -> u64 {
        let now = self.clock.now();
        let mut inner = self.inner.lock();
        let offset = inner.log_end;
        {
            let roll = inner
                .segments
                .last()
                .is_none_or(|s| s.data.len() >= self.config.segment_bytes);
            if roll {
                inner.segments.push(Segment {
                    base_offset: offset,
                    data: Vec::new(),
                    last_append: now,
                });
            }
            let active = inner.segments.last_mut().expect("active segment");
            message.encode(&mut active.data);
            active.last_append = now;
        }
        inner.log_end = offset + message.framed_len() as u64;
        inner.unflushed_messages += 1;

        let flush_due = inner.unflushed_messages >= self.config.flush_interval_messages
            || now.saturating_sub(inner.last_flush) >= self.config.flush_interval;
        if flush_due {
            inner.visible_end = inner.log_end;
            inner.unflushed_messages = 0;
            inner.last_flush = now;
            self.data_ready.notify_all();
        }
        offset
    }

    /// Forces a flush (shutdown / time-policy tick).
    pub fn flush(&self) {
        let mut inner = self.inner.lock();
        inner.visible_end = inner.log_end;
        inner.unflushed_messages = 0;
        inner.last_flush = self.clock.now();
        self.data_ready.notify_all();
    }

    /// Smallest valid offset (moves forward as retention deletes segments).
    pub fn log_start(&self) -> u64 {
        self.inner.lock().segments.first().map_or(0, |s| s.base_offset)
    }

    /// One past the last appended byte.
    pub fn log_end(&self) -> u64 {
        self.inner.lock().log_end
    }

    /// One past the last consumer-visible byte.
    pub fn visible_end(&self) -> u64 {
        self.inner.lock().visible_end
    }

    /// Reads messages starting at `offset`, up to `max_bytes` of framed
    /// data ("each pull request contains the offset of the message from
    /// which the consumption begins and a maximum number of bytes to
    /// fetch"). Returns `(messages_with_offsets, next_offset)`.
    pub fn read(
        &self,
        offset: u64,
        max_bytes: usize,
    ) -> Result<(Vec<(u64, Message)>, u64), KafkaError> {
        let inner = self.inner.lock();
        let log_start = inner.segments.first().map_or(0, |s| s.base_offset);
        if offset < log_start || offset > inner.visible_end {
            return Err(KafkaError::OffsetOutOfRange {
                requested: offset,
                log_start,
                log_end: inner.visible_end,
            });
        }
        if offset == inner.visible_end {
            return Ok((Vec::new(), offset));
        }
        // Locate the segment holding `offset` via the in-memory offset
        // list (binary search).
        let seg_idx = match inner
            .segments
            .binary_search_by(|s| s.base_offset.cmp(&offset))
        {
            Ok(idx) => idx,
            Err(idx) => idx - 1,
        };

        let mut out = Vec::new();
        let mut cursor = offset;
        let mut bytes = 0usize;
        let mut idx = seg_idx;
        while bytes < max_bytes && cursor < inner.visible_end {
            let segment = match inner.segments.get(idx) {
                Some(s) => s,
                None => break,
            };
            let rel = (cursor - segment.base_offset) as usize;
            if rel >= segment.data.len() {
                idx += 1;
                continue;
            }
            // Never serve past the flush horizon.
            let visible_in_segment =
                (inner.visible_end - segment.base_offset).min(segment.data.len() as u64) as usize;
            match Message::decode_at(&segment.data[..visible_in_segment], rel)? {
                None => {
                    idx += 1;
                    continue;
                }
                Some((message, next_rel)) => {
                    bytes += next_rel - rel;
                    out.push((cursor, message));
                    cursor = segment.base_offset + next_rel as u64;
                }
            }
        }
        Ok((out, cursor))
    }

    /// Blocks until data past `offset` is visible, or `timeout` elapses.
    /// Returns true when data is available. This is what makes the
    /// consumer's "iterator never terminates" blocking semantics work.
    pub fn wait_for_data(&self, offset: u64, timeout: Duration) -> bool {
        let mut inner = self.inner.lock();
        if inner.visible_end > offset {
            return true;
        }
        self.data_ready.wait_for(&mut inner, timeout);
        inner.visible_end > offset
    }

    /// Applies the time-based retention SLA: whole segments whose last
    /// append is older than the retention period are deleted. Returns
    /// deleted segment count. The (possibly empty) newest segment always
    /// survives so `log_end` stays meaningful.
    pub fn enforce_retention(&self) -> usize {
        let now = self.clock.now();
        let mut inner = self.inner.lock();
        let mut deleted = 0;
        while inner.segments.len() > 1 {
            let expired = now.saturating_sub(inner.segments[0].last_append) > self.config.retention;
            if !expired {
                break;
            }
            inner.segments.remove(0);
            deleted += 1;
        }
        // A single expired segment is truncated in place by rolling.
        if inner.segments.len() == 1 {
            let expired = now.saturating_sub(inner.segments[0].last_append) > self.config.retention
                && !inner.segments[0].data.is_empty();
            if expired {
                let end = inner.log_end;
                inner.segments[0] = Segment {
                    base_offset: end,
                    data: Vec::new(),
                    last_append: now,
                };
                deleted += 1;
            }
        }
        deleted
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.inner.lock().segments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use li_commons::sim::SimClock;

    fn log_with(config: LogConfig) -> (PartitionLog, SimClock) {
        let clock = SimClock::new();
        (PartitionLog::new(config, Arc::new(clock.clone())), clock)
    }

    fn msg(text: &str) -> Message {
        Message::new(text.as_bytes().to_vec())
    }

    #[test]
    fn append_read_round_trip_with_offsets() {
        let (log, _) = log_with(LogConfig::default());
        let o1 = log.append(&msg("a"));
        let o2 = log.append(&msg("bb"));
        let o3 = log.append(&msg("ccc"));
        assert_eq!(o1, 0);
        assert_eq!(o2, msg("a").framed_len() as u64);
        assert_eq!(o3, o2 + msg("bb").framed_len() as u64);
        let (messages, next) = log.read(0, usize::MAX).unwrap();
        assert_eq!(messages.len(), 3);
        assert_eq!(messages[1].0, o2);
        assert_eq!(messages[2].1.payload.as_ref(), b"ccc");
        assert_eq!(next, log.log_end());
        // Resume from the middle.
        let (tail, _) = log.read(o2, usize::MAX).unwrap();
        assert_eq!(tail.len(), 2);
    }

    #[test]
    fn max_bytes_bounds_the_fetch() {
        let (log, _) = log_with(LogConfig::default());
        for i in 0..100 {
            log.append(&msg(&format!("event-{i}")));
        }
        let (messages, next) = log.read(0, 100).unwrap();
        assert!(messages.len() < 100 && !messages.is_empty());
        // Continue from next.
        let (more, _) = log.read(next, usize::MAX).unwrap();
        assert_eq!(messages.len() + more.len(), 100);
    }

    #[test]
    fn unflushed_messages_invisible() {
        let (log, _) = log_with(LogConfig {
            flush_interval_messages: 10,
            flush_interval: Duration::from_secs(3600),
            ..LogConfig::default()
        });
        for _ in 0..5 {
            log.append(&msg("x"));
        }
        assert_eq!(log.visible_end(), 0);
        let (messages, next) = log.read(0, usize::MAX).unwrap();
        assert!(messages.is_empty());
        assert_eq!(next, 0);
        // 10th message triggers the count-based flush.
        for _ in 0..5 {
            log.append(&msg("x"));
        }
        assert_eq!(log.visible_end(), log.log_end());
        assert_eq!(log.read(0, usize::MAX).unwrap().0.len(), 10);
    }

    #[test]
    fn time_based_flush() {
        let (log, clock) = log_with(LogConfig {
            flush_interval_messages: 1000,
            flush_interval: Duration::from_millis(50),
            ..LogConfig::default()
        });
        log.append(&msg("x"));
        assert_eq!(log.visible_end(), 0);
        clock.advance(Duration::from_millis(60));
        log.append(&msg("y")); // append past the interval flushes
        assert_eq!(log.visible_end(), log.log_end());
    }

    #[test]
    fn segments_roll_and_offsets_span_them() {
        let (log, _) = log_with(LogConfig {
            segment_bytes: 64,
            ..LogConfig::default()
        });
        let mut offsets = Vec::new();
        for i in 0..50 {
            offsets.push(log.append(&msg(&format!("event-{i}"))));
        }
        assert!(log.segment_count() > 1);
        // Reads work across segment boundaries from any starting offset.
        for (i, &offset) in offsets.iter().enumerate() {
            let (messages, _) = log.read(offset, usize::MAX).unwrap();
            assert_eq!(messages.len(), 50 - i, "from offset {offset}");
        }
    }

    #[test]
    fn out_of_range_offsets_rejected() {
        let (log, _) = log_with(LogConfig::default());
        log.append(&msg("x"));
        let err = log.read(log.log_end() + 1, 100).unwrap_err();
        assert!(matches!(err, KafkaError::OffsetOutOfRange { .. }));
        // Mid-message offsets are detected as corrupt rather than served.
        assert!(log.read(3, 100).is_err());
    }

    #[test]
    fn rewind_and_reconsume() {
        // "A consumer can deliberately rewind back to an old offset and
        // re-consume data."
        let (log, _) = log_with(LogConfig::default());
        for i in 0..10 {
            log.append(&msg(&format!("{i}")));
        }
        let (first, _) = log.read(0, usize::MAX).unwrap();
        let (again, _) = log.read(0, usize::MAX).unwrap();
        assert_eq!(first, again);
    }

    #[test]
    fn retention_deletes_old_segments() {
        let (log, clock) = log_with(LogConfig {
            segment_bytes: 64,
            retention: Duration::from_secs(100),
            ..LogConfig::default()
        });
        for i in 0..30 {
            log.append(&msg(&format!("old-{i}")));
        }
        let old_end = log.log_end();
        clock.advance(Duration::from_secs(200));
        for i in 0..5 {
            log.append(&msg(&format!("new-{i}")));
        }
        let deleted = log.enforce_retention();
        assert!(deleted > 0);
        assert!(log.log_start() > 0);
        // Old offsets now out of range; new data still readable.
        assert!(log.read(0, 100).is_err());
        let (messages, _) = log.read(old_end, usize::MAX).unwrap();
        assert_eq!(messages.len(), 5);
    }

    #[test]
    fn retention_with_single_expired_segment_truncates() {
        let (log, clock) = log_with(LogConfig {
            retention: Duration::from_secs(10),
            ..LogConfig::default()
        });
        log.append(&msg("doomed"));
        clock.advance(Duration::from_secs(60));
        assert_eq!(log.enforce_retention(), 1);
        assert_eq!(log.log_start(), log.log_end());
        assert!(log.read(log.log_end(), 100).unwrap().0.is_empty());
    }

    #[test]
    fn wait_for_data_blocks_until_flush() {
        let (log, _) = log_with(LogConfig {
            flush_interval_messages: 1,
            ..LogConfig::default()
        });
        assert!(!log.wait_for_data(0, Duration::from_millis(10)), "times out");
        let log = Arc::new(log);
        let waiter = {
            let log = log.clone();
            std::thread::spawn(move || log.wait_for_data(0, Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(20));
        log.append(&msg("wake up"));
        assert!(waiter.join().unwrap());
    }
}
