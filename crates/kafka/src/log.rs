//! Partition logs: segments, logical offsets, flush policy, retention.
//!
//! "Each partition of a topic corresponds to a logical log. Physically, a
//! log is implemented as a set of segment files of approximately the same
//! size. Every time a producer publishes a message to a partition, the
//! broker simply appends the message to the last segment file. For better
//! performance, we flush the segment files to disk only after a
//! configurable number of messages have been published or a certain amount
//! of time has elapsed. A message is only exposed to the consumers after
//! it is flushed. ... each message is addressed by its logical offset in
//! the log. ... For every partition in a topic, a broker keeps in memory
//! the initial offset of each segment file" (§V.B).
//!
//! ## Zero-copy data path
//!
//! A segment is a list of frozen, immutable [`Bytes`] chunks plus a plain
//! `Vec<u8>` append tail. Appends go into the tail under the partition
//! mutex; a flush (or a segment roll) *freezes* the tail into a shared
//! `Bytes` chunk — a move, not a copy. [`PartitionLog::read_chunks`] then
//! only computes `(segment, chunk, range)` under the lock and returns
//! cheap `Bytes` views of those chunks; frame walking, decoding, and
//! decompression all happen outside the mutex, and consumer-visible
//! payloads are `Bytes::slice` sub-views of the segment allocation — the
//! in-process analog of serving straight from the page cache via
//! `sendfile` (§V.B "avoids byte copying").

use bytes::Bytes;
use li_commons::bufio;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

use li_commons::sim::Clock;

use crate::message::{FetchChunk, KafkaError, Message, MessageSet};

/// Log tuning knobs.
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Roll to a new segment after the active one exceeds this.
    pub segment_bytes: usize,
    /// Flush after this many appended messages.
    pub flush_interval_messages: u64,
    /// Flush after this much time since the last flush.
    pub flush_interval: Duration,
    /// Delete segments not appended to for this long — "a message is
    /// automatically deleted if it has been retained in the broker longer
    /// than a certain period (e.g., 7 days)".
    pub retention: Duration,
    /// Byte capacity of the per-partition group-commit queue: producers
    /// enqueueing past this block until the drainer frees space
    /// (backpressure, not load shedding). One in-flight group may
    /// overshoot the cap so a single oversized batch can always land.
    pub ingest_queue_bytes: usize,
    /// Simulated stable-storage latency charged once per flush (the
    /// in-memory log is otherwise free to "fsync", which hides exactly
    /// the cost group commit exists to amortize). `ZERO` by default —
    /// no behavior change anywhere but benchmarks that opt in. The
    /// sleep happens under the log lock, like a real fsync blocking
    /// that partition's writers, and it yields the CPU so concurrent
    /// producers can queue behind it — which is how commit groups form.
    pub flush_latency: Duration,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            segment_bytes: 1 << 20,
            flush_interval_messages: 1,
            flush_interval: Duration::from_millis(100),
            retention: Duration::from_secs(7 * 24 * 3600),
            ingest_queue_bytes: 4 << 20,
            flush_latency: Duration::ZERO,
        }
    }
}

#[derive(Debug)]
struct Segment {
    base_offset: u64,
    /// Frozen frame-aligned chunks as `(start byte relative to
    /// base_offset, data)`; starts are strictly increasing.
    chunks: Vec<(usize, Bytes)>,
    /// Total bytes across `chunks`.
    frozen_len: usize,
    /// Append tail not yet frozen; only the newest segment has one.
    active: Vec<u8>,
    last_append: Duration,
}

impl Segment {
    fn new(base_offset: u64, now: Duration) -> Self {
        Segment {
            base_offset,
            chunks: Vec::new(),
            frozen_len: 0,
            active: Vec::new(),
            last_append: now,
        }
    }

    fn len(&self) -> usize {
        self.frozen_len + self.active.len()
    }

    /// Freezes the append tail into an immutable shared chunk (a move of
    /// the `Vec`'s allocation — no bytes are copied). Invariant: every
    /// consumer-visible byte is frozen, so reads never touch `active`.
    fn freeze_active(&mut self) {
        if self.active.is_empty() {
            return;
        }
        let start = self.frozen_len;
        self.frozen_len += self.active.len();
        self.chunks.push((start, Bytes::from(std::mem::take(&mut self.active))));
    }
}

#[derive(Debug)]
struct LogInner {
    segments: Vec<Segment>,
    /// Absolute offset one past the last appended byte.
    log_end: u64,
    /// Absolute offset one past the last *flushed* (consumer-visible) byte.
    visible_end: u64,
    unflushed_messages: u64,
    last_flush: Duration,
}

/// One topic-partition's log.
pub struct PartitionLog {
    config: LogConfig,
    clock: Arc<dyn Clock>,
    inner: Mutex<LogInner>,
    data_ready: Condvar,
}

impl std::fmt::Debug for PartitionLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("PartitionLog")
            .field("segments", &inner.segments.len())
            .field("log_end", &inner.log_end)
            .field("visible_end", &inner.visible_end)
            .finish()
    }
}

impl PartitionLog {
    /// Creates an empty log.
    pub fn new(config: LogConfig, clock: Arc<dyn Clock>) -> Self {
        let now = clock.now();
        PartitionLog {
            config,
            clock,
            inner: Mutex::new(LogInner {
                segments: vec![Segment::new(0, now)],
                log_end: 0,
                visible_end: 0,
                unflushed_messages: 0,
                last_flush: now,
            }),
            data_ready: Condvar::new(),
        }
    }

    /// Appends one message, returning its logical offset. Visibility waits
    /// for the flush policy.
    pub fn append(&self, message: &Message) -> u64 {
        let mut frames = Vec::with_capacity(message.framed_len());
        message.encode(&mut frames);
        self.append_frames(&frames)
            .expect("freshly encoded frame is structurally valid")
    }

    /// Appends a whole message set under **one** lock acquisition,
    /// returning the offset of its first message (== the log end when the
    /// set is empty). The set is encoded once, outside the lock.
    pub fn append_set(&self, set: &MessageSet) -> u64 {
        let frames = set.encode();
        self.append_frames(&frames)
            .expect("freshly encoded set is structurally valid")
    }

    /// Appends pre-framed messages (a producer wire buffer, a mirrored or
    /// replicated chunk) verbatim under one lock acquisition, returning
    /// the base offset. Frame structure is validated and messages are
    /// counted *before* the lock is taken; torn or misaligned input is
    /// rejected without mutating the log.
    pub fn append_frames(&self, frames: &[u8]) -> Result<u64, KafkaError> {
        let messages = Self::validate_frames(frames)?;
        let now = self.clock.now();
        let mut inner = self.inner.lock();
        let offset = self.append_one_locked(&mut inner, frames, messages, now);
        self.flush_if_due_locked(&mut inner, now);
        Ok(offset)
    }

    /// Appends several pre-framed buffers — one producer group's worth —
    /// under **one** lock acquisition, returning the base offset of the
    /// first buffer. This is the group-commit primitive: each buffer is
    /// validated outside the lock exactly like [`Self::append_frames`],
    /// then all of them land in the log back-to-back with a single flush
    /// policy check at the end, so `N` concurrent producers cost one mutex
    /// round-trip, one flush, and one `data_ready` broadcast instead of
    /// `N` of each. Byte content and the final visible end are identical
    /// to appending the buffers sequentially; only mid-drain visibility
    /// differs (intermediate flush points are skipped). Any torn buffer
    /// rejects the whole group without mutating the log.
    pub fn append_frames_multi(&self, buffers: &[&[u8]]) -> Result<u64, KafkaError> {
        let mut messages = 0u64;
        for buffer in buffers {
            messages += Self::validate_frames(buffer)?;
        }
        let now = self.clock.now();
        let mut inner = self.inner.lock();
        let base = inner.log_end;
        for buffer in buffers {
            // Message counts were validated up front; charge them once below.
            self.append_one_locked(&mut inner, buffer, 0, now);
        }
        inner.unflushed_messages += messages;
        if !buffers.is_empty() {
            self.flush_if_due_locked(&mut inner, now);
        }
        Ok(base)
    }

    /// Structural validation of a frame buffer (no lock): returns the
    /// message count or rejects torn/misaligned input.
    fn validate_frames(frames: &[u8]) -> Result<u64, KafkaError> {
        let mut messages = 0u64;
        let mut pos = 0usize;
        while pos < frames.len() {
            match bufio::frame_bounds(frames, pos) {
                bufio::FrameBounds::Record { end, .. } => {
                    pos = end;
                    messages += 1;
                }
                _ => {
                    return Err(KafkaError::Corrupt(format!(
                        "torn frame at byte {pos} of appended set"
                    )))
                }
            }
        }
        Ok(messages)
    }

    /// Appends one validated buffer under an already-held lock: roll
    /// check, tail extend, offset advance. Returns the buffer's base
    /// offset. Flush policy is the caller's job.
    fn append_one_locked(
        &self,
        inner: &mut LogInner,
        frames: &[u8],
        messages: u64,
        now: Duration,
    ) -> u64 {
        let offset = inner.log_end;
        let roll = inner
            .segments
            .last()
            .is_none_or(|s| s.len() >= self.config.segment_bytes);
        if roll {
            if let Some(sealed) = inner.segments.last_mut() {
                sealed.freeze_active();
            }
            inner.segments.push(Segment::new(offset, now));
        }
        let active = inner.segments.last_mut().expect("active segment");
        active.active.extend_from_slice(frames);
        active.last_append = now;
        inner.log_end = offset + frames.len() as u64;
        inner.unflushed_messages += messages;
        offset
    }

    fn flush_if_due_locked(&self, inner: &mut LogInner, now: Duration) {
        let flush_due = inner.unflushed_messages >= self.config.flush_interval_messages
            || now.saturating_sub(inner.last_flush) >= self.config.flush_interval;
        if flush_due {
            self.flush_locked(inner, now);
        }
    }

    fn flush_locked(&self, inner: &mut LogInner, now: Duration) {
        if self.config.flush_latency > Duration::ZERO {
            std::thread::sleep(self.config.flush_latency);
        }
        if let Some(active) = inner.segments.last_mut() {
            active.freeze_active();
        }
        inner.visible_end = inner.log_end;
        inner.unflushed_messages = 0;
        inner.last_flush = now;
        self.data_ready.notify_all();
    }

    /// Forces a flush (shutdown / time-policy tick).
    pub fn flush(&self) {
        let now = self.clock.now();
        let mut inner = self.inner.lock();
        self.flush_locked(&mut inner, now);
    }

    /// Smallest valid offset (moves forward as retention deletes segments).
    pub fn log_start(&self) -> u64 {
        self.inner.lock().segments.first().map_or(0, |s| s.base_offset)
    }

    /// One past the last appended byte.
    pub fn log_end(&self) -> u64 {
        self.inner.lock().log_end
    }

    /// One past the last consumer-visible byte.
    pub fn visible_end(&self) -> u64 {
        self.inner.lock().visible_end
    }

    /// Chaos invariant checker: walks every visible byte from
    /// [`PartitionLog::log_start`], verifying the log is one contiguous,
    /// CRC-valid frame sequence — no holes between chunks, no torn or
    /// corrupt frames, and the walk ends exactly at
    /// [`PartitionLog::visible_end`]. Returns the number of messages.
    pub fn verify_contiguity(&self) -> Result<u64, String> {
        let start = self.log_start();
        let (chunks, next) = self
            .read_chunks(start, usize::MAX)
            .map_err(|e| format!("read_chunks failed: {e}"))?;
        let mut expected = start;
        let mut messages = 0u64;
        for chunk in &chunks {
            if chunk.base_offset != expected {
                return Err(format!(
                    "hole in log: chunk at offset {} but expected {expected}",
                    chunk.base_offset
                ));
            }
            let mut pos = 0usize;
            loop {
                match bufio::frame_at(&chunk.data, pos) {
                    bufio::FrameBounds::Record { end, .. } => {
                        pos = end;
                        messages += 1;
                    }
                    bufio::FrameBounds::End => break,
                    bufio::FrameBounds::Corrupt => {
                        return Err(format!(
                            "corrupt frame at offset {}",
                            chunk.base_offset + pos as u64
                        ));
                    }
                }
            }
            expected += chunk.data.len() as u64;
        }
        if expected != next || next != self.visible_end() {
            return Err(format!(
                "walk ended at {expected}, read_chunks next {next}, visible_end {}",
                self.visible_end()
            ));
        }
        Ok(messages)
    }

    /// Fingerprint of every visible byte (FNV-1a over the stored frames).
    /// Two logs with equal fingerprints and equal
    /// [`PartitionLog::log_start`] hold byte-identical data — the
    /// mirror/replica byte-identity invariant.
    pub fn content_fingerprint(&self) -> u64 {
        let start = self.log_start();
        let (chunks, _) = self
            .read_chunks(start, usize::MAX)
            .unwrap_or((Vec::new(), start));
        let mut bytes = Vec::new();
        for chunk in &chunks {
            bytes.extend_from_slice(&chunk.data);
        }
        li_commons::fnv::fnv1a(&bytes)
    }

    /// FNV-1a fingerprint of the visible bytes below `end`. This is the
    /// byte-prefix test behind divergent-replica detection: a crashed
    /// leader can rejoin holding an uncommitted tail that its successor
    /// overwrote with different records of the same framed length, so
    /// comparing log lengths alone cannot spot the divergence.
    pub fn prefix_fingerprint(&self, end: u64) -> u64 {
        let start = self.log_start();
        let (chunks, _) = self
            .read_chunks(start, usize::MAX)
            .unwrap_or((Vec::new(), start));
        let mut bytes = Vec::new();
        for chunk in &chunks {
            if chunk.base_offset >= end {
                break;
            }
            let take = ((end - chunk.base_offset) as usize).min(chunk.data.len());
            bytes.extend_from_slice(&chunk.data[..take]);
        }
        li_commons::fnv::fnv1a(&bytes)
    }

    /// Reads messages starting at `offset`, up to `max_bytes` of framed
    /// data ("each pull request contains the offset of the message from
    /// which the consumption begins and a maximum number of bytes to
    /// fetch"). Returns `(messages_with_offsets, next_offset)`.
    ///
    /// Thin adapter over [`PartitionLog::read_chunks`]: the returned
    /// messages' payloads still alias segment memory, only the eager
    /// decode is added.
    pub fn read(
        &self,
        offset: u64,
        max_bytes: usize,
    ) -> Result<(Vec<(u64, Message)>, u64), KafkaError> {
        let (chunks, next) = self.read_chunks(offset, max_bytes)?;
        let mut out = Vec::new();
        for chunk in &chunks {
            for item in chunk {
                out.push(item?);
            }
        }
        Ok((out, next))
    }

    /// Chunk-based fetch, the zero-copy read path. Under a short lock
    /// hold this only *locates* the data — binary search for the segment,
    /// then for the frozen chunk holding `offset` — and snapshots cheap
    /// `Bytes` views clamped to the flush horizon. The lock is dropped
    /// before any frame is examined; the returned chunks are then trimmed
    /// to `max_bytes` at a message boundary by walking frame length
    /// prefixes (structural validation only — no CRC, no payload copies,
    /// see [`FetchChunk`]).
    ///
    /// At least one message is returned when any is visible, even if it
    /// alone exceeds `max_bytes` (the paper's pull-request contract).
    pub fn read_chunks(
        &self,
        offset: u64,
        max_bytes: usize,
    ) -> Result<(Vec<FetchChunk>, u64), KafkaError> {
        // Phase 1 (locked): locate and snapshot chunk views.
        let mut views: Vec<(u64, Bytes)> = Vec::new();
        {
            let inner = self.inner.lock();
            let log_start = inner.segments.first().map_or(0, |s| s.base_offset);
            if offset < log_start || offset > inner.visible_end {
                return Err(KafkaError::OffsetOutOfRange {
                    requested: offset,
                    log_start,
                    log_end: inner.visible_end,
                });
            }
            if offset == inner.visible_end {
                return Ok((Vec::new(), offset));
            }
            let seg_idx = match inner
                .segments
                .binary_search_by(|s| s.base_offset.cmp(&offset))
            {
                Ok(idx) => idx,
                Err(idx) => idx - 1,
            };
            // Conservative byte estimate of what the trim walk can use:
            // stop snapshotting one chunk past the budget (the walk trims
            // the overshoot to a frame boundary outside the lock).
            let mut taken = 0usize;
            'collect: for segment in &inner.segments[seg_idx..] {
                if segment.base_offset >= inner.visible_end {
                    break;
                }
                let rel = offset.saturating_sub(segment.base_offset) as usize;
                let first_chunk = match segment
                    .chunks
                    .binary_search_by(|(start, _)| start.cmp(&rel))
                {
                    Ok(idx) => idx,
                    Err(idx) => idx.saturating_sub(1),
                };
                for (chunk_start, data) in &segment.chunks[first_chunk..] {
                    if taken >= max_bytes {
                        break 'collect;
                    }
                    let abs = segment.base_offset + *chunk_start as u64;
                    if abs >= inner.visible_end {
                        break 'collect;
                    }
                    // Never serve past the flush horizon (frame-aligned
                    // by construction: flushes land on message bounds).
                    let visible_len =
                        ((inner.visible_end - abs) as usize).min(data.len());
                    let skip = rel.saturating_sub(*chunk_start);
                    if skip >= visible_len {
                        continue; // chunk entirely before `offset`
                    }
                    let view = if visible_len == data.len() {
                        data.clone()
                    } else {
                        data.slice(..visible_len)
                    };
                    views.push((abs, view));
                    taken += visible_len - skip;
                }
            }
        }

        // Phase 2 (unlocked): frame-walk each view — align to `offset`,
        // take whole frames while under budget, trim the tail.
        let mut chunks = Vec::new();
        let mut budget_used = 0usize;
        let mut next = offset;
        'walk: for (abs, data) in &views {
            let target = offset.saturating_sub(*abs) as usize;
            let mut pos = 0usize;
            while pos < target {
                match bufio::frame_bounds(data, pos) {
                    bufio::FrameBounds::Record { end, .. } => pos = end,
                    _ => break,
                }
            }
            if pos != target {
                return Err(KafkaError::Corrupt(format!(
                    "offset {offset} is not at a message boundary"
                )));
            }
            let start = pos;
            let mut messages = 0u64;
            while pos < data.len() && budget_used < max_bytes {
                match bufio::frame_bounds(data, pos) {
                    bufio::FrameBounds::Record { end, .. } => {
                        budget_used += end - pos;
                        pos = end;
                        messages += 1;
                    }
                    _ => {
                        return Err(KafkaError::Corrupt(format!(
                            "torn frame at offset {} in stored chunk",
                            *abs + pos as u64
                        )))
                    }
                }
            }
            if pos > start {
                let slice = if start == 0 && pos == data.len() {
                    data.clone()
                } else {
                    data.slice(start..pos)
                };
                chunks.push(FetchChunk {
                    base_offset: *abs + start as u64,
                    data: slice,
                    messages,
                });
                next = *abs + pos as u64;
            }
            if budget_used >= max_bytes {
                break 'walk;
            }
        }
        Ok((chunks, next))
    }

    /// Blocks until data past `offset` is visible, or `timeout` elapses.
    /// Returns true when data is available. This is what makes the
    /// consumer's "iterator never terminates" blocking semantics work.
    pub fn wait_for_data(&self, offset: u64, timeout: Duration) -> bool {
        let mut inner = self.inner.lock();
        if inner.visible_end > offset {
            return true;
        }
        self.data_ready.wait_for(&mut inner, timeout);
        inner.visible_end > offset
    }

    /// Applies the time-based retention SLA: whole segments whose last
    /// append is older than the retention period are deleted. Returns
    /// deleted segment count. The (possibly empty) newest segment always
    /// survives so `log_end` stays meaningful.
    pub fn enforce_retention(&self) -> usize {
        let now = self.clock.now();
        let mut inner = self.inner.lock();
        let mut deleted = 0;
        while inner.segments.len() > 1 {
            let expired = now.saturating_sub(inner.segments[0].last_append) > self.config.retention;
            if !expired {
                break;
            }
            inner.segments.remove(0);
            deleted += 1;
        }
        // A single expired segment is truncated in place by rolling.
        if inner.segments.len() == 1 {
            let expired = now.saturating_sub(inner.segments[0].last_append) > self.config.retention
                && inner.segments[0].len() != 0;
            if expired {
                let end = inner.log_end;
                inner.segments[0] = Segment::new(end, now);
                deleted += 1;
            }
        }
        deleted
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.inner.lock().segments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use li_commons::sim::SimClock;

    fn log_with(config: LogConfig) -> (PartitionLog, SimClock) {
        let clock = SimClock::new();
        (PartitionLog::new(config, Arc::new(clock.clone())), clock)
    }

    fn msg(text: &str) -> Message {
        Message::new(text.as_bytes().to_vec())
    }

    #[test]
    fn append_read_round_trip_with_offsets() {
        let (log, _) = log_with(LogConfig::default());
        let o1 = log.append(&msg("a"));
        let o2 = log.append(&msg("bb"));
        let o3 = log.append(&msg("ccc"));
        assert_eq!(o1, 0);
        assert_eq!(o2, msg("a").framed_len() as u64);
        assert_eq!(o3, o2 + msg("bb").framed_len() as u64);
        let (messages, next) = log.read(0, usize::MAX).unwrap();
        assert_eq!(messages.len(), 3);
        assert_eq!(messages[1].0, o2);
        assert_eq!(messages[2].1.payload.as_ref(), b"ccc");
        assert_eq!(next, log.log_end());
        // Resume from the middle.
        let (tail, _) = log.read(o2, usize::MAX).unwrap();
        assert_eq!(tail.len(), 2);
    }

    #[test]
    fn max_bytes_bounds_the_fetch() {
        let (log, _) = log_with(LogConfig::default());
        for i in 0..100 {
            log.append(&msg(&format!("event-{i}")));
        }
        let (messages, next) = log.read(0, 100).unwrap();
        assert!(messages.len() < 100 && !messages.is_empty());
        // Continue from next.
        let (more, _) = log.read(next, usize::MAX).unwrap();
        assert_eq!(messages.len() + more.len(), 100);
    }

    #[test]
    fn unflushed_messages_invisible() {
        let (log, _) = log_with(LogConfig {
            flush_interval_messages: 10,
            flush_interval: Duration::from_secs(3600),
            ..LogConfig::default()
        });
        for _ in 0..5 {
            log.append(&msg("x"));
        }
        assert_eq!(log.visible_end(), 0);
        let (messages, next) = log.read(0, usize::MAX).unwrap();
        assert!(messages.is_empty());
        assert_eq!(next, 0);
        // 10th message triggers the count-based flush.
        for _ in 0..5 {
            log.append(&msg("x"));
        }
        assert_eq!(log.visible_end(), log.log_end());
        assert_eq!(log.read(0, usize::MAX).unwrap().0.len(), 10);
    }

    #[test]
    fn flush_latency_is_charged_per_flush_not_per_message() {
        let (log, _) = log_with(LogConfig {
            flush_interval_messages: 4,
            flush_interval: Duration::from_secs(3600),
            flush_latency: Duration::from_millis(5),
            ..LogConfig::default()
        });
        // Three appends stay under the flush threshold: no latency paid.
        let started = std::time::Instant::now();
        for _ in 0..3 {
            log.append(&msg("x"));
        }
        assert!(started.elapsed() < Duration::from_millis(5));
        // The fourth append flushes once, sleeping at least the latency.
        let started = std::time::Instant::now();
        log.append(&msg("x"));
        assert!(started.elapsed() >= Duration::from_millis(5));
        assert_eq!(log.visible_end(), log.log_end());
    }

    #[test]
    fn time_based_flush() {
        let (log, clock) = log_with(LogConfig {
            flush_interval_messages: 1000,
            flush_interval: Duration::from_millis(50),
            ..LogConfig::default()
        });
        log.append(&msg("x"));
        assert_eq!(log.visible_end(), 0);
        clock.advance(Duration::from_millis(60));
        log.append(&msg("y")); // append past the interval flushes
        assert_eq!(log.visible_end(), log.log_end());
    }

    #[test]
    fn segments_roll_and_offsets_span_them() {
        let (log, _) = log_with(LogConfig {
            segment_bytes: 64,
            ..LogConfig::default()
        });
        let mut offsets = Vec::new();
        for i in 0..50 {
            offsets.push(log.append(&msg(&format!("event-{i}"))));
        }
        assert!(log.segment_count() > 1);
        // Reads work across segment boundaries from any starting offset.
        for (i, &offset) in offsets.iter().enumerate() {
            let (messages, _) = log.read(offset, usize::MAX).unwrap();
            assert_eq!(messages.len(), 50 - i, "from offset {offset}");
        }
    }

    #[test]
    fn out_of_range_offsets_rejected() {
        let (log, _) = log_with(LogConfig::default());
        log.append(&msg("x"));
        let err = log.read(log.log_end() + 1, 100).unwrap_err();
        assert!(matches!(err, KafkaError::OffsetOutOfRange { .. }));
        // Mid-message offsets are detected as corrupt rather than served.
        assert!(log.read(3, 100).is_err());
    }

    #[test]
    fn rewind_and_reconsume() {
        // "A consumer can deliberately rewind back to an old offset and
        // re-consume data."
        let (log, _) = log_with(LogConfig::default());
        for i in 0..10 {
            log.append(&msg(&format!("{i}")));
        }
        let (first, _) = log.read(0, usize::MAX).unwrap();
        let (again, _) = log.read(0, usize::MAX).unwrap();
        assert_eq!(first, again);
    }

    #[test]
    fn retention_deletes_old_segments() {
        let (log, clock) = log_with(LogConfig {
            segment_bytes: 64,
            retention: Duration::from_secs(100),
            ..LogConfig::default()
        });
        for i in 0..30 {
            log.append(&msg(&format!("old-{i}")));
        }
        let old_end = log.log_end();
        clock.advance(Duration::from_secs(200));
        for i in 0..5 {
            log.append(&msg(&format!("new-{i}")));
        }
        let deleted = log.enforce_retention();
        assert!(deleted > 0);
        assert!(log.log_start() > 0);
        // Old offsets now out of range; new data still readable.
        assert!(log.read(0, 100).is_err());
        let (messages, _) = log.read(old_end, usize::MAX).unwrap();
        assert_eq!(messages.len(), 5);
    }

    #[test]
    fn retention_with_single_expired_segment_truncates() {
        let (log, clock) = log_with(LogConfig {
            retention: Duration::from_secs(10),
            ..LogConfig::default()
        });
        log.append(&msg("doomed"));
        clock.advance(Duration::from_secs(60));
        assert_eq!(log.enforce_retention(), 1);
        assert_eq!(log.log_start(), log.log_end());
        assert!(log.read(log.log_end(), 100).unwrap().0.is_empty());
    }

    #[test]
    fn append_set_returns_base_offset_and_matches_singles() {
        let (batched, _) = log_with(LogConfig::default());
        let (single, _) = log_with(LogConfig::default());
        let set = MessageSet {
            messages: vec![msg("a"), msg("bb"), msg("ccc")],
        };
        let base = batched.append_set(&set);
        assert_eq!(base, 0);
        let base2 = batched.append_set(&set);
        assert_eq!(base2, batched.log_end() / 2);
        for m in set.messages.iter().chain(set.messages.iter()) {
            single.append(m);
        }
        assert_eq!(batched.log_end(), single.log_end());
        let a = batched.read(0, usize::MAX).unwrap();
        let b = single.read(0, usize::MAX).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn append_frames_multi_matches_sequential_appends() {
        for segment_bytes in [64usize, 1 << 20] {
            let (grouped, _) = log_with(LogConfig {
                segment_bytes,
                ..LogConfig::default()
            });
            let (single, _) = log_with(LogConfig {
                segment_bytes,
                ..LogConfig::default()
            });
            let buffers: Vec<Vec<u8>> = (0..7)
                .map(|i| {
                    MessageSet::from_payloads(
                        (0..=i).map(|j| format!("m-{i}-{j}").into_bytes()),
                    )
                    .encode()
                })
                .collect();
            let views: Vec<&[u8]> = buffers.iter().map(|b| b.as_slice()).collect();
            let base = grouped.append_frames_multi(&views).unwrap();
            assert_eq!(base, 0);
            for buffer in &buffers {
                single.append_frames(buffer).unwrap();
            }
            grouped.flush();
            single.flush();
            assert_eq!(grouped.log_end(), single.log_end());
            assert_eq!(grouped.content_fingerprint(), single.content_fingerprint());
            assert_eq!(
                grouped.verify_contiguity().unwrap(),
                single.verify_contiguity().unwrap()
            );
        }
    }

    #[test]
    fn append_frames_multi_empty_group_is_a_no_op() {
        let (log, _) = log_with(LogConfig::default());
        log.append(&msg("x"));
        let end = log.log_end();
        assert_eq!(log.append_frames_multi(&[]).unwrap(), end);
        assert_eq!(log.log_end(), end);
    }

    #[test]
    fn append_frames_multi_rejects_any_torn_buffer_atomically() {
        let (log, _) = log_with(LogConfig::default());
        let good = MessageSet { messages: vec![msg("good")] }.encode();
        let mut torn = MessageSet { messages: vec![msg("torn")] }.encode();
        torn.truncate(torn.len() - 2);
        assert!(log.append_frames_multi(&[&good, &torn]).is_err());
        assert_eq!(log.log_end(), 0, "whole group rejected");
    }

    #[test]
    fn append_frames_rejects_torn_input_without_mutating() {
        let (log, _) = log_with(LogConfig::default());
        let mut frames = MessageSet { messages: vec![msg("whole")] }.encode();
        frames.truncate(frames.len() - 2);
        assert!(log.append_frames(&frames).is_err());
        assert_eq!(log.log_end(), 0);
    }

    #[test]
    fn fetched_chunks_alias_segment_memory() {
        // The zero-copy proof at the log layer: the Bytes handed to a
        // reader share the frozen chunk's allocation with a later read of
        // the same range — no copy was made for either.
        let (log, _) = log_with(LogConfig::default());
        for i in 0..8 {
            log.append(&msg(&format!("payload-{i}")));
        }
        let (first, _) = log.read_chunks(0, usize::MAX).unwrap();
        let (again, _) = log.read_chunks(0, usize::MAX).unwrap();
        assert!(!first.is_empty());
        for (a, b) in first.iter().zip(again.iter()) {
            assert!(a.data.shares_allocation(&b.data));
        }
        // Lazily decoded payloads alias the chunk too.
        for chunk in &first {
            for item in chunk {
                let (_, message) = item.unwrap();
                assert!(message.payload.shares_allocation(&chunk.data));
            }
        }
    }

    #[test]
    fn chunk_reads_resume_mid_chunk_and_trim_to_budget() {
        let (log, _) = log_with(LogConfig::default());
        let mut offsets = Vec::new();
        for i in 0..20 {
            offsets.push(log.append(&msg(&format!("event-{i}"))));
        }
        // Resume from each message boundary; chunk path must agree with
        // the eager decode at every budget.
        for &offset in &offsets {
            for max_bytes in [1usize, 33, 100, usize::MAX] {
                let (chunks, next) = log.read_chunks(offset, max_bytes).unwrap();
                let mut lazy = Vec::new();
                for chunk in &chunks {
                    for item in chunk {
                        lazy.push(item.unwrap());
                    }
                }
                let (eager, eager_next) = log.read(offset, max_bytes).unwrap();
                assert_eq!(lazy, eager);
                assert_eq!(next, eager_next);
            }
        }
    }

    #[test]
    fn wait_for_data_blocks_until_flush() {
        let (log, _) = log_with(LogConfig {
            flush_interval_messages: 1,
            ..LogConfig::default()
        });
        assert!(!log.wait_for_data(0, Duration::from_millis(10)), "times out");
        let log = Arc::new(log);
        let waiter = {
            let log = log.clone();
            std::thread::spawn(move || log.wait_for_data(0, Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(20));
        log.append(&msg("wake up"));
        assert!(waiter.join().unwrap());
    }
}
