//! Messages, message sets, and the storage codec.
//!
//! On disk (and on the wire) a message is framed as
//! `[len u32][crc u32][attributes u8][payload]` — the CRC guards against
//! torn tail writes, the attribute byte selects the compression codec.
//! "A message is defined to contain just a payload of bytes" (§V.A);
//! batching wraps a whole compressed message set inside a single wrapper
//! message (the paper's producer-side batch compression).

use bytes::Bytes;
use li_commons::bufio;
use li_commons::compress::{self, Codec};
use std::fmt;

/// Errors from the Kafka layer.
#[derive(Debug, Clone, PartialEq)]
pub enum KafkaError {
    /// Unknown topic or partition.
    UnknownTopicPartition(String, u32),
    /// Offset out of range (before retention window or past the log end).
    OffsetOutOfRange {
        /// Requested offset.
        requested: u64,
        /// Smallest valid offset.
        log_start: u64,
        /// One past the last visible byte.
        log_end: u64,
    },
    /// Storage-level corruption.
    Corrupt(String),
    /// Compression codec failure.
    Codec(String),
    /// Coordination (ZooKeeper) failure.
    Coordination(String),
    /// The consumer group has no live members / bad state.
    Group(String),
}

impl fmt::Display for KafkaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KafkaError::UnknownTopicPartition(topic, partition) => {
                write!(f, "unknown topic-partition {topic}/{partition}")
            }
            KafkaError::OffsetOutOfRange { requested, log_start, log_end } => write!(
                f,
                "offset {requested} out of range [{log_start}, {log_end})"
            ),
            KafkaError::Corrupt(msg) => write!(f, "corrupt log: {msg}"),
            KafkaError::Codec(msg) => write!(f, "codec error: {msg}"),
            KafkaError::Coordination(msg) => write!(f, "coordination error: {msg}"),
            KafkaError::Group(msg) => write!(f, "group error: {msg}"),
        }
    }
}

impl std::error::Error for KafkaError {}

impl From<li_zk::ZkError> for KafkaError {
    fn from(e: li_zk::ZkError) -> Self {
        KafkaError::Coordination(e.to_string())
    }
}

/// Framing overhead per stored message: the CRC frame header plus the
/// one-byte codec attribute.
pub const MESSAGE_OVERHEAD: usize = bufio::FRAME_HEADER + 1;

/// A single message: an opaque byte payload plus a codec attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Codec of `payload` (Lz only for wrapper messages).
    pub codec: Codec,
    /// The payload bytes.
    pub payload: Bytes,
}

impl Message {
    /// A plain uncompressed message.
    pub fn new(payload: impl Into<Bytes>) -> Self {
        Message {
            codec: Codec::None,
            payload: payload.into(),
        }
    }

    /// Serialized length once framed in the log.
    pub fn framed_len(&self) -> usize {
        bufio::framed_len(1 + self.payload.len())
    }

    /// Appends the framed message to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let mut body = Vec::with_capacity(1 + self.payload.len());
        body.push(self.codec.to_attribute());
        body.extend_from_slice(&self.payload);
        bufio::write_frame(out, &body);
    }

    /// Decodes the message framed at `offset` in `data`, CRC-validating
    /// the frame and **copying** the payload into a fresh allocation.
    ///
    /// This is the trust-boundary decoder (disk recovery, wire ingress).
    /// The fetch path uses [`FetchChunk`] views instead, whose payloads
    /// alias the stored bytes.
    pub fn decode_at(data: &[u8], offset: usize) -> Result<Option<(Message, usize)>, KafkaError> {
        match bufio::frame_at(data, offset) {
            bufio::FrameBounds::End => Ok(None),
            bufio::FrameBounds::Corrupt => Err(KafkaError::Corrupt(format!(
                "bad frame at offset {offset}"
            ))),
            bufio::FrameBounds::Record { start, end } => {
                if start == end {
                    return Err(KafkaError::Corrupt("empty frame body".into()));
                }
                let codec = Codec::from_attribute(data[start])
                    .map_err(|e| KafkaError::Codec(e.to_string()))?;
                Ok(Some((
                    Message {
                        codec,
                        payload: Bytes::copy_from_slice(&data[start + 1..end]),
                    },
                    end,
                )))
            }
        }
    }

    /// Like [`Message::decode_at`] (CRC-validated) but the payload is a
    /// zero-copy sub-slice sharing `data`'s allocation.
    pub fn decode_shared_at(
        data: &Bytes,
        offset: usize,
    ) -> Result<Option<(Message, usize)>, KafkaError> {
        match bufio::frame_at(data, offset) {
            bufio::FrameBounds::End => Ok(None),
            bufio::FrameBounds::Corrupt => Err(KafkaError::Corrupt(format!(
                "bad frame at offset {offset}"
            ))),
            bufio::FrameBounds::Record { start, end } => {
                if start == end {
                    return Err(KafkaError::Corrupt("empty frame body".into()));
                }
                let codec = Codec::from_attribute(data[start])
                    .map_err(|e| KafkaError::Codec(e.to_string()))?;
                Ok(Some((
                    Message {
                        codec,
                        payload: data.slice(start + 1..end),
                    },
                    end,
                )))
            }
        }
    }
}

/// A contiguous, frame-aligned run of stored bytes handed out by a fetch:
/// the zero-copy unit of the consumer data path. `data` is a cheap view of
/// the partition log's own segment allocation; iterating it yields
/// [`Message`]s whose payloads are `Bytes::slice` sub-views of that same
/// allocation — no byte of payload is copied between broker storage and
/// the consumer.
///
/// Frames inside a chunk were CRC-validated when appended and have never
/// left process memory, so iteration performs structural (length-bound)
/// validation only — the `sendfile` contract: served bytes are not
/// touched, let alone re-checksummed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchChunk {
    /// Logical offset of the first frame in `data`.
    pub base_offset: u64,
    /// Framed messages, sharing the segment's allocation.
    pub data: Bytes,
    /// Number of complete frames in `data`.
    pub messages: u64,
}

impl FetchChunk {
    /// Total framed bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the chunk holds no frames.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Application payload bytes (framed bytes minus per-message
    /// framing overhead).
    pub fn payload_bytes(&self) -> usize {
        self.data.len() - self.messages as usize * MESSAGE_OVERHEAD
    }

    /// Lazy zero-copy iterator over `(offset, message)` pairs.
    pub fn iter(&self) -> FetchIter<'_> {
        FetchIter { chunk: self, pos: 0 }
    }

    /// Eagerly decodes the whole chunk (payloads still alias `data`).
    pub fn decode(&self) -> Result<Vec<(u64, Message)>, KafkaError> {
        self.iter().collect()
    }
}

impl<'a> IntoIterator for &'a FetchChunk {
    type Item = Result<(u64, Message), KafkaError>;
    type IntoIter = FetchIter<'a>;
    fn into_iter(self) -> FetchIter<'a> {
        self.iter()
    }
}

/// Iterator over the messages of a [`FetchChunk`]; see there for the
/// validation contract. Fuses after yielding an error.
#[derive(Debug)]
pub struct FetchIter<'a> {
    chunk: &'a FetchChunk,
    pos: usize,
}

impl Iterator for FetchIter<'_> {
    type Item = Result<(u64, Message), KafkaError>;

    fn next(&mut self) -> Option<Self::Item> {
        match bufio::frame_bounds(&self.chunk.data, self.pos) {
            bufio::FrameBounds::End => None,
            bufio::FrameBounds::Corrupt => {
                let err = KafkaError::Corrupt(format!(
                    "bad frame at offset {} of fetched chunk",
                    self.pos
                ));
                self.pos = self.chunk.data.len(); // fuse
                Some(Err(err))
            }
            bufio::FrameBounds::Record { start, end } => {
                if start == end {
                    self.pos = self.chunk.data.len();
                    return Some(Err(KafkaError::Corrupt("empty frame body".into())));
                }
                let codec = match Codec::from_attribute(self.chunk.data[start]) {
                    Ok(codec) => codec,
                    Err(e) => {
                        self.pos = self.chunk.data.len();
                        return Some(Err(KafkaError::Codec(e.to_string())));
                    }
                };
                let offset = self.chunk.base_offset + self.pos as u64;
                self.pos = end;
                Some(Ok((
                    offset,
                    Message {
                        codec,
                        payload: self.chunk.data.slice(start + 1..end),
                    },
                )))
            }
        }
    }
}

/// A set of messages, the unit producers send ("for efficiency, the
/// producer can send a set of messages in a single publish request").
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MessageSet {
    /// The messages.
    pub messages: Vec<Message>,
}

impl MessageSet {
    /// Wraps payloads into an uncompressed set.
    pub fn from_payloads<I, B>(payloads: I) -> Self
    where
        I: IntoIterator<Item = B>,
        B: Into<Bytes>,
    {
        MessageSet {
            messages: payloads.into_iter().map(Message::new).collect(),
        }
    }

    /// Serialized bytes of the set (concatenated frames).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            self.messages.iter().map(Message::framed_len).sum::<usize>(),
        );
        for message in &self.messages {
            message.encode(&mut out);
        }
        out
    }

    /// Parses a concatenation of frames, copying each payload.
    pub fn decode(data: &[u8]) -> Result<Self, KafkaError> {
        let mut messages = Vec::new();
        let mut offset = 0usize;
        while let Some((message, next)) = Message::decode_at(data, offset)? {
            messages.push(message);
            offset = next;
        }
        Ok(MessageSet { messages })
    }

    /// Parses a concatenation of frames into messages whose payloads are
    /// zero-copy sub-slices of `data`'s allocation (CRC-validated — this
    /// is used on decompressed wrapper bodies, which cross the codec
    /// trust boundary).
    pub fn decode_shared(data: &Bytes) -> Result<Self, KafkaError> {
        let mut messages = Vec::new();
        let mut offset = 0usize;
        while let Some((message, next)) = Message::decode_shared_at(data, offset)? {
            messages.push(message);
            offset = next;
        }
        Ok(MessageSet { messages })
    }

    /// Compresses the whole set into one wrapper message (producer-side
    /// batch compression). Incompressible input pays a few framing bytes,
    /// exactly like gzip-wrapping random data would.
    pub fn compressed(&self) -> Message {
        let raw = self.encode();
        Message {
            codec: Codec::Lz,
            payload: Bytes::from(compress::compress(&raw)),
        }
    }

    /// Expands a fetched message into application-visible messages,
    /// unwrapping compressed wrappers ("the compressed data ... is
    /// eventually delivered to the consumer, where it is uncompressed").
    pub fn unwrap_message(message: &Message) -> Result<Vec<Message>, KafkaError> {
        match message.codec {
            Codec::None => Ok(vec![message.clone()]),
            Codec::Lz => {
                let raw = Bytes::from(
                    compress::decompress(&message.payload)
                        .map_err(|e| KafkaError::Codec(e.to_string()))?,
                );
                // The wrapper contains either framed inner messages or (for
                // the no-win fallback path) framed plain messages. Inner
                // payloads alias the single decompression buffer.
                Ok(MessageSet::decode_shared(&raw)?.messages)
            }
        }
    }

    /// Total payload bytes in the set.
    pub fn payload_bytes(&self) -> usize {
        self.messages.iter().map(|m| m.payload.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_codec_round_trip() {
        let mut buf = Vec::new();
        Message::new(&b"hello"[..]).encode(&mut buf);
        Message::new(&b""[..]).encode(&mut buf);
        let (m1, next) = Message::decode_at(&buf, 0).unwrap().unwrap();
        assert_eq!(m1.payload.as_ref(), b"hello");
        let (m2, end) = Message::decode_at(&buf, next).unwrap().unwrap();
        assert!(m2.payload.is_empty());
        assert!(Message::decode_at(&buf, end).unwrap().is_none());
    }

    #[test]
    fn offset_arithmetic_matches_framed_len() {
        // "To compute the id of the next message, we have to add the
        // length of the current message to its id."
        let m = Message::new(&b"payload"[..]);
        let mut buf = Vec::new();
        m.encode(&mut buf);
        let (_, next) = Message::decode_at(&buf, 0).unwrap().unwrap();
        assert_eq!(next, m.framed_len());
    }

    #[test]
    fn corrupt_frame_detected() {
        let mut buf = Vec::new();
        Message::new(&b"data"[..]).encode(&mut buf);
        buf[bufio::FRAME_HEADER] ^= 0xFF;
        assert!(matches!(
            Message::decode_at(&buf, 0),
            Err(KafkaError::Corrupt(_))
        ));
    }

    #[test]
    fn set_round_trip() {
        let set = MessageSet::from_payloads((0..10).map(|i| format!("event-{i}")));
        let decoded = MessageSet::decode(&set.encode()).unwrap();
        assert_eq!(decoded, set);
    }

    #[test]
    fn compression_round_trip_and_saves_space() {
        let set = MessageSet::from_payloads(
            (0..200).map(|i| format!("pageview member=12345 page=/in/profile id={i}")),
        );
        let wrapper = set.compressed();
        assert_eq!(wrapper.codec, Codec::Lz);
        assert!(wrapper.payload.len() * 2 < set.encode().len());
        let unwrapped = MessageSet::unwrap_message(&wrapper).unwrap();
        assert_eq!(unwrapped.len(), 200);
        assert_eq!(unwrapped[5].payload, set.messages[5].payload);
    }

    #[test]
    fn incompressible_set_still_round_trips() {
        use rand::RngCore;
        let mut rng = rand::rng();
        let payloads: Vec<Vec<u8>> = (0..5)
            .map(|_| {
                let mut v = vec![0u8; 512];
                rng.fill_bytes(&mut v);
                v
            })
            .collect();
        let set = MessageSet::from_payloads(payloads.clone());
        let wrapper = set.compressed();
        assert_eq!(wrapper.codec, Codec::Lz);
        let unwrapped = MessageSet::unwrap_message(&wrapper).unwrap();
        assert_eq!(unwrapped.len(), 5);
        assert_eq!(unwrapped[2].payload.as_ref(), &payloads[2][..]);
    }

    #[test]
    fn plain_message_unwraps_to_itself() {
        let m = Message::new(&b"solo"[..]);
        assert_eq!(MessageSet::unwrap_message(&m).unwrap(), vec![m]);
    }

    #[test]
    fn fetch_chunk_iterates_lazily_and_aliases_its_buffer() {
        let set = MessageSet::from_payloads(["aa", "bbb", "c"]);
        let data = Bytes::from(set.encode());
        let chunk = FetchChunk { base_offset: 100, data: data.clone(), messages: 3 };
        assert_eq!(chunk.payload_bytes(), 6);
        let decoded = chunk.decode().unwrap();
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded[0].0, 100);
        assert_eq!(
            decoded[1].0,
            100 + Message::new(&b"aa"[..]).framed_len() as u64
        );
        assert_eq!(decoded[1].1.payload.as_ref(), b"bbb");
        for (_, m) in &decoded {
            assert!(m.payload.shares_allocation(&data), "payload must not be copied");
        }
    }

    #[test]
    fn fetch_chunk_iter_fuses_on_torn_frame() {
        let set = MessageSet::from_payloads(["whole", "torn"]);
        let mut raw = set.encode();
        raw.truncate(raw.len() - 2);
        let chunk = FetchChunk { base_offset: 0, data: Bytes::from(raw), messages: 2 };
        let mut iter = chunk.iter();
        assert!(iter.next().unwrap().is_ok());
        assert!(matches!(iter.next(), Some(Err(KafkaError::Corrupt(_)))));
        assert!(iter.next().is_none(), "fused after the error");
    }

    #[test]
    fn unwrapped_compressed_payloads_share_one_decompression_buffer() {
        let set = MessageSet::from_payloads((0..20).map(|i| format!("event {i} event")));
        let inner = MessageSet::unwrap_message(&set.compressed()).unwrap();
        assert_eq!(inner.len(), 20);
        for m in &inner[1..] {
            assert!(m.payload.shares_allocation(&inner[0].payload));
        }
    }
}
