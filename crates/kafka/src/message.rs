//! Messages, message sets, and the storage codec.
//!
//! On disk (and on the wire) a message is framed as
//! `[len u32][crc u32][attributes u8][payload]` — the CRC guards against
//! torn tail writes, the attribute byte selects the compression codec.
//! "A message is defined to contain just a payload of bytes" (§V.A);
//! batching wraps a whole compressed message set inside a single wrapper
//! message (the paper's producer-side batch compression).

use bytes::Bytes;
use li_commons::bufio;
use li_commons::compress::{self, Codec};
use std::fmt;

/// Errors from the Kafka layer.
#[derive(Debug, Clone, PartialEq)]
pub enum KafkaError {
    /// Unknown topic or partition.
    UnknownTopicPartition(String, u32),
    /// Offset out of range (before retention window or past the log end).
    OffsetOutOfRange {
        /// Requested offset.
        requested: u64,
        /// Smallest valid offset.
        log_start: u64,
        /// One past the last visible byte.
        log_end: u64,
    },
    /// Storage-level corruption.
    Corrupt(String),
    /// Compression codec failure.
    Codec(String),
    /// Coordination (ZooKeeper) failure.
    Coordination(String),
    /// The consumer group has no live members / bad state.
    Group(String),
}

impl fmt::Display for KafkaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KafkaError::UnknownTopicPartition(topic, partition) => {
                write!(f, "unknown topic-partition {topic}/{partition}")
            }
            KafkaError::OffsetOutOfRange { requested, log_start, log_end } => write!(
                f,
                "offset {requested} out of range [{log_start}, {log_end})"
            ),
            KafkaError::Corrupt(msg) => write!(f, "corrupt log: {msg}"),
            KafkaError::Codec(msg) => write!(f, "codec error: {msg}"),
            KafkaError::Coordination(msg) => write!(f, "coordination error: {msg}"),
            KafkaError::Group(msg) => write!(f, "group error: {msg}"),
        }
    }
}

impl std::error::Error for KafkaError {}

impl From<li_zk::ZkError> for KafkaError {
    fn from(e: li_zk::ZkError) -> Self {
        KafkaError::Coordination(e.to_string())
    }
}

/// A single message: an opaque byte payload plus a codec attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Codec of `payload` (Lz only for wrapper messages).
    pub codec: Codec,
    /// The payload bytes.
    pub payload: Bytes,
}

impl Message {
    /// A plain uncompressed message.
    pub fn new(payload: impl Into<Bytes>) -> Self {
        Message {
            codec: Codec::None,
            payload: payload.into(),
        }
    }

    /// Serialized length once framed in the log.
    pub fn framed_len(&self) -> usize {
        bufio::framed_len(1 + self.payload.len())
    }

    /// Appends the framed message to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let mut body = Vec::with_capacity(1 + self.payload.len());
        body.push(self.codec.to_attribute());
        body.extend_from_slice(&self.payload);
        bufio::write_frame(out, &body);
    }

    /// Decodes the message framed at `offset` in `data`, returning it and
    /// the next offset.
    pub fn decode_at(data: &[u8], offset: usize) -> Result<Option<(Message, usize)>, KafkaError> {
        match bufio::read_frame(data, offset) {
            bufio::Frame::End => Ok(None),
            bufio::Frame::Corrupt => Err(KafkaError::Corrupt(format!(
                "bad frame at offset {offset}"
            ))),
            bufio::Frame::Record { payload, next } => {
                if payload.is_empty() {
                    return Err(KafkaError::Corrupt("empty frame body".into()));
                }
                let codec = Codec::from_attribute(payload[0])
                    .map_err(|e| KafkaError::Codec(e.to_string()))?;
                Ok(Some((
                    Message {
                        codec,
                        payload: Bytes::copy_from_slice(&payload[1..]),
                    },
                    next,
                )))
            }
        }
    }
}

/// A set of messages, the unit producers send ("for efficiency, the
/// producer can send a set of messages in a single publish request").
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MessageSet {
    /// The messages.
    pub messages: Vec<Message>,
}

impl MessageSet {
    /// Wraps payloads into an uncompressed set.
    pub fn from_payloads<I, B>(payloads: I) -> Self
    where
        I: IntoIterator<Item = B>,
        B: Into<Bytes>,
    {
        MessageSet {
            messages: payloads.into_iter().map(Message::new).collect(),
        }
    }

    /// Serialized bytes of the set (concatenated frames).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            self.messages.iter().map(Message::framed_len).sum::<usize>(),
        );
        for message in &self.messages {
            message.encode(&mut out);
        }
        out
    }

    /// Parses a concatenation of frames.
    pub fn decode(data: &[u8]) -> Result<Self, KafkaError> {
        let mut messages = Vec::new();
        let mut offset = 0usize;
        while let Some((message, next)) = Message::decode_at(data, offset)? {
            messages.push(message);
            offset = next;
        }
        Ok(MessageSet { messages })
    }

    /// Compresses the whole set into one wrapper message (producer-side
    /// batch compression). Incompressible input pays a few framing bytes,
    /// exactly like gzip-wrapping random data would.
    pub fn compressed(&self) -> Message {
        let raw = self.encode();
        Message {
            codec: Codec::Lz,
            payload: Bytes::from(compress::compress(&raw)),
        }
    }

    /// Expands a fetched message into application-visible messages,
    /// unwrapping compressed wrappers ("the compressed data ... is
    /// eventually delivered to the consumer, where it is uncompressed").
    pub fn unwrap_message(message: &Message) -> Result<Vec<Message>, KafkaError> {
        match message.codec {
            Codec::None => Ok(vec![message.clone()]),
            Codec::Lz => {
                let raw = compress::decompress(&message.payload)
                    .map_err(|e| KafkaError::Codec(e.to_string()))?;
                // The wrapper contains either framed inner messages or (for
                // the no-win fallback path) framed plain messages.
                Ok(MessageSet::decode(&raw)?.messages)
            }
        }
    }

    /// Total payload bytes in the set.
    pub fn payload_bytes(&self) -> usize {
        self.messages.iter().map(|m| m.payload.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_codec_round_trip() {
        let mut buf = Vec::new();
        Message::new(&b"hello"[..]).encode(&mut buf);
        Message::new(&b""[..]).encode(&mut buf);
        let (m1, next) = Message::decode_at(&buf, 0).unwrap().unwrap();
        assert_eq!(m1.payload.as_ref(), b"hello");
        let (m2, end) = Message::decode_at(&buf, next).unwrap().unwrap();
        assert!(m2.payload.is_empty());
        assert!(Message::decode_at(&buf, end).unwrap().is_none());
    }

    #[test]
    fn offset_arithmetic_matches_framed_len() {
        // "To compute the id of the next message, we have to add the
        // length of the current message to its id."
        let m = Message::new(&b"payload"[..]);
        let mut buf = Vec::new();
        m.encode(&mut buf);
        let (_, next) = Message::decode_at(&buf, 0).unwrap().unwrap();
        assert_eq!(next, m.framed_len());
    }

    #[test]
    fn corrupt_frame_detected() {
        let mut buf = Vec::new();
        Message::new(&b"data"[..]).encode(&mut buf);
        buf[bufio::FRAME_HEADER] ^= 0xFF;
        assert!(matches!(
            Message::decode_at(&buf, 0),
            Err(KafkaError::Corrupt(_))
        ));
    }

    #[test]
    fn set_round_trip() {
        let set = MessageSet::from_payloads((0..10).map(|i| format!("event-{i}")));
        let decoded = MessageSet::decode(&set.encode()).unwrap();
        assert_eq!(decoded, set);
    }

    #[test]
    fn compression_round_trip_and_saves_space() {
        let set = MessageSet::from_payloads(
            (0..200).map(|i| format!("pageview member=12345 page=/in/profile id={i}")),
        );
        let wrapper = set.compressed();
        assert_eq!(wrapper.codec, Codec::Lz);
        assert!(wrapper.payload.len() * 2 < set.encode().len());
        let unwrapped = MessageSet::unwrap_message(&wrapper).unwrap();
        assert_eq!(unwrapped.len(), 200);
        assert_eq!(unwrapped[5].payload, set.messages[5].payload);
    }

    #[test]
    fn incompressible_set_still_round_trips() {
        use rand::RngCore;
        let mut rng = rand::rng();
        let payloads: Vec<Vec<u8>> = (0..5)
            .map(|_| {
                let mut v = vec![0u8; 512];
                rng.fill_bytes(&mut v);
                v
            })
            .collect();
        let set = MessageSet::from_payloads(payloads.clone());
        let wrapper = set.compressed();
        assert_eq!(wrapper.codec, Codec::Lz);
        let unwrapped = MessageSet::unwrap_message(&wrapper).unwrap();
        assert_eq!(unwrapped.len(), 5);
        assert_eq!(unwrapped[2].payload.as_ref(), &payloads[2][..]);
    }

    #[test]
    fn plain_message_unwraps_to_itself() {
        let m = Message::new(&b"solo"[..]);
        assert_eq!(MessageSet::unwrap_message(&m).unwrap(), vec![m]);
    }
}
