//! Consumer groups coordinated through ZooKeeper.
//!
//! "Each consumer group consists of one or more consumers that jointly
//! consume a set of subscribed topics, i.e., each message is delivered to
//! only one of the consumers within the group. ... the smallest unit of
//! parallelism for consumption is a partition within a topic. ... Kafka
//! uses Zookeeper for ... (1) detecting the addition and the removal of
//! brokers and consumers, (2) triggering a rebalance process in each
//! consumer when the above events happen, and (3) maintaining the
//! consumption relationship and keeping track of the consumed offset of
//! each partition" (§V.C).
//!
//! ZooKeeper layout (per group):
//!
//! ```text
//! /consumers/<group>/ids/<consumer-id>                ephemeral
//! /consumers/<group>/owners/<topic>/<partition>       ephemeral, data = owner id
//! /consumers/<group>/offsets/<topic>/<partition>      persistent, data = offset
//! ```

use crossbeam::channel::Receiver;
use std::sync::Arc;

use li_zk::{CreateMode, Session, WatchEvent, ZkError};

use crate::cluster::KafkaCluster;
use crate::consumer::SimpleConsumer;
use crate::message::{KafkaError, Message};

/// One member of a consumer group.
pub struct GroupConsumer {
    cluster: Arc<KafkaCluster>,
    session: Session,
    group: String,
    topic: String,
    consumer_id: String,
    /// Partitions currently owned, with their live consumers.
    owned: Vec<(u32, SimpleConsumer)>,
}

impl GroupConsumer {
    /// Joins `group` for `topic`, announcing membership. Call
    /// [`GroupConsumer::rebalance`] (on every member) after membership
    /// changes.
    pub fn join(
        cluster: Arc<KafkaCluster>,
        group: &str,
        topic: &str,
        consumer_id: &str,
    ) -> Result<Self, KafkaError> {
        let session = cluster.zookeeper().connect();
        session.create_recursive(
            &format!("/consumers/{group}/ids/{consumer_id}"),
            consumer_id.as_bytes().to_vec(),
            CreateMode::Ephemeral,
        )?;
        for dir in ["owners", "offsets"] {
            match session.create_recursive(
                &format!("/consumers/{group}/{dir}/{topic}"),
                Vec::new(),
                CreateMode::Persistent,
            ) {
                Ok(_) | Err(ZkError::NodeExists(_)) => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(GroupConsumer {
            cluster,
            session,
            group: group.to_string(),
            topic: topic.to_string(),
            consumer_id: consumer_id.to_string(),
            owned: Vec::new(),
        })
    }

    /// This member's id.
    pub fn consumer_id(&self) -> &str {
        &self.consumer_id
    }

    /// Currently-owned partitions.
    pub fn owned_partitions(&self) -> Vec<u32> {
        self.owned.iter().map(|(p, _)| *p).collect()
    }

    /// Watches group membership; the receiver fires once on the next
    /// join/leave/crash, after which members re-run [`GroupConsumer::rebalance`].
    pub fn watch_membership(&self) -> Result<Receiver<WatchEvent>, KafkaError> {
        Ok(self
            .session
            .watch_children(&format!("/consumers/{}/ids", self.group))?)
    }

    fn offset_path(&self, partition: u32) -> String {
        format!(
            "/consumers/{}/offsets/{}/{partition}",
            self.group, self.topic
        )
    }

    fn owner_path(&self, partition: u32) -> String {
        format!(
            "/consumers/{}/owners/{}/{partition}",
            self.group, self.topic
        )
    }

    fn committed_offset(&self, partition: u32) -> Result<u64, KafkaError> {
        match self.session.get(&self.offset_path(partition)) {
            Ok((data, _)) => Ok(String::from_utf8_lossy(&data).parse().unwrap_or(0)),
            Err(ZkError::NoNode(_)) => Ok(0),
            Err(e) => Err(e.into()),
        }
    }

    fn commit_offset(&self, partition: u32, offset: u64) -> Result<(), KafkaError> {
        let path = self.offset_path(partition);
        match self.session.set(&path, offset.to_string().into_bytes(), None) {
            Ok(_) => Ok(()),
            Err(ZkError::NoNode(_)) => {
                self.session
                    .create(&path, offset.to_string().into_bytes(), CreateMode::Persistent)?;
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }

    /// The rebalance algorithm: "each consumer reads the current
    /// information in Zookeeper and selects a subset of partitions to
    /// consume from" — range assignment over the sorted member list.
    /// Returns the partitions now owned. Claims are guarded by ephemeral
    /// owner znodes, so two members can never own one partition; a member
    /// that hasn't released yet makes the claim fail, and the caller
    /// simply re-runs rebalance (the paper's retry loop).
    pub fn rebalance(&mut self) -> Result<Vec<u32>, KafkaError> {
        let members = {
            let mut m = self
                .session
                .children(&format!("/consumers/{}/ids", self.group))?;
            m.sort();
            m
        };
        let my_index = members
            .iter()
            .position(|m| m == &self.consumer_id)
            .ok_or_else(|| KafkaError::Group(format!("{} not in group", self.consumer_id)))?;
        let num_partitions = self.cluster.num_partitions(&self.topic)?;
        let per_member = num_partitions.div_ceil(members.len() as u32);
        let start = my_index as u32 * per_member;
        let end = (start + per_member).min(num_partitions);
        let target: Vec<u32> = (start..end).collect();

        // Release partitions no longer ours.
        let owned = std::mem::take(&mut self.owned);
        for (partition, consumer) in owned {
            if target.contains(&partition) {
                self.owned.push((partition, consumer));
            } else {
                let _ = self.session.delete(&self.owner_path(partition), None);
            }
        }

        // Claim new ones (skip those another member still owns).
        for partition in target {
            if self.owned.iter().any(|(p, _)| *p == partition) {
                continue;
            }
            match self.session.create(
                &self.owner_path(partition),
                self.consumer_id.as_bytes().to_vec(),
                CreateMode::Ephemeral,
            ) {
                Ok(_) => {
                    let mut consumer =
                        SimpleConsumer::new(self.cluster.clone(), &self.topic, partition)?;
                    consumer.seek(self.committed_offset(partition)?);
                    self.owned.push((partition, consumer));
                }
                Err(ZkError::NodeExists(_)) => continue, // not yet released
                Err(e) => return Err(e.into()),
            }
        }
        self.owned.sort_by_key(|(p, _)| *p);
        Ok(self.owned_partitions())
    }

    /// Polls every owned partition once, committing offsets to ZooKeeper
    /// afterwards (at-least-once on crash between processing and commit).
    /// Delivered payloads are zero-copy views of broker segment storage
    /// (see [`SimpleConsumer::poll`]).
    pub fn poll(&mut self) -> Result<Vec<(u32, Message)>, KafkaError> {
        let mut out = Vec::new();
        let mut commits = Vec::new();
        for (partition, consumer) in &mut self.owned {
            let before = consumer.position();
            let partition = *partition;
            out.extend(consumer.poll()?.into_iter().map(|(_, m)| (partition, m)));
            if consumer.position() != before {
                commits.push((partition, consumer.position()));
            }
        }
        for (partition, offset) in commits {
            self.commit_offset(partition, offset)?;
        }
        Ok(out)
    }

    /// Leaves the group gracefully (membership + owned partitions vanish).
    pub fn leave(self) -> Result<(), KafkaError> {
        for (partition, _) in &self.owned {
            let _ = self.session.delete(&self.owner_path(*partition), None);
        }
        self.session
            .delete(&format!("/consumers/{}/ids/{}", self.group, self.consumer_id), None)?;
        Ok(())
    }

    /// Simulates a crash: the coordination session expires, releasing the
    /// ephemeral membership and ownership nodes.
    pub fn crash(self, cluster: &KafkaCluster) {
        cluster.zookeeper().expire(self.session.id());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageSet;

    fn cluster_with(partitions: u32) -> Arc<KafkaCluster> {
        let cluster = KafkaCluster::new(2).unwrap();
        cluster.create_topic("t", partitions).unwrap();
        cluster
    }

    fn produce_to(cluster: &Arc<KafkaCluster>, partition: u32, payloads: &[String]) {
        cluster
            .broker_for("t", partition)
            .unwrap()
            .produce("t", partition, &MessageSet::from_payloads(payloads.to_vec()))
            .unwrap();
    }

    fn settle(consumers: &mut [&mut GroupConsumer]) {
        // Two passes let release-then-claim settle across members.
        for _ in 0..2 {
            for consumer in consumers.iter_mut() {
                consumer.rebalance().unwrap();
            }
        }
    }

    #[test]
    fn assignment_is_disjoint_and_complete() {
        let cluster = cluster_with(8);
        let mut a = GroupConsumer::join(cluster.clone(), "g", "t", "a").unwrap();
        let mut b = GroupConsumer::join(cluster.clone(), "g", "t", "b").unwrap();
        let mut c = GroupConsumer::join(cluster.clone(), "g", "t", "c").unwrap();
        settle(&mut [&mut a, &mut b, &mut c]);
        let mut all: Vec<u32> = [&a, &b, &c]
            .iter()
            .flat_map(|g| g.owned_partitions())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<u32>>(), "disjoint and complete");
        assert!(!a.owned_partitions().is_empty());
        assert!(!c.owned_partitions().is_empty());
    }

    #[test]
    fn each_message_delivered_to_exactly_one_member() {
        let cluster = cluster_with(4);
        for p in 0..4 {
            produce_to(&cluster, p, &(0..10).map(|i| format!("p{p}-m{i}")).collect::<Vec<_>>());
        }
        let mut a = GroupConsumer::join(cluster.clone(), "g", "t", "a").unwrap();
        let mut b = GroupConsumer::join(cluster.clone(), "g", "t", "b").unwrap();
        settle(&mut [&mut a, &mut b]);
        let mut seen: Vec<String> = Vec::new();
        for consumer in [&mut a, &mut b] {
            for (_, message) in consumer.poll().unwrap() {
                seen.push(String::from_utf8_lossy(&message.payload).into_owned());
            }
        }
        seen.sort();
        assert_eq!(seen.len(), 40, "point-to-point: one copy total");
        seen.dedup();
        assert_eq!(seen.len(), 40, "no duplicates across the group");
    }

    #[test]
    fn independent_groups_each_get_full_copy() {
        let cluster = cluster_with(2);
        for p in 0..2 {
            produce_to(&cluster, p, &["m1".into(), "m2".into()]);
        }
        let mut g1 = GroupConsumer::join(cluster.clone(), "g1", "t", "a").unwrap();
        let mut g2 = GroupConsumer::join(cluster.clone(), "g2", "t", "a").unwrap();
        settle(&mut [&mut g1]);
        settle(&mut [&mut g2]);
        assert_eq!(g1.poll().unwrap().len(), 4);
        assert_eq!(g2.poll().unwrap().len(), 4, "pub/sub across groups");
    }

    #[test]
    fn member_join_triggers_rebalance_and_splits_load() {
        let cluster = cluster_with(8);
        let mut a = GroupConsumer::join(cluster.clone(), "g", "t", "a").unwrap();
        settle(&mut [&mut a]);
        assert_eq!(a.owned_partitions().len(), 8);
        let watch = a.watch_membership().unwrap();
        let mut b = GroupConsumer::join(cluster.clone(), "g", "t", "b").unwrap();
        assert!(watch.try_recv().is_ok(), "membership watch fired");
        settle(&mut [&mut a, &mut b]);
        assert_eq!(a.owned_partitions().len(), 4);
        assert_eq!(b.owned_partitions().len(), 4);
    }

    #[test]
    fn member_crash_releases_partitions_to_survivors() {
        let cluster = cluster_with(6);
        let mut a = GroupConsumer::join(cluster.clone(), "g", "t", "a").unwrap();
        let mut b = GroupConsumer::join(cluster.clone(), "g", "t", "b").unwrap();
        settle(&mut [&mut a, &mut b]);
        let watch = a.watch_membership().unwrap();
        b.crash(&cluster);
        assert!(watch.try_recv().is_ok());
        settle(&mut [&mut a]);
        assert_eq!(a.owned_partitions().len(), 6, "survivor owns everything");
    }

    #[test]
    fn offsets_survive_member_handoff() {
        let cluster = cluster_with(1);
        produce_to(&cluster, 0, &(0..5).map(|i| format!("m{i}")).collect::<Vec<_>>());
        let mut a = GroupConsumer::join(cluster.clone(), "g", "t", "a").unwrap();
        settle(&mut [&mut a]);
        assert_eq!(a.poll().unwrap().len(), 5);
        a.crash(&cluster);
        // New member resumes from the committed offset: nothing re-read.
        produce_to(&cluster, 0, &["m5".into()]);
        let mut b = GroupConsumer::join(cluster.clone(), "g", "t", "b").unwrap();
        settle(&mut [&mut b]);
        let batch = b.poll().unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].1.payload.as_ref(), b"m5");
    }

    #[test]
    fn overpartitioning_keeps_all_members_busy() {
        // "For better load balancing, we require many more partitions in a
        // topic than the consumers in each group."
        let cluster = cluster_with(16);
        let mut members: Vec<GroupConsumer> = (0..3)
            .map(|i| GroupConsumer::join(cluster.clone(), "g", "t", &format!("c{i}")).unwrap())
            .collect();
        for _ in 0..2 {
            for m in &mut members {
                m.rebalance().unwrap();
            }
        }
        for m in &members {
            let owned = m.owned_partitions().len();
            assert!((4..=6).contains(&owned), "{}: {owned}", m.consumer_id());
        }
    }
}
