//! End-to-end auditing.
//!
//! "Our tracking also includes an auditing system to verify that there is
//! no data loss along the whole pipeline. ... each message carries the
//! timestamp and the server name when they are generated. We instrument
//! each producer such that it periodically generates a monitoring event,
//! which records the number of messages published by that producer for
//! each topic within a fixed time window. The producer publishes the
//! monitoring events to Kafka in a separate topic. The consumers can then
//! count the number of messages that they have received from a given topic
//! and validate those counts with the monitoring events" (§V.D).

use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use li_commons::sim::Clock;

use crate::cluster::KafkaCluster;
use crate::message::{KafkaError, Message};
use crate::producer::Producer;

/// Topic the monitoring events are published to.
pub const AUDIT_TOPIC: &str = "_audit";

/// An audited event: `server|window|payload` in the envelope, so each
/// message "carries the timestamp and the server name".
pub fn envelope(server: &str, window: u64, payload: &str) -> String {
    format!("{server}|{window}|{payload}")
}

/// Parses an audited event envelope into `(server, window, payload)`.
pub fn parse_envelope(message: &Message) -> Option<(String, u64, String)> {
    let text = std::str::from_utf8(&message.payload).ok()?;
    let mut parts = text.splitn(3, '|');
    let server = parts.next()?.to_string();
    let window = parts.next()?.parse().ok()?;
    let payload = parts.next()?.to_string();
    Some((server, window, payload))
}

/// A producer wrapper that counts messages per (topic, window) and
/// publishes monitoring events.
pub struct AuditedProducer {
    producer: Producer,
    server: String,
    clock: Arc<dyn Clock>,
    window: Duration,
    counts: Mutex<HashMap<(String, u64), u64>>,
}

impl AuditedProducer {
    /// Wraps `producer` for server `server`, counting in windows of
    /// `window`.
    pub fn new(
        producer: Producer,
        cluster: &Arc<KafkaCluster>,
        server: impl Into<String>,
        window: Duration,
    ) -> Self {
        AuditedProducer {
            producer,
            server: server.into(),
            clock: cluster.clock().clone(),
            window,
            counts: Mutex::new(HashMap::new()),
        }
    }

    fn current_window(&self) -> u64 {
        (self.clock.now().as_nanos() / self.window.as_nanos().max(1)) as u64
    }

    /// Publishes one payload, enveloped and counted.
    pub fn send(&self, topic: &str, payload: &str) -> Result<(), KafkaError> {
        let window = self.current_window();
        self.producer
            .send(topic, envelope(&self.server, window, payload))?;
        *self
            .counts
            .lock()
            .entry((topic.to_string(), window))
            .or_insert(0) += 1;
        Ok(())
    }

    /// Publishes the monitoring events for all closed windows (and,
    /// at flush time, the current one) to [`AUDIT_TOPIC`], then flushes the
    /// underlying producer.
    pub fn publish_audit_and_flush(&self) -> Result<(), KafkaError> {
        let counts: Vec<((String, u64), u64)> = self.counts.lock().drain().collect();
        for ((topic, window), count) in counts {
            let record = format!("{}|{window}|{topic}:{count}", self.server);
            self.producer.send(AUDIT_TOPIC, record)?;
        }
        self.producer.flush()
    }
}

/// The reconciliation verdict for one (topic, window).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowAudit {
    /// Audited topic.
    pub topic: String,
    /// Window index.
    pub window: u64,
    /// Count the producers claim to have published.
    pub produced: u64,
    /// Count the consumer actually received.
    pub consumed: u64,
}

impl WindowAudit {
    /// True when no loss (or duplication) was detected.
    pub fn clean(&self) -> bool {
        self.produced == self.consumed
    }
}

/// Consumes a topic plus the audit topic and reconciles counts per window.
pub struct AuditReconciler;

impl AuditReconciler {
    /// Reads everything currently in `topic` and [`AUDIT_TOPIC`] and
    /// returns one verdict per (topic, window) seen in either stream.
    pub fn reconcile(
        cluster: &Arc<KafkaCluster>,
        topic: &str,
    ) -> Result<Vec<WindowAudit>, KafkaError> {
        // Polls ride the zero-copy fetch: every envelope parsed below is a
        // view of the broker's own segment storage. Draining in a loop
        // (rather than one poll) keeps the verdicts complete even when a
        // window's traffic exceeds the per-fetch byte budget.
        let mut consumed: HashMap<u64, u64> = HashMap::new();
        for partition in 0..cluster.num_partitions(topic)? {
            let mut consumer =
                crate::consumer::SimpleConsumer::new(cluster.clone(), topic, partition)?;
            loop {
                let batch = consumer.poll()?;
                if batch.is_empty() {
                    break;
                }
                for (_, message) in &batch {
                    if let Some((_, window, _)) = parse_envelope(message) {
                        *consumed.entry(window).or_insert(0) += 1;
                    }
                }
            }
        }

        let mut produced: HashMap<u64, u64> = HashMap::new();
        for partition in 0..cluster.num_partitions(AUDIT_TOPIC)? {
            let mut consumer =
                crate::consumer::SimpleConsumer::new(cluster.clone(), AUDIT_TOPIC, partition)?;
            loop {
                let batch = consumer.poll()?;
                if batch.is_empty() {
                    break;
                }
                for (_, message) in &batch {
                    let Some((_, window, body)) = parse_envelope(message) else {
                        continue;
                    };
                    // body = "<topic>:<count>"
                    let Some((audited_topic, count)) = body.rsplit_once(':') else {
                        continue;
                    };
                    if audited_topic == topic {
                        *produced.entry(window).or_insert(0) +=
                            count.parse::<u64>().unwrap_or(0);
                    }
                }
            }
        }

        let mut windows: Vec<u64> = produced.keys().chain(consumed.keys()).copied().collect();
        windows.sort_unstable();
        windows.dedup();
        Ok(windows
            .into_iter()
            .map(|window| WindowAudit {
                topic: topic.to_string(),
                window,
                produced: produced.get(&window).copied().unwrap_or(0),
                consumed: consumed.get(&window).copied().unwrap_or(0),
            })
            .collect())
    }
}

/// Raw payload bytes helper for audited messages.
pub fn audited_payload(message: &Message) -> Option<Bytes> {
    parse_envelope(message).map(|(_, _, payload)| Bytes::from(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogConfig;
    use li_commons::sim::SimClock;

    fn setup() -> (Arc<KafkaCluster>, SimClock) {
        let clock = SimClock::new();
        let cluster =
            KafkaCluster::with_parts(2, LogConfig::default(), Arc::new(clock.clone())).unwrap();
        cluster.create_topic("events", 4).unwrap();
        cluster.create_topic(AUDIT_TOPIC, 1).unwrap();
        (cluster, clock)
    }

    #[test]
    fn clean_pipeline_reconciles() {
        let (cluster, clock) = setup();
        let audited = AuditedProducer::new(
            Producer::new(cluster.clone()),
            &cluster,
            "frontend-1",
            Duration::from_secs(60),
        );
        for i in 0..30 {
            audited.send("events", &format!("click {i}")).unwrap();
        }
        clock.advance(Duration::from_secs(60)); // close the window
        for i in 0..12 {
            audited.send("events", &format!("view {i}")).unwrap();
        }
        audited.publish_audit_and_flush().unwrap();

        let report = AuditReconciler::reconcile(&cluster, "events").unwrap();
        assert_eq!(report.len(), 2);
        assert!(report.iter().all(WindowAudit::clean), "{report:?}");
        assert_eq!(report[0].produced, 30);
        assert_eq!(report[1].produced, 12);
    }

    #[test]
    fn multiple_producers_aggregate() {
        let (cluster, _clock) = setup();
        for server in ["fe-1", "fe-2", "fe-3"] {
            let audited = AuditedProducer::new(
                Producer::new(cluster.clone()),
                &cluster,
                server,
                Duration::from_secs(60),
            );
            for i in 0..10 {
                audited.send("events", &format!("{server} msg {i}")).unwrap();
            }
            audited.publish_audit_and_flush().unwrap();
        }
        let report = AuditReconciler::reconcile(&cluster, "events").unwrap();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].produced, 30);
        assert_eq!(report[0].consumed, 30);
    }

    #[test]
    fn loss_is_detected() {
        let (cluster, _clock) = setup();
        let audited = AuditedProducer::new(
            Producer::new(cluster.clone()),
            &cluster,
            "fe-1",
            Duration::from_secs(60),
        );
        for i in 0..10 {
            audited.send("events", &format!("m{i}")).unwrap();
        }
        // Claim 3 more than were actually published (simulates loss
        // downstream of the count).
        audited
            .producer
            .send(AUDIT_TOPIC, envelope("fe-1", 0, "events:3"))
            .unwrap();
        audited.publish_audit_and_flush().unwrap();
        let report = AuditReconciler::reconcile(&cluster, "events").unwrap();
        assert_eq!(report.len(), 1);
        assert!(!report[0].clean());
        assert_eq!(report[0].produced, 13);
        assert_eq!(report[0].consumed, 10);
    }

    #[test]
    fn envelope_round_trip() {
        let m = Message::new(envelope("srv", 42, "payload|with|pipes").into_bytes());
        let (server, window, payload) = parse_envelope(&m).unwrap();
        assert_eq!(server, "srv");
        assert_eq!(window, 42);
        assert_eq!(payload, "payload|with|pipes");
        assert_eq!(audited_payload(&m).unwrap().as_ref(), b"payload|with|pipes");
    }
}
