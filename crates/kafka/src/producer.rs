//! The producer: batching, partitioning, compression.
//!
//! "Each producer can publish a message to either a randomly selected
//! partition or a partition semantically determined by a partitioning key
//! and a partitioning function" (§V.C); "the producer can send a set of
//! messages in a single publish request" and "can compress a set of
//! messages" (§V.A/B).

use bytes::Bytes;
use li_commons::compress::Codec;
use li_commons::fnv::fnv1a;
use li_commons::metrics::{Counter, Histo};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use crate::cluster::KafkaCluster;
use crate::ingest::AckMode;
use crate::message::{KafkaError, MessageSet};

/// How the producer picks a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioner {
    /// Round-robin over partitions (the "randomly selected" spread).
    RoundRobin,
    /// `hash(key) % num_partitions` — keeps one key's messages ordered
    /// within one partition.
    Keyed,
}

/// Cumulative producer statistics (the compression benchmark reads these).
/// Recorded once per flushed batch, not per send — read them after
/// [`Producer::flush`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProducerStats {
    /// Application payload bytes accepted.
    pub payload_bytes: u64,
    /// Bytes actually shipped to brokers (after batching/compression).
    pub wire_bytes: u64,
    /// Publish requests issued.
    pub requests: u64,
    /// Messages accepted.
    pub messages: u64,
}

#[derive(Default)]
struct Batch {
    payloads: Vec<Bytes>,
    bytes: usize,
    /// When the oldest buffered payload arrived (linger trigger anchor).
    first_at: Option<std::time::Instant>,
}

/// Producer-side observability under `kafka.producer.`: publish request
/// count, wire bytes shipped, and the per-request batch-size distribution.
#[derive(Debug, Clone)]
struct ProducerMetrics {
    requests: Counter,
    wire_bytes: Counter,
    batch_messages: Histo,
}

impl ProducerMetrics {
    fn new(cluster: &KafkaCluster) -> Self {
        let scope = cluster.metrics().scope("kafka.producer");
        ProducerMetrics {
            requests: scope.counter("requests"),
            wire_bytes: scope.counter("wire_bytes"),
            batch_messages: scope.histogram("batch_messages"),
        }
    }
}

/// A batching producer bound to one cluster.
pub struct Producer {
    cluster: Arc<KafkaCluster>,
    partitioner: Partitioner,
    codec: Codec,
    ack: AckMode,
    batch_messages: usize,
    /// Size trigger: flush a partition batch once its buffered payload
    /// bytes reach this (whichever of the three triggers fires first wins).
    batch_bytes: usize,
    /// Time trigger: flush when the oldest buffered payload has waited
    /// this long, checked at the next send (no background timer thread —
    /// a deterministic harness must own all its threads). `None` disables
    /// it; deterministic runs leave it off because flush timing would
    /// depend on wall clock, not the op stream.
    linger: Option<std::time::Duration>,
    buffers: Mutex<HashMap<(String, u32), Batch>>,
    round_robin: Mutex<HashMap<String, u32>>,
    stats: Mutex<ProducerStats>,
    metrics: ProducerMetrics,
}

impl Producer {
    /// Creates a producer with no compression and a batch size of 1
    /// (synchronous feel; builders adjust).
    pub fn new(cluster: Arc<KafkaCluster>) -> Self {
        let metrics = ProducerMetrics::new(&cluster);
        Producer {
            cluster,
            partitioner: Partitioner::RoundRobin,
            codec: Codec::None,
            ack: AckMode::default(),
            batch_messages: 1,
            batch_bytes: usize::MAX,
            linger: None,
            buffers: Mutex::new(HashMap::new()),
            round_robin: Mutex::new(HashMap::new()),
            stats: Mutex::new(ProducerStats::default()),
            metrics,
        }
    }

    /// Builder: messages buffered per partition before a publish request.
    #[must_use]
    pub fn with_batch_size(mut self, messages: usize) -> Self {
        self.batch_messages = messages.max(1);
        self
    }

    /// Builder: payload bytes buffered per partition before a publish
    /// request (the ingestion-study size knob). Flushes on whichever of
    /// the message-count, byte-size, or linger triggers fires first.
    #[must_use]
    pub fn with_batch_bytes(mut self, bytes: usize) -> Self {
        self.batch_bytes = bytes.max(1);
        self
    }

    /// Builder: flush a partition batch at the next send once its oldest
    /// payload has waited `linger` (bounds the latency cost of large
    /// batch sizes under a trickle of traffic). Checked send-side — call
    /// [`Self::flush`] to drain a stream that has gone fully idle.
    #[must_use]
    pub fn with_linger(mut self, linger: std::time::Duration) -> Self {
        self.linger = Some(linger);
        self
    }

    /// Builder: compress batches with the given codec.
    #[must_use]
    pub fn with_codec(mut self, codec: Codec) -> Self {
        self.codec = codec;
        self
    }

    /// Builder: partitioning strategy.
    #[must_use]
    pub fn with_partitioner(mut self, partitioner: Partitioner) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// Builder: durability level each flushed batch waits for (default
    /// [`AckMode::Leader`], the legacy produce contract). On an
    /// unreplicated cluster [`AckMode::FullIsr`] degenerates to `Leader`;
    /// the full contract lives in `ReplicatedCluster::produce_with_ack`.
    #[must_use]
    pub fn with_ack_mode(mut self, ack: AckMode) -> Self {
        self.ack = ack;
        self
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> ProducerStats {
        *self.stats.lock()
    }

    fn pick_partition(&self, topic: &str, key: Option<&[u8]>) -> Result<u32, KafkaError> {
        let n = self.cluster.num_partitions(topic)?;
        // A keyed send never touches the round-robin state: the hash alone
        // decides placement, so concurrent keyed producers don't serialize
        // on (or perturb) the shared round-robin counters.
        Ok(match key {
            Some(key) => (fnv1a(key) % u64::from(n)) as u32,
            None => {
                let mut rr = self.round_robin.lock();
                let counter = rr.entry(topic.to_string()).or_insert(0);
                let partition = *counter % n;
                *counter = counter.wrapping_add(1);
                partition
            }
        })
    }

    /// Publishes one payload (buffered until the batch fills).
    pub fn send(&self, topic: &str, payload: impl Into<Bytes>) -> Result<(), KafkaError> {
        self.send_keyed_inner(topic, None, payload.into())
    }

    /// Publishes one payload partitioned by `key`.
    pub fn send_keyed(
        &self,
        topic: &str,
        key: &[u8],
        payload: impl Into<Bytes>,
    ) -> Result<(), KafkaError> {
        self.send_keyed_inner(topic, Some(key), payload.into())
    }

    fn send_keyed_inner(
        &self,
        topic: &str,
        key: Option<&[u8]>,
        payload: Bytes,
    ) -> Result<(), KafkaError> {
        let partition = self.pick_partition(topic, key)?;
        let payload_len = payload.len();
        // No stats lock here: message/byte counts ride the batch and are
        // folded into `stats` once per flush, so the per-send cost is the
        // buffer lock alone.
        let flush_now = {
            let mut buffers = self.buffers.lock();
            let batch = buffers.entry((topic.to_string(), partition)).or_default();
            batch.bytes += payload_len;
            batch
                .first_at
                .get_or_insert_with(std::time::Instant::now);
            batch.payloads.push(payload);
            batch.payloads.len() >= self.batch_messages
                || batch.bytes >= self.batch_bytes
                || self.linger.zip(batch.first_at).is_some_and(
                    |(linger, first_at)| first_at.elapsed() >= linger,
                )
        };
        if flush_now {
            self.flush_partition(topic, partition)?;
        }
        Ok(())
    }

    fn flush_partition(&self, topic: &str, partition: u32) -> Result<(), KafkaError> {
        let batch = {
            let mut buffers = self.buffers.lock();
            match buffers.remove(&(topic.to_string(), partition)) {
                Some(b) if !b.payloads.is_empty() => b,
                _ => return Ok(()),
            }
        };
        let messages = batch.payloads.len() as u64;
        let payload_bytes = batch.bytes as u64;
        self.metrics.batch_messages.record(messages);
        let set = MessageSet::from_payloads(batch.payloads);
        let broker = self.cluster.broker_for(topic, partition)?;
        let wire_bytes = match self.codec {
            Codec::None => {
                // Encode once; the frame buffer is both the wire-byte
                // accounting and the bytes handed to the group-commit queue.
                let frames = set.encode();
                let wire = frames.len();
                broker.produce_frames_grouped(
                    topic,
                    partition,
                    frames,
                    set.messages.len() as u64,
                    set.payload_bytes(),
                    self.ack,
                )?;
                wire
            }
            Codec::Lz => {
                let wrapper = set.compressed();
                let bytes = wrapper.framed_len();
                let mut frames = Vec::with_capacity(bytes);
                wrapper.encode(&mut frames);
                broker.produce_frames_grouped(
                    topic,
                    partition,
                    frames,
                    1,
                    wrapper.payload.len(),
                    self.ack,
                )?;
                bytes
            }
        };
        let mut stats = self.stats.lock();
        stats.messages += messages;
        stats.payload_bytes += payload_bytes;
        stats.wire_bytes += wire_bytes as u64;
        stats.requests += 1;
        self.metrics.wire_bytes.add(wire_bytes as u64);
        self.metrics.requests.inc();
        Ok(())
    }

    /// Flushes every buffered batch. With [`AckMode::None`] the producer
    /// additionally drains the brokers' ingest queues so flush-on-close
    /// makes even unacknowledged sends pull-visible.
    pub fn flush(&self) -> Result<(), KafkaError> {
        let keys: Vec<(String, u32)> = self.buffers.lock().keys().cloned().collect();
        for (topic, partition) in keys {
            self.flush_partition(&topic, partition)?;
        }
        if self.ack == AckMode::None {
            for broker in self.cluster.brokers() {
                broker.flush_ingest();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consumer::SimpleConsumer;

    fn cluster() -> Arc<KafkaCluster> {
        let cluster = KafkaCluster::new(2).unwrap();
        cluster.create_topic("events", 4).unwrap();
        cluster
    }

    fn drain_all(cluster: &Arc<KafkaCluster>, topic: &str) -> Vec<String> {
        let mut out = Vec::new();
        for p in 0..cluster.num_partitions(topic).unwrap() {
            let mut consumer = SimpleConsumer::new(cluster.clone(), topic, p).unwrap();
            for (_, m) in consumer.poll().unwrap() {
                out.push(String::from_utf8_lossy(&m.payload).into_owned());
            }
        }
        out
    }

    #[test]
    fn round_robin_spreads_messages() {
        let cluster = cluster();
        let producer = Producer::new(cluster.clone());
        for i in 0..40 {
            producer.send("events", format!("e{i}")).unwrap();
        }
        producer.flush().unwrap();
        for p in 0..4 {
            let mut consumer = SimpleConsumer::new(cluster.clone(), "events", p).unwrap();
            assert_eq!(consumer.poll().unwrap().len(), 10, "partition {p}");
        }
    }

    #[test]
    fn keyed_partitioning_is_sticky() {
        let cluster = cluster();
        let producer = Producer::new(cluster.clone()).with_partitioner(Partitioner::Keyed);
        for i in 0..20 {
            producer
                .send_keyed("events", b"member-42", format!("e{i}"))
                .unwrap();
        }
        producer.flush().unwrap();
        let counts: Vec<usize> = (0..4)
            .map(|p| {
                SimpleConsumer::new(cluster.clone(), "events", p)
                    .unwrap()
                    .poll()
                    .unwrap()
                    .len()
            })
            .collect();
        assert_eq!(counts.iter().sum::<usize>(), 20);
        assert_eq!(counts.iter().filter(|&&c| c > 0).count(), 1, "{counts:?}");
    }

    #[test]
    fn keyed_send_is_sticky_even_on_a_round_robin_producer() {
        // The key alone decides placement — a keyed send on the default
        // (round-robin) producer hashes and never perturbs the round-robin
        // counter used by unkeyed sends.
        let cluster = cluster();
        let producer = Producer::new(cluster.clone());
        for i in 0..12 {
            producer
                .send_keyed("events", b"member-42", format!("k{i}"))
                .unwrap();
        }
        // Interleaved unkeyed sends still spread evenly: the keyed sends
        // above left the round-robin cursor untouched.
        for i in 0..8 {
            producer.send("events", format!("u{i}")).unwrap();
        }
        producer.flush().unwrap();
        let counts: Vec<usize> = (0..4)
            .map(|p| {
                SimpleConsumer::new(cluster.clone(), "events", p)
                    .unwrap()
                    .poll()
                    .unwrap()
                    .len()
            })
            .collect();
        assert_eq!(counts.iter().sum::<usize>(), 20);
        // Every partition got exactly 2 unkeyed messages; one partition
        // additionally holds all 12 keyed ones.
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![2, 2, 2, 14], "{counts:?}");
    }

    #[test]
    fn stats_are_recorded_per_flush_not_per_send() {
        let cluster = cluster();
        let producer = Producer::new(cluster.clone())
            .with_batch_size(10)
            .with_partitioner(Partitioner::Keyed);
        for i in 0..7 {
            producer.send_keyed("events", b"k", format!("m{i}")).unwrap();
        }
        // Nothing flushed yet: the batch holds the counts.
        assert_eq!(producer.stats(), ProducerStats::default());
        producer.flush().unwrap();
        let stats = producer.stats();
        assert_eq!(stats.messages, 7);
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.payload_bytes, 7 * 2);
    }

    #[test]
    fn none_ack_sends_become_visible_after_flush() {
        let cluster = cluster();
        let producer = Producer::new(cluster.clone())
            .with_ack_mode(AckMode::None)
            .with_batch_size(4)
            .with_partitioner(Partitioner::Keyed);
        for i in 0..16 {
            producer.send_keyed("events", b"fire", format!("f{i}")).unwrap();
        }
        producer.flush().unwrap();
        assert_eq!(drain_all(&cluster, "events").len(), 16);
    }

    #[test]
    fn full_isr_ack_round_trips_on_unreplicated_cluster() {
        let cluster = cluster();
        let producer = Producer::new(cluster.clone()).with_ack_mode(AckMode::FullIsr);
        for i in 0..10 {
            producer.send("events", format!("d{i}")).unwrap();
        }
        producer.flush().unwrap();
        assert_eq!(drain_all(&cluster, "events").len(), 10);
    }

    #[test]
    fn batching_reduces_publish_requests() {
        let cluster = cluster();
        let unbatched = Producer::new(cluster.clone());
        for i in 0..100 {
            unbatched.send_keyed("events", b"k", format!("x{i}")).unwrap();
        }
        unbatched.flush().unwrap();
        let batched = Producer::new(cluster.clone())
            .with_batch_size(50)
            .with_partitioner(Partitioner::Keyed);
        for i in 0..100 {
            batched.send_keyed("events", b"k", format!("x{i}")).unwrap();
        }
        batched.flush().unwrap();
        assert_eq!(unbatched.stats().requests, 100);
        assert_eq!(batched.stats().requests, 2);
    }

    #[test]
    fn byte_size_trigger_flushes_before_the_message_count() {
        let cluster = cluster();
        // 100-message count trigger would never fire here; the 64-byte
        // size trigger must.
        let producer = Producer::new(cluster.clone())
            .with_batch_size(100)
            .with_batch_bytes(64)
            .with_partitioner(Partitioner::Keyed);
        // 20-byte payloads: the 4th send crosses 64 buffered bytes.
        for i in 0..4 {
            producer
                .send_keyed("events", b"k", format!("payload-{i:011}"))
                .unwrap();
        }
        assert_eq!(producer.stats().requests, 1, "size trigger did not fire");
        assert_eq!(producer.stats().messages, 4);
        // A fresh batch starts counting bytes from zero.
        producer
            .send_keyed("events", b"k", "tail".to_string())
            .unwrap();
        assert_eq!(producer.stats().requests, 1);
        producer.flush().unwrap();
        assert_eq!(producer.stats().requests, 2);
        assert_eq!(drain_all(&cluster, "events").len(), 5);
    }

    #[test]
    fn linger_trigger_flushes_a_stale_batch_at_the_next_send() {
        let cluster = cluster();
        let producer = Producer::new(cluster.clone())
            .with_batch_size(100)
            .with_linger(std::time::Duration::from_millis(10))
            .with_partitioner(Partitioner::Keyed);
        producer.send_keyed("events", b"k", "first".to_string()).unwrap();
        assert_eq!(producer.stats().requests, 0, "linger must not flush eagerly");
        std::thread::sleep(std::time::Duration::from_millis(20));
        // The next send finds the batch past its linger and flushes both.
        producer.send_keyed("events", b"k", "second".to_string()).unwrap();
        let stats = producer.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.messages, 2);
        assert_eq!(drain_all(&cluster, "events").len(), 2);
    }

    #[test]
    fn message_count_trigger_still_wins_when_it_fires_first() {
        let cluster = cluster();
        let producer = Producer::new(cluster.clone())
            .with_batch_size(3)
            .with_batch_bytes(1 << 20)
            .with_linger(std::time::Duration::from_secs(3600))
            .with_partitioner(Partitioner::Keyed);
        for i in 0..9 {
            producer.send_keyed("events", b"k", format!("m{i}")).unwrap();
        }
        assert_eq!(producer.stats().requests, 3);
        assert_eq!(producer.stats().messages, 9);
    }

    #[test]
    fn compression_cuts_wire_bytes_and_round_trips() {
        let cluster = cluster();
        let plain = Producer::new(cluster.clone())
            .with_batch_size(100)
            .with_partitioner(Partitioner::Keyed);
        let packed = Producer::new(cluster.clone())
            .with_batch_size(100)
            .with_codec(Codec::Lz)
            .with_partitioner(Partitioner::Keyed);
        for i in 0..300 {
            let payload = format!("pageview member=12345 url=/in/profile hit={i}");
            plain.send_keyed("events", b"a", payload.clone()).unwrap();
            packed.send_keyed("events", b"b", payload).unwrap();
        }
        plain.flush().unwrap();
        packed.flush().unwrap();
        let plain_stats = plain.stats();
        let packed_stats = packed.stats();
        assert!(
            packed_stats.wire_bytes * 3 <= plain_stats.wire_bytes,
            "expected ~2/3 bandwidth saving: {} vs {}",
            packed_stats.wire_bytes,
            plain_stats.wire_bytes
        );
        // All 600 messages arrive intact.
        assert_eq!(drain_all(&cluster, "events").len(), 600);
    }
}
