//! Group-commit produce path: many producers, one lock acquisition.
//!
//! The paper credits Kafka's ingest throughput to batching away
//! per-message work (§V.B), and the ingestion study in PAPERS.md ("How
//! Fast Can We Insert?") shows the broker-side cost that batching cannot
//! amortize from the client alone: every arriving batch still takes the
//! partition lock, runs the flush policy, and wakes consumers once *per
//! arrival*. Under `N` concurrent producers that is `N` mutex round-trips
//! and `N` condvar broadcasts per unit of data — the serialization this
//! module removes.
//!
//! ## Protocol
//!
//! Producers enqueue pre-encoded frame groups into a per-partition
//! [`GroupQueue`] and then try to become the partition's **drainer**. At
//! most one drainer is active per partition: it claims *every* pending
//! group, commits them with a single [`IngestSink::append_groups`] call
//! (one partition-lock acquisition, one flush-policy check, one consumer
//! wakeup — see `PartitionLog::append_frames_multi`), ships the batch to
//! replicas at most once, completes each group's [`GroupSlot`], and loops
//! while more groups arrived during the commit. Producers that lost the
//! drainer race block on their slot according to their [`AckMode`] — so
//! the many-producers/one-append collapse is exactly the classic group
//! commit from write-ahead-logging databases, applied to a Kafka
//! partition.
//!
//! ## Ack modes
//!
//! [`AckMode`] is the produce-side durability dial (Kafka's `acks=0/1/all`):
//! `None` returns without waiting for the commit, `Leader` returns once
//! the leader's local append holds the bytes, and `FullIsr` returns only
//! after every in-sync replica holds them — the contracts the chaos
//! scenario `chaos_sweep_kafka_ack_durability` kills leaders to verify.
//!
//! ## Deterministic twin
//!
//! Per the PR 7 contract every new concurrent path keeps a
//! [`ShardMode::Deterministic`] twin: a deterministic queue commits
//! exactly one group per append (no cross-producer batching, drainers
//! fully serialized), which makes its lock/flush/wakeup sequence — and
//! therefore the log bytes and any seeded chaos trace — identical to the
//! legacy one-append-per-produce path. `tests/kafka_ingest_props.rs` pins
//! grouped ≡ legacy log bytes in both modes.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

use li_commons::shard::ShardMode;

use crate::message::KafkaError;

/// Producer-requested durability level for a produce call — the
/// reproduction of Kafka's `acks` setting, threaded from [`crate::Producer`]
/// through [`crate::Broker`] / [`crate::ReplicatedCluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AckMode {
    /// Fire-and-forget: the call returns without waiting for the group
    /// commit. The message is still guaranteed to be appended by some
    /// drainer (enqueue never silently drops), but the caller learns
    /// neither the offset nor about append failures.
    None,
    /// Ack after the leader's local append — the legacy produce contract,
    /// and the default. Survives everything except a leader crash before
    /// the next replication ship (the bounded "unshipped tail" loss the
    /// chaos suite measures).
    #[default]
    Leader,
    /// Ack only after every in-sync replica holds the bytes. A
    /// FullIsr-acked message survives any single failover byte-identically.
    /// On an unreplicated [`crate::Broker`] there are no followers, so this
    /// degenerates to `Leader`.
    FullIsr,
}

/// What a grouped produce call learns once its [`AckMode`] condition is
/// met.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProduceReceipt {
    /// Base offset of the group's first message in the partition log.
    /// `None` exactly when the caller used [`AckMode::None`] — it did not
    /// wait to find out.
    pub base_offset: Option<u64>,
}

/// One drained group as handed to an [`IngestSink`]: the pre-encoded wire
/// frames plus the counts the sink needs for metrics.
#[derive(Debug)]
pub struct GroupFrames<'a> {
    /// Pre-encoded `[len][crc][attributes][payload]` frames, back-to-back.
    pub frames: &'a [u8],
    /// Number of messages in `frames`.
    pub messages: u64,
    /// Sum of payload bytes across those messages.
    pub payload_bytes: u64,
}

/// Where a drained batch of groups goes. [`crate::Broker`] implements this
/// over one partition log; [`crate::ReplicatedCluster`] implements it over
/// the partition's current leader plus a replication ship.
pub trait IngestSink {
    /// Appends the groups' frame buffers back-to-back under **one**
    /// partition-lock acquisition, returning the base offset of the first
    /// buffer. An error must leave the log unmutated (the whole batch is
    /// rejected atomically).
    fn append_groups(&self, groups: &[GroupFrames<'_>]) -> Result<u64, KafkaError>;

    /// Pushes every byte appended so far out to all in-sync replicas.
    /// Called at most once per drained batch, and only when at least one
    /// group in the batch asked for [`AckMode::FullIsr`]. The default is a
    /// no-op: a single unreplicated broker has no followers, so FullIsr
    /// degenerates to Leader there.
    fn ship(&self) -> Result<(), KafkaError> {
        Ok(())
    }
}

/// Per-group completion state, observed by the producer that enqueued it.
#[derive(Debug, Clone)]
enum SlotState {
    /// Enqueued, not yet committed by a drainer.
    Pending,
    /// Locally appended at this base offset — the [`AckMode::Leader`]
    /// release point.
    Appended(u64),
    /// Held by every in-sync replica — the [`AckMode::FullIsr`] release
    /// point.
    Shipped(u64),
    /// The drainer could not commit (or ship) this group.
    Failed(KafkaError),
}

/// The rendezvous between a producer and the drainer that committed its
/// group.
struct GroupSlot {
    state: Mutex<SlotState>,
    done: Condvar,
}

impl GroupSlot {
    fn new() -> Self {
        GroupSlot {
            state: Mutex::new(SlotState::Pending),
            done: Condvar::new(),
        }
    }

    fn set(&self, state: SlotState) {
        *self.state.lock() = state;
        self.done.notify_all();
    }

    /// Blocks until the group is at least locally appended.
    fn wait_appended(&self) -> Result<u64, KafkaError> {
        let mut state = self.state.lock();
        loop {
            match &*state {
                SlotState::Pending => self.done.wait(&mut state),
                SlotState::Appended(base) | SlotState::Shipped(base) => return Ok(*base),
                SlotState::Failed(err) => return Err(err.clone()),
            }
        }
    }

    /// Blocks until the group is held by every in-sync replica.
    fn wait_shipped(&self) -> Result<u64, KafkaError> {
        let mut state = self.state.lock();
        loop {
            match &*state {
                SlotState::Pending | SlotState::Appended(_) => self.done.wait(&mut state),
                SlotState::Shipped(base) => return Ok(*base),
                SlotState::Failed(err) => return Err(err.clone()),
            }
        }
    }
}

/// A group waiting in the queue for a drainer.
struct PendingGroup {
    frames: Vec<u8>,
    messages: u64,
    payload_bytes: u64,
    ack: AckMode,
    slot: Arc<GroupSlot>,
}

struct QueueInner {
    pending: VecDeque<PendingGroup>,
    pending_bytes: usize,
    /// True while some producer thread is committing a claimed batch.
    draining: bool,
}

/// What one [`GroupQueue::drain_with`] call did — surfaced so the broker
/// can record groups-per-drain distribution metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DrainStats {
    /// Drained batches committed (lock acquisitions on the partition log).
    pub commits: u64,
    /// Groups across those batches.
    pub groups: u64,
}

/// The sharded per-partition append queue behind group commit. One lives
/// next to each partition log; producers [`GroupQueue::produce`] into it
/// and the winning drainer commits every waiting group in one shot.
pub struct GroupQueue {
    mode: ShardMode,
    capacity_bytes: usize,
    inner: Mutex<QueueInner>,
    /// Signaled when queue space frees up *and* when a drainer finishes —
    /// both "re-check your admission / drainer race" events.
    vacancy: Condvar,
}

impl std::fmt::Debug for GroupQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("GroupQueue")
            .field("mode", &self.mode)
            .field("pending", &inner.pending.len())
            .field("pending_bytes", &inner.pending_bytes)
            .field("draining", &inner.draining)
            .finish()
    }
}

impl GroupQueue {
    /// An empty queue. `capacity_bytes` bounds the waiting groups'
    /// combined frame bytes; producers past it block (backpressure, not
    /// load shedding) with a one-group overshoot allowance so a single
    /// oversized batch can always land.
    pub fn new(mode: ShardMode, capacity_bytes: usize) -> Self {
        GroupQueue {
            mode,
            capacity_bytes: capacity_bytes.max(1),
            inner: Mutex::new(QueueInner {
                pending: VecDeque::new(),
                pending_bytes: 0,
                draining: false,
            }),
            vacancy: Condvar::new(),
        }
    }

    /// The queue's shard mode.
    pub fn mode(&self) -> ShardMode {
        self.mode
    }

    /// Groups currently waiting for a drainer (diagnostics / tests).
    pub fn pending_groups(&self) -> usize {
        self.inner.lock().pending.len()
    }

    /// Enqueues one pre-encoded frame group and drives the group-commit
    /// protocol: become the drainer if none is active, then block per
    /// `ack`. Returns once the ack contract is satisfied.
    pub fn produce(
        &self,
        sink: &dyn IngestSink,
        frames: Vec<u8>,
        messages: u64,
        payload_bytes: u64,
        ack: AckMode,
    ) -> Result<ProduceReceipt, KafkaError> {
        let slot = Arc::new(GroupSlot::new());
        self.admit(PendingGroup {
            frames,
            messages,
            payload_bytes,
            ack,
            slot: slot.clone(),
        });
        self.drain_with(sink);
        match ack {
            AckMode::None => Ok(ProduceReceipt { base_offset: None }),
            AckMode::Leader => slot.wait_appended().map(|base| ProduceReceipt {
                base_offset: Some(base),
            }),
            AckMode::FullIsr => slot.wait_shipped().map(|base| ProduceReceipt {
                base_offset: Some(base),
            }),
        }
    }

    /// Blocking admission. Invariant: a producer only waits while a
    /// drainer is active, and an active drainer always signals `vacancy`
    /// both when it claims a batch and when it retires — so every waiter
    /// has a guaranteed future wakeup and re-checks admission then. When
    /// no drainer is active the group is admitted even past the byte cap
    /// (the caller's own `drain_with` is the next progress step, and
    /// blocking here with nobody committed to waking us would wedge).
    fn admit(&self, group: PendingGroup) {
        let len = group.frames.len();
        let mut inner = self.inner.lock();
        loop {
            let fits = inner.pending_bytes + len <= self.capacity_bytes;
            if fits || inner.pending.is_empty() || !inner.draining {
                inner.pending.push_back(group);
                inner.pending_bytes += len;
                return;
            }
            self.vacancy.wait(&mut inner);
        }
    }

    /// Runs the drainer protocol until no groups are pending or another
    /// thread holds the drainer role. Returns what this call committed.
    ///
    /// Parallel mode claims every pending group per iteration — the group
    /// commit. Deterministic mode claims exactly one group per iteration
    /// and fully serializes drainers, reproducing the legacy
    /// one-append-per-produce lock/flush sequence byte for byte.
    pub fn drain_with(&self, sink: &dyn IngestSink) -> DrainStats {
        let mut stats = DrainStats::default();
        let mut inner = self.inner.lock();
        loop {
            if inner.draining {
                match self.mode {
                    // The active drainer re-checks `pending` before it
                    // retires, so our groups are its problem now.
                    ShardMode::Parallel => return stats,
                    // Serialized twin: wait for the active drainer to
                    // retire, then claim the role ourselves.
                    ShardMode::Deterministic => {
                        self.vacancy.wait(&mut inner);
                        continue;
                    }
                }
            }
            if inner.pending.is_empty() {
                return stats;
            }
            inner.draining = true;
            let batch: Vec<PendingGroup> = match self.mode {
                ShardMode::Parallel => {
                    inner.pending_bytes = 0;
                    inner.pending.drain(..).collect()
                }
                ShardMode::Deterministic => {
                    let group = inner.pending.pop_front().expect("checked non-empty");
                    inner.pending_bytes -= group.frames.len();
                    vec![group]
                }
            };
            // Space freed: wake blocked admitters.
            self.vacancy.notify_all();
            drop(inner);

            Self::commit(sink, &batch);
            stats.commits += 1;
            stats.groups += batch.len() as u64;

            inner = self.inner.lock();
            inner.draining = false;
            // Wake admission waiters and (in Deterministic mode) drainer
            // candidates; then loop — more groups may have arrived while
            // we were committing, and nobody else will take them.
            self.vacancy.notify_all();
        }
    }

    /// Commits one claimed batch: one sink append for the whole batch,
    /// per-group base offsets by prefix sums, at most one ship, and every
    /// slot completed or failed.
    fn commit(sink: &dyn IngestSink, batch: &[PendingGroup]) {
        let frames: Vec<GroupFrames<'_>> = batch
            .iter()
            .map(|g| GroupFrames {
                frames: &g.frames,
                messages: g.messages,
                payload_bytes: g.payload_bytes,
            })
            .collect();
        let base = match sink.append_groups(&frames) {
            Ok(base) => base,
            Err(err) => {
                for group in batch {
                    group.slot.set(SlotState::Failed(err.clone()));
                }
                return;
            }
        };
        let mut offset = base;
        let mut offsets = Vec::with_capacity(batch.len());
        for group in batch {
            offsets.push(offset);
            offset += group.frames.len() as u64;
        }
        // Leader / None contracts are met by the local append alone.
        let mut needs_ship = false;
        for (group, &base_offset) in batch.iter().zip(&offsets) {
            if group.ack == AckMode::FullIsr {
                needs_ship = true;
            } else {
                group.slot.set(SlotState::Appended(base_offset));
            }
        }
        if !needs_ship {
            return;
        }
        // One ship covers every FullIsr group in the batch.
        match sink.ship() {
            Ok(()) => {
                for (group, &base_offset) in batch.iter().zip(&offsets) {
                    if group.ack == AckMode::FullIsr {
                        group.slot.set(SlotState::Shipped(base_offset));
                    }
                }
            }
            Err(err) => {
                for group in batch {
                    if group.ack == AckMode::FullIsr {
                        group.slot.set(SlotState::Failed(err.clone()));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{LogConfig, PartitionLog};
    use crate::message::MessageSet;
    use li_commons::sim::SimClock;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    /// Sink over a bare partition log, counting appends and ships.
    struct LogSink {
        log: PartitionLog,
        appends: AtomicU64,
        ships: AtomicU64,
        /// When set, `append_groups` parks until the channel delivers —
        /// lets tests wedge the drainer to observe backpressure.
        gate: Option<Mutex<mpsc::Receiver<()>>>,
    }

    impl LogSink {
        fn new() -> Self {
            LogSink {
                log: PartitionLog::new(LogConfig::default(), Arc::new(SimClock::new())),
                appends: AtomicU64::new(0),
                ships: AtomicU64::new(0),
                gate: None,
            }
        }
    }

    impl IngestSink for LogSink {
        fn append_groups(&self, groups: &[GroupFrames<'_>]) -> Result<u64, KafkaError> {
            if let Some(gate) = &self.gate {
                gate.lock().recv().expect("gate sender alive");
            }
            self.appends.fetch_add(1, Ordering::SeqCst);
            let buffers: Vec<&[u8]> = groups.iter().map(|g| g.frames).collect();
            self.log.append_frames_multi(&buffers)
        }

        fn ship(&self) -> Result<(), KafkaError> {
            self.ships.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
    }

    fn encode(payloads: &[&str]) -> Vec<u8> {
        MessageSet::from_payloads(payloads.iter().map(|p| p.as_bytes().to_vec())).encode()
    }

    #[test]
    fn one_producer_commits_inline_and_gets_its_offset() {
        let queue = GroupQueue::new(ShardMode::Parallel, 1 << 20);
        let sink = LogSink::new();
        let r1 = queue
            .produce(&sink, encode(&["a"]), 1, 1, AckMode::Leader)
            .unwrap();
        let r2 = queue
            .produce(&sink, encode(&["bb"]), 1, 2, AckMode::Leader)
            .unwrap();
        assert_eq!(r1.base_offset, Some(0));
        assert_eq!(r2.base_offset, Some(encode(&["a"]).len() as u64));
        assert_eq!(sink.appends.load(Ordering::SeqCst), 2);
        assert_eq!(sink.ships.load(Ordering::SeqCst), 0, "no FullIsr group");
        assert_eq!(queue.pending_groups(), 0);
    }

    #[test]
    fn empty_group_commits_cleanly() {
        let queue = GroupQueue::new(ShardMode::Parallel, 1 << 20);
        let sink = LogSink::new();
        let receipt = queue
            .produce(&sink, Vec::new(), 0, 0, AckMode::Leader)
            .unwrap();
        assert_eq!(receipt.base_offset, Some(0));
        assert_eq!(sink.log.log_end(), 0);
        // And an empty group after real data reports the current end.
        queue
            .produce(&sink, encode(&["x"]), 1, 1, AckMode::Leader)
            .unwrap();
        let end = sink.log.log_end();
        let receipt = queue
            .produce(&sink, Vec::new(), 0, 0, AckMode::Leader)
            .unwrap();
        assert_eq!(receipt.base_offset, Some(end));
    }

    #[test]
    fn none_ack_returns_without_offset_but_still_lands() {
        let queue = GroupQueue::new(ShardMode::Parallel, 1 << 20);
        let sink = LogSink::new();
        let receipt = queue
            .produce(&sink, encode(&["fire", "forget"]), 2, 10, AckMode::None)
            .unwrap();
        assert_eq!(receipt.base_offset, None);
        // Single-threaded: the caller was its own drainer, so the bytes
        // are already in the log (flush-on-close has nothing left to do).
        assert_eq!(queue.pending_groups(), 0);
        assert_eq!(sink.log.log_end(), encode(&["fire", "forget"]).len() as u64);
    }

    #[test]
    fn full_isr_ships_once_per_drained_batch() {
        let queue = GroupQueue::new(ShardMode::Parallel, 1 << 20);
        let sink = LogSink::new();
        queue
            .produce(&sink, encode(&["d"]), 1, 1, AckMode::FullIsr)
            .unwrap();
        assert_eq!(sink.ships.load(Ordering::SeqCst), 1);
        queue
            .produce(&sink, encode(&["e"]), 1, 1, AckMode::Leader)
            .unwrap();
        assert_eq!(sink.ships.load(Ordering::SeqCst), 1, "Leader batch does not ship");
    }

    #[test]
    fn torn_group_fails_its_producer_without_wedging_the_queue() {
        let queue = GroupQueue::new(ShardMode::Parallel, 1 << 20);
        let sink = LogSink::new();
        let mut torn = encode(&["torn"]);
        torn.truncate(torn.len() - 1);
        let err = queue.produce(&sink, torn, 1, 4, AckMode::Leader);
        assert!(err.is_err());
        // Queue still serves the next producer.
        let ok = queue
            .produce(&sink, encode(&["fine"]), 1, 4, AckMode::Leader)
            .unwrap();
        assert_eq!(ok.base_offset, Some(0), "failed group left no bytes behind");
    }

    #[test]
    fn concurrent_producers_group_into_fewer_appends() {
        // Wedge the drainer on the first append; the groups piling up
        // behind it must then commit in ONE append_groups call.
        let queue = Arc::new(GroupQueue::new(ShardMode::Parallel, 1 << 20));
        let (gate_tx, gate_rx) = mpsc::channel();
        let mut sink = LogSink::new();
        sink.gate = Some(Mutex::new(gate_rx));
        let sink = Arc::new(sink);

        let mut handles = Vec::new();
        let spawn_producer = |i: usize| {
            let queue = queue.clone();
            let sink = sink.clone();
            std::thread::spawn(move || {
                queue
                    .produce(
                        &*sink,
                        encode(&[&format!("msg-{i}")]),
                        1,
                        5,
                        AckMode::Leader,
                    )
                    .unwrap()
            })
        };
        // First producer becomes the drainer and wedges inside append
        // with its own group claimed...
        handles.push(spawn_producer(0));
        while !queue.inner.lock().draining {
            std::thread::sleep(Duration::from_millis(1));
        }
        // ...then three more pile up behind it. Open the gate for the
        // wedged append and the grouped follow-up.
        for i in 1..4 {
            handles.push(spawn_producer(i));
        }
        while queue.pending_groups() < 3 {
            std::thread::sleep(Duration::from_millis(1));
        }
        gate_tx.send(()).unwrap(); // first (wedged) drain: 1 group
        gate_tx.send(()).unwrap(); // second drain: the remaining 3 as one batch
        let receipts: Vec<ProduceReceipt> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();

        assert_eq!(sink.appends.load(Ordering::SeqCst), 2, "4 producers, 2 appends");
        // All four landed, at distinct offsets, log contiguous.
        let mut offsets: Vec<u64> = receipts.iter().map(|r| r.base_offset.unwrap()).collect();
        offsets.sort_unstable();
        offsets.dedup();
        assert_eq!(offsets.len(), 4);
        assert_eq!(sink.log.verify_contiguity().unwrap(), 4);
    }

    #[test]
    fn queue_full_backpressure_blocks_then_admits() {
        // Capacity of one small group; wedge the drainer so a second
        // producer's admission must wait for the drain to free space.
        let group = encode(&["block"]);
        let queue = Arc::new(GroupQueue::new(ShardMode::Parallel, group.len()));
        let (gate_tx, gate_rx) = mpsc::channel();
        let mut sink = LogSink::new();
        sink.gate = Some(Mutex::new(gate_rx));
        let sink = Arc::new(sink);

        // Producer A: becomes the drainer, wedges inside append.
        let a = {
            let (queue, sink, group) = (queue.clone(), sink.clone(), group.clone());
            std::thread::spawn(move || queue.produce(&*sink, group, 1, 5, AckMode::Leader))
        };
        while !queue.inner.lock().draining {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Producer B: fills the queue to capacity (admitted: queue empty).
        let b = {
            let (queue, sink, group) = (queue.clone(), sink.clone(), group.clone());
            std::thread::spawn(move || queue.produce(&*sink, group, 1, 5, AckMode::Leader))
        };
        while queue.pending_groups() < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Producer C: queue full + drainer active → must block in admit.
        let c = {
            let (queue, sink, group) = (queue.clone(), sink.clone(), group.clone());
            std::thread::spawn(move || queue.produce(&*sink, group, 1, 5, AckMode::Leader))
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(
            queue.pending_groups(),
            1,
            "C is blocked in admission while the queue is full"
        );
        // Open the gate: A's append completes, the drainer claims B's
        // group (freeing space, admitting C) and commits until dry.
        gate_tx.send(()).unwrap();
        gate_tx.send(()).unwrap();
        gate_tx.send(()).unwrap();
        drop(gate_tx);
        a.join().unwrap().unwrap();
        b.join().unwrap().unwrap();
        c.join().unwrap().unwrap();
        assert_eq!(sink.log.verify_contiguity().unwrap(), 3, "all three landed");
    }

    #[test]
    fn deterministic_mode_commits_one_group_per_append() {
        let queue = GroupQueue::new(ShardMode::Deterministic, 1 << 20);
        let sink = LogSink::new();
        for i in 0..5 {
            queue
                .produce(&sink, encode(&[&format!("d-{i}")]), 1, 3, AckMode::Leader)
                .unwrap();
        }
        assert_eq!(
            sink.appends.load(Ordering::SeqCst),
            5,
            "deterministic twin: one append per group, like the legacy path"
        );
        assert_eq!(sink.log.verify_contiguity().unwrap(), 5);
    }

    #[test]
    fn flush_on_close_drain_leaves_nothing_pending() {
        // drain_with on an idle queue is a no-op; after interleaved
        // produces it reports zero pending regardless of ack mode.
        let queue = GroupQueue::new(ShardMode::Parallel, 1 << 20);
        let sink = LogSink::new();
        for ack in [AckMode::None, AckMode::Leader, AckMode::FullIsr] {
            queue.produce(&sink, encode(&["z"]), 1, 1, ack).unwrap();
        }
        let stats = queue.drain_with(&sink);
        assert_eq!(stats.commits, 0, "nothing left for the closing drain");
        assert_eq!(queue.pending_groups(), 0);
        assert_eq!(sink.log.verify_contiguity().unwrap(), 3);
    }
}
