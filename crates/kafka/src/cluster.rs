//! The cluster: brokers + topic metadata + ZooKeeper registration.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

use li_commons::metrics::MetricsRegistry;
use li_commons::shard::ShardMode;
use li_commons::sim::{Clock, RealClock};
use li_zk::{CreateMode, Session, ZooKeeper};

use crate::broker::Broker;
use crate::log::LogConfig;
use crate::message::KafkaError;

/// A Kafka cluster: brokers, topic→partition→broker metadata, and the
/// coordination service used by consumer groups. "Kafka uses Zookeeper for
/// ... detecting the addition and the removal of brokers and consumers"
/// (§V.C); brokers and partition ownership are registered under
/// `/brokers`.
pub struct KafkaCluster {
    zk: ZooKeeper,
    session: Session,
    clock: Arc<dyn Clock>,
    config: LogConfig,
    brokers: Vec<Arc<Broker>>,
    /// topic -> partition -> broker index.
    metadata: RwLock<HashMap<String, Vec<usize>>>,
    metrics: Arc<MetricsRegistry>,
}

impl std::fmt::Debug for KafkaCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KafkaCluster")
            .field("brokers", &self.brokers.len())
            .field("topics", &self.metadata.read().keys().collect::<Vec<_>>())
            .finish()
    }
}

impl KafkaCluster {
    /// Builds a cluster of `broker_count` brokers with default log config
    /// and the real clock.
    pub fn new(broker_count: u16) -> Result<Arc<Self>, KafkaError> {
        Self::with_parts(broker_count, LogConfig::default(), Arc::new(RealClock::new()))
    }

    /// Fully-injected constructor.
    pub fn with_parts(
        broker_count: u16,
        config: LogConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<Arc<Self>, KafkaError> {
        Self::with_metrics(broker_count, config, clock, &MetricsRegistry::new())
    }

    /// Fully-injected constructor that reports into a shared metrics
    /// registry (names under `kafka.`; the embedded coordination service
    /// reports under `zk.`).
    pub fn with_metrics(
        broker_count: u16,
        config: LogConfig,
        clock: Arc<dyn Clock>,
        registry: &Arc<MetricsRegistry>,
    ) -> Result<Arc<Self>, KafkaError> {
        Self::with_shard_mode(broker_count, config, clock, registry, ShardMode::Parallel)
    }

    /// [`KafkaCluster::with_metrics`] with an explicit shard mode threaded
    /// to every broker (index striping + group-commit ingest queues).
    /// [`ShardMode::Deterministic`] makes produce sequencing byte-identical
    /// to the legacy one-append-per-produce path — the chaos harness twin.
    pub fn with_shard_mode(
        broker_count: u16,
        config: LogConfig,
        clock: Arc<dyn Clock>,
        registry: &Arc<MetricsRegistry>,
        mode: ShardMode,
    ) -> Result<Arc<Self>, KafkaError> {
        let zk = ZooKeeper::with_metrics(registry);
        let session = zk.connect();
        session.create_recursive("/brokers/ids", Vec::new(), CreateMode::Persistent)?;
        session.create_recursive("/brokers/topics", Vec::new(), CreateMode::Persistent)?;
        let metrics = Arc::clone(registry);
        let brokers: Vec<Arc<Broker>> = (0..broker_count)
            .map(|id| {
                let broker = Arc::new(Broker::with_shard_mode(
                    id,
                    config.clone(),
                    clock.clone(),
                    &metrics,
                    mode,
                ));
                let _ = session.create(
                    &format!("/brokers/ids/{id}"),
                    Vec::new(),
                    CreateMode::Persistent,
                );
                broker
            })
            .collect();
        Ok(Arc::new(KafkaCluster {
            zk,
            session,
            clock,
            config,
            brokers,
            metadata: RwLock::new(HashMap::new()),
            metrics,
        }))
    }

    /// The log configuration every broker of this cluster was built with.
    pub fn log_config(&self) -> &LogConfig {
        &self.config
    }

    /// The shard mode the cluster's brokers run in.
    pub fn shard_mode(&self) -> ShardMode {
        self.brokers
            .first()
            .map(|b| b.shard_mode())
            .unwrap_or_default()
    }

    /// The metrics registry every broker, producer, and consumer of this
    /// cluster reports into (names under `kafka.`).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The coordination service (consumer groups connect here).
    pub fn zookeeper(&self) -> &ZooKeeper {
        &self.zk
    }

    /// The cluster clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Creates a topic with `num_partitions`, spread round-robin across
    /// brokers, and registers it in ZooKeeper.
    pub fn create_topic(&self, topic: &str, num_partitions: u32) -> Result<(), KafkaError> {
        let mut metadata = self.metadata.write();
        if metadata.contains_key(topic) {
            return Err(KafkaError::Group(format!("topic `{topic}` exists")));
        }
        let mut assignment = Vec::with_capacity(num_partitions as usize);
        for partition in 0..num_partitions {
            let broker_idx = partition as usize % self.brokers.len();
            self.brokers[broker_idx].create_partition(topic, partition);
            assignment.push(broker_idx);
            self.session.create_recursive(
                &format!("/brokers/topics/{topic}/{partition}"),
                broker_idx.to_string().into_bytes(),
                CreateMode::Persistent,
            )?;
        }
        metadata.insert(topic.to_string(), assignment);
        Ok(())
    }

    /// Number of partitions of `topic`.
    pub fn num_partitions(&self, topic: &str) -> Result<u32, KafkaError> {
        self.metadata
            .read()
            .get(topic)
            .map(|a| a.len() as u32)
            .ok_or_else(|| KafkaError::UnknownTopicPartition(topic.to_string(), 0))
    }

    /// The broker hosting `topic`/`partition`.
    pub fn broker_for(&self, topic: &str, partition: u32) -> Result<Arc<Broker>, KafkaError> {
        let metadata = self.metadata.read();
        let assignment = metadata
            .get(topic)
            .ok_or_else(|| KafkaError::UnknownTopicPartition(topic.to_string(), partition))?;
        let idx = *assignment
            .get(partition as usize)
            .ok_or_else(|| KafkaError::UnknownTopicPartition(topic.to_string(), partition))?;
        Ok(self.brokers[idx].clone())
    }

    /// All brokers.
    pub fn brokers(&self) -> &[Arc<Broker>] {
        &self.brokers
    }

    /// Flushes every broker.
    pub fn flush_all(&self) {
        for broker in &self.brokers {
            broker.flush_all();
        }
    }

    /// Runs retention everywhere; returns segments deleted.
    pub fn enforce_retention(&self) -> usize {
        self.brokers.iter().map(|b| b.enforce_retention()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageSet;

    #[test]
    fn topic_partitions_spread_over_brokers() {
        let cluster = KafkaCluster::new(3).unwrap();
        cluster.create_topic("events", 7).unwrap();
        assert_eq!(cluster.num_partitions("events").unwrap(), 7);
        let mut per_broker = [0usize; 3];
        for p in 0..7 {
            let broker = cluster.broker_for("events", p).unwrap();
            per_broker[broker.id() as usize] += 1;
        }
        assert_eq!(per_broker, [3, 2, 2]);
    }

    #[test]
    fn duplicate_topic_rejected() {
        let cluster = KafkaCluster::new(1).unwrap();
        cluster.create_topic("t", 1).unwrap();
        assert!(cluster.create_topic("t", 1).is_err());
    }

    #[test]
    fn topic_registered_in_zookeeper() {
        let cluster = KafkaCluster::new(2).unwrap();
        cluster.create_topic("news", 4).unwrap();
        let session = cluster.zookeeper().connect();
        let children = session.children("/brokers/topics/news").unwrap();
        assert_eq!(children.len(), 4);
    }

    #[test]
    fn produce_via_cluster_routing() {
        let cluster = KafkaCluster::new(2).unwrap();
        cluster.create_topic("t", 2).unwrap();
        cluster
            .broker_for("t", 1)
            .unwrap()
            .produce("t", 1, &MessageSet::from_payloads(["hello"]))
            .unwrap();
        let (messages, _) = cluster
            .broker_for("t", 1)
            .unwrap()
            .fetch("t", 1, 0, usize::MAX)
            .unwrap();
        assert_eq!(messages.len(), 1);
    }
}
