//! Consumers: pull fetches, blocking message streams, consumer-owned state.
//!
//! "The information about how much each consumer has consumed is not
//! maintained by the broker, but by the consumer itself" (§V.B). The
//! consumer issues pull requests `(offset, max_bytes)`, and "the message
//! stream iterator never terminates. If there are currently no more
//! messages to consume, the iterator blocks until new messages are
//! published."

use li_commons::metrics::Gauge;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::cluster::KafkaCluster;
use crate::message::{KafkaError, Message, MessageSet};

/// A consumer of one topic-partition, tracking its own offset.
pub struct SimpleConsumer {
    cluster: Arc<KafkaCluster>,
    topic: String,
    partition: u32,
    offset: u64,
    max_bytes: usize,
    /// First-class consumer lag (`kafka.consumer.<topic>.<partition>.lag`):
    /// log-end offset minus this consumer's position, refreshed on every
    /// poll/seek.
    lag: Gauge,
}

impl SimpleConsumer {
    /// Opens a consumer at offset 0.
    pub fn new(
        cluster: Arc<KafkaCluster>,
        topic: &str,
        partition: u32,
    ) -> Result<Self, KafkaError> {
        // Validate the topic-partition exists up front.
        cluster.broker_for(topic, partition)?;
        let lag = cluster
            .metrics()
            .gauge(&format!("kafka.consumer.{topic}.{partition}.lag"));
        Ok(SimpleConsumer {
            cluster,
            topic: topic.to_string(),
            partition,
            offset: 0,
            max_bytes: 512 * 1024,
            lag,
        })
    }

    fn refresh_lag(&self) {
        if let Ok(broker) = self.cluster.broker_for(&self.topic, self.partition) {
            if let Ok(log) = broker.log(&self.topic, self.partition) {
                self.lag.set(log.log_end().saturating_sub(self.offset) as i64);
            }
        }
    }

    /// Builder: per-fetch byte budget (the paper's "maximum number of
    /// bytes to fetch", typically hundreds of kilobytes).
    #[must_use]
    pub fn with_max_bytes(mut self, max_bytes: usize) -> Self {
        self.max_bytes = max_bytes.max(1);
        self
    }

    /// Current position (next offset to fetch).
    pub fn position(&self) -> u64 {
        self.offset
    }

    /// Repositions the consumer ("a consumer can deliberately rewind back
    /// to an old offset and re-consume data").
    pub fn seek(&mut self, offset: u64) {
        self.offset = offset;
        self.refresh_lag();
    }

    /// One pull: fetches from the current offset, unwraps compressed
    /// batches, advances the offset. Returns `(wrapper_offset, message)`
    /// pairs — acknowledging an offset implies everything before it.
    ///
    /// The fetch is zero-copy end to end: the broker hands back
    /// [`crate::message::FetchChunk`] views of its own segment storage,
    /// and uncompressed payloads are `Bytes` sub-slices of those chunks —
    /// no byte of payload is copied between the log and this method's
    /// caller. Compressed wrappers are decompressed here, outside any
    /// broker lock, into one buffer their inner payloads then alias.
    pub fn poll(&mut self) -> Result<Vec<(u64, Message)>, KafkaError> {
        let broker = self.cluster.broker_for(&self.topic, self.partition)?;
        let (chunks, next) =
            broker.fetch_chunks(&self.topic, self.partition, self.offset, self.max_bytes)?;
        let mut out = Vec::with_capacity(chunks.iter().map(|c| c.messages as usize).sum());
        for chunk in &chunks {
            for item in chunk {
                let (offset, message) = item?;
                match message.codec {
                    // Fast path: the message IS the view — push it as is.
                    li_commons::compress::Codec::None => out.push((offset, message)),
                    _ => {
                        for inner in MessageSet::unwrap_message(&message)? {
                            out.push((offset, inner));
                        }
                    }
                }
            }
        }
        self.offset = next;
        self.refresh_lag();
        Ok(out)
    }

    /// Blocks until data is available or `timeout` passes.
    pub fn wait_for_data(&self, timeout: Duration) -> Result<bool, KafkaError> {
        let broker = self.cluster.broker_for(&self.topic, self.partition)?;
        Ok(broker
            .log(&self.topic, self.partition)?
            .wait_for_data(self.offset, timeout))
    }
}

/// Handle to stop a [`MessageStream`] from another thread.
#[derive(Debug, Clone, Default)]
pub struct StreamShutdown {
    flag: Arc<AtomicBool>,
}

impl StreamShutdown {
    /// Signals the stream to end after its current wait.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// The never-terminating blocking iterator of §V.A:
/// `for message in stream { ... }`.
pub struct MessageStream {
    consumer: SimpleConsumer,
    pending: std::collections::VecDeque<(u64, Message)>,
    shutdown: StreamShutdown,
    wait_slice: Duration,
}

impl MessageStream {
    /// Creates a stream over one topic-partition (the paper's
    /// `createMessageStreams`). Returns the stream and its shutdown handle.
    pub fn new(
        cluster: Arc<KafkaCluster>,
        topic: &str,
        partition: u32,
    ) -> Result<(Self, StreamShutdown), KafkaError> {
        let shutdown = StreamShutdown::default();
        Ok((
            MessageStream {
                consumer: SimpleConsumer::new(cluster, topic, partition)?,
                pending: std::collections::VecDeque::new(),
                shutdown: shutdown.clone(),
                wait_slice: Duration::from_millis(50),
            },
            shutdown,
        ))
    }

    /// Current underlying offset.
    pub fn position(&self) -> u64 {
        self.consumer.position()
    }
}

impl Iterator for MessageStream {
    type Item = Message;

    fn next(&mut self) -> Option<Message> {
        loop {
            if let Some((_, message)) = self.pending.pop_front() {
                return Some(message);
            }
            if self.shutdown.is_shutdown() {
                return None;
            }
            match self.consumer.poll() {
                Ok(batch) if !batch.is_empty() => {
                    self.pending.extend(batch);
                }
                Ok(_) => {
                    // Nothing yet: block until publish or shutdown check.
                    let _ = self.consumer.wait_for_data(self.wait_slice);
                }
                Err(_) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageSet;

    fn cluster_with_topic() -> Arc<KafkaCluster> {
        let cluster = KafkaCluster::new(1).unwrap();
        cluster.create_topic("t", 1).unwrap();
        cluster
    }

    fn produce(cluster: &Arc<KafkaCluster>, payloads: &[&str]) {
        cluster
            .broker_for("t", 0)
            .unwrap()
            .produce("t", 0, &MessageSet::from_payloads(payloads.iter().map(|s| s.to_string())))
            .unwrap();
    }

    #[test]
    fn poll_advances_and_seek_rewinds() {
        let cluster = cluster_with_topic();
        produce(&cluster, &["a", "b", "c"]);
        let mut consumer = SimpleConsumer::new(cluster, "t", 0).unwrap();
        let batch = consumer.poll().unwrap();
        assert_eq!(batch.len(), 3);
        assert!(consumer.poll().unwrap().is_empty(), "caught up");
        // Rewind to the second message's offset and re-consume.
        let second_offset = batch[1].0;
        consumer.seek(second_offset);
        let again = consumer.poll().unwrap();
        assert_eq!(again.len(), 2);
        assert_eq!(again[0].1.payload.as_ref(), b"b");
    }

    #[test]
    fn consumer_state_is_client_side() {
        // Two independent consumers each get their own full copy —
        // the broker tracks nothing.
        let cluster = cluster_with_topic();
        produce(&cluster, &["x", "y"]);
        let mut c1 = SimpleConsumer::new(cluster.clone(), "t", 0).unwrap();
        let mut c2 = SimpleConsumer::new(cluster, "t", 0).unwrap();
        assert_eq!(c1.poll().unwrap().len(), 2);
        assert_eq!(c2.poll().unwrap().len(), 2);
    }

    #[test]
    fn max_bytes_paginates() {
        let cluster = cluster_with_topic();
        produce(&cluster, &["0123456789"; 20]);
        let mut consumer = SimpleConsumer::new(cluster, "t", 0)
            .unwrap()
            .with_max_bytes(40);
        let mut total = 0;
        let mut polls = 0;
        loop {
            let batch = consumer.poll().unwrap();
            if batch.is_empty() {
                break;
            }
            total += batch.len();
            polls += 1;
        }
        assert_eq!(total, 20);
        assert!(polls > 5, "pagination expected, got {polls} polls");
    }

    #[test]
    fn compressed_batches_transparent_to_consumer() {
        let cluster = cluster_with_topic();
        let set = MessageSet::from_payloads((0..50).map(|i| format!("event {i} event")));
        let wrapper = set.compressed();
        cluster
            .broker_for("t", 0)
            .unwrap()
            .produce_message("t", 0, &wrapper)
            .unwrap();
        let mut consumer = SimpleConsumer::new(cluster, "t", 0).unwrap();
        let batch = consumer.poll().unwrap();
        assert_eq!(batch.len(), 50);
        assert_eq!(batch[7].1.payload.as_ref(), b"event 7 event");
    }

    #[test]
    fn stream_blocks_then_delivers() {
        let cluster = cluster_with_topic();
        let (stream, shutdown) = MessageStream::new(cluster.clone(), "t", 0).unwrap();
        let handle = std::thread::spawn(move || {
            let mut seen = Vec::new();
            for message in stream {
                seen.push(String::from_utf8_lossy(&message.payload).into_owned());
                if seen.len() == 3 {
                    break;
                }
            }
            seen
        });
        // Publish after the stream is already waiting.
        std::thread::sleep(Duration::from_millis(30));
        produce(&cluster, &["a"]);
        std::thread::sleep(Duration::from_millis(10));
        produce(&cluster, &["b", "c"]);
        let seen = handle.join().unwrap();
        assert_eq!(seen, vec!["a", "b", "c"]);
        shutdown.shutdown();
    }

    #[test]
    fn consumer_past_retention_recovers_at_log_start() {
        use crate::log::LogConfig;
        use li_commons::sim::SimClock;
        let clock = SimClock::new();
        let cluster = crate::cluster::KafkaCluster::with_parts(
            1,
            LogConfig {
                segment_bytes: 64,
                retention: Duration::from_secs(100),
                ..LogConfig::default()
            },
            Arc::new(clock.clone()),
        )
        .unwrap();
        cluster.create_topic("t", 1).unwrap();
        produce_n(&cluster, 30);
        let mut consumer = SimpleConsumer::new(cluster.clone(), "t", 0).unwrap();
        // Consumer never polls; retention deletes the old segments.
        clock.advance(Duration::from_secs(200));
        produce_n(&cluster, 3);
        assert!(cluster.enforce_retention() > 0);
        // Its offset 0 is now out of range: the standard recovery is to
        // reset to log_start (losing only what the SLA already discarded).
        let err = consumer.poll().unwrap_err();
        let crate::message::KafkaError::OffsetOutOfRange { log_start, .. } = err else {
            panic!("expected OffsetOutOfRange, got {err:?}");
        };
        consumer.seek(log_start);
        assert_eq!(consumer.poll().unwrap().len(), 3);
    }

    fn produce_n(cluster: &Arc<crate::cluster::KafkaCluster>, n: usize) {
        cluster
            .broker_for("t", 0)
            .unwrap()
            .produce(
                "t",
                0,
                &MessageSet::from_payloads((0..n).map(|i| format!("m{i}"))),
            )
            .unwrap();
    }

    #[test]
    fn stream_shutdown_terminates_iterator() {
        let cluster = cluster_with_topic();
        let (stream, shutdown) = MessageStream::new(cluster, "t", 0).unwrap();
        let handle = std::thread::spawn(move || stream.count());
        std::thread::sleep(Duration::from_millis(20));
        shutdown.shutdown();
        assert_eq!(handle.join().unwrap(), 0);
    }
}
