//! The broker: a set of partition logs.
//!
//! The partition index is hash-striped (PR 7): produce and fetch resolve a
//! topic-partition through one short stripe lock instead of a broker-wide
//! map lock, so partitions hosted on the same broker never contend on the
//! index. The striping is semantics-free — the index is read-mostly and
//! each [`PartitionLog`] has its own interior locking — so the
//! deterministic twin ([`ShardMode::Deterministic`], one stripe) exists
//! only to keep lock behavior replayable under the chaos harness.

use std::collections::HashMap;
use std::sync::Arc;

use li_commons::metrics::{Counter, Gauge, Histo, MetricsRegistry};
use li_commons::shard::{ShardMode, ShardedLock};
use li_commons::sim::Clock;

use crate::ingest::{AckMode, GroupFrames, GroupQueue, IngestSink, ProduceReceipt};
use crate::log::{LogConfig, PartitionLog};
use crate::message::{FetchChunk, KafkaError, Message, MessageSet};

/// Index stripes per broker in [`ShardMode::Parallel`].
const INDEX_STRIPES: usize = 16;

/// Per-broker observability under `kafka.broker<id>.`: messages and bytes
/// through produce and fetch, plus one `log_end` gauge per hosted
/// topic-partition (`kafka.topic.<topic>.<partition>.log_end`).
#[derive(Debug, Clone)]
struct BrokerMetrics {
    produce_messages: Counter,
    bytes_in: Counter,
    fetch_messages: Counter,
    bytes_out: Counter,
    /// Producer frame groups committed through the group-commit path.
    produce_groups: Counter,
    /// Groups per drained batch — the group-commit amortization factor
    /// (1 = no batching happened; higher = fewer lock acquisitions).
    groups_per_commit: Histo,
}

impl BrokerMetrics {
    fn new(registry: &Arc<MetricsRegistry>, id: u16) -> Self {
        let scope = registry.scope(format!("kafka.broker{id}"));
        BrokerMetrics {
            produce_messages: scope.counter("produce.messages"),
            bytes_in: scope.counter("produce.bytes_in"),
            fetch_messages: scope.counter("fetch.messages"),
            bytes_out: scope.counter("fetch.bytes_out"),
            produce_groups: scope.counter("produce.groups"),
            groups_per_commit: scope.histogram("produce.groups_per_commit"),
        }
    }
}

/// One hosted topic-partition: its log, its group-commit append queue,
/// and the pre-resolved `log_end` gauge, so the produce hot path does a
/// single index lookup.
#[derive(Clone)]
struct PartitionEntry {
    log: Arc<PartitionLog>,
    /// The partition's group-commit queue. Survives
    /// [`Broker::reset_partition`] — the queue holds producer-side state,
    /// the reset replaces broker-side log state.
    queue: Arc<GroupQueue>,
    log_end: Gauge,
}

/// A Kafka broker: "a topic is divided into multiple partitions and each
/// broker stores one or more of those partitions" (§V.A). The broker holds
/// no consumer state whatsoever — that is the point.
pub struct Broker {
    id: u16,
    config: LogConfig,
    clock: Arc<dyn Clock>,
    logs: ShardedLock<HashMap<(String, u32), PartitionEntry>>,
    registry: Arc<MetricsRegistry>,
    metrics: BrokerMetrics,
    mode: ShardMode,
}

impl std::fmt::Debug for Broker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let hosted: usize = self.logs.lock_all().iter().map(|g| g.len()).sum();
        f.debug_struct("Broker")
            .field("id", &self.id)
            .field("partitions", &hosted)
            .finish()
    }
}

impl Broker {
    /// Creates a standalone broker reporting into a private metrics
    /// registry; cluster-managed brokers share one via
    /// [`Broker::with_metrics`].
    pub fn new(id: u16, config: LogConfig, clock: Arc<dyn Clock>) -> Self {
        Self::with_metrics(id, config, clock, &MetricsRegistry::new())
    }

    /// Creates a broker reporting under `kafka.broker<id>.` in `registry`.
    pub fn with_metrics(
        id: u16,
        config: LogConfig,
        clock: Arc<dyn Clock>,
        registry: &Arc<MetricsRegistry>,
    ) -> Self {
        Self::with_shard_mode(id, config, clock, registry, ShardMode::Parallel)
    }

    /// [`Broker::with_metrics`] with an explicit index shard mode
    /// (deterministic = one stripe, for chaos replays).
    pub fn with_shard_mode(
        id: u16,
        config: LogConfig,
        clock: Arc<dyn Clock>,
        registry: &Arc<MetricsRegistry>,
        mode: ShardMode,
    ) -> Self {
        Broker {
            id,
            config,
            clock,
            logs: ShardedLock::with_mode(mode, INDEX_STRIPES, HashMap::new),
            registry: Arc::clone(registry),
            metrics: BrokerMetrics::new(registry, id),
            mode,
        }
    }

    /// The shard mode this broker (index striping + ingest queues) runs in.
    pub fn shard_mode(&self) -> ShardMode {
        self.mode
    }

    /// Resolves a topic-partition to its entry via one stripe lock.
    fn entry(&self, topic: &str, partition: u32) -> Result<PartitionEntry, KafkaError> {
        self.logs
            .lock(&(topic, partition))
            .get(&(topic.to_string(), partition))
            .cloned()
            .ok_or_else(|| KafkaError::UnknownTopicPartition(topic.to_string(), partition))
    }

    /// This broker's id.
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Creates (idempotently) the log for a topic-partition.
    pub fn create_partition(&self, topic: &str, partition: u32) {
        let mut stripe = self.logs.lock(&(topic, partition));
        stripe
            .entry((topic.to_string(), partition))
            .or_insert_with(|| PartitionEntry {
                log: Arc::new(PartitionLog::new(self.config.clone(), self.clock.clone())),
                queue: Arc::new(GroupQueue::new(self.mode, self.config.ingest_queue_bytes)),
                log_end: self
                    .registry
                    .gauge(&format!("kafka.topic.{topic}.{partition}.log_end")),
            });
    }

    /// The log of a topic-partition.
    pub fn log(&self, topic: &str, partition: u32) -> Result<Arc<PartitionLog>, KafkaError> {
        Ok(self.entry(topic, partition)?.log)
    }

    /// Appends one (possibly wrapper) message; returns its offset.
    pub fn produce_message(
        &self,
        topic: &str,
        partition: u32,
        message: &Message,
    ) -> Result<u64, KafkaError> {
        let entry = self.entry(topic, partition)?;
        let offset = entry.log.append(message);
        self.metrics.produce_messages.inc();
        self.metrics.bytes_in.add(message.payload.len() as u64);
        entry.log_end.set(entry.log.log_end() as i64);
        Ok(offset)
    }

    /// Appends every message of a set under **one** log lock acquisition
    /// (the set is encoded into a single buffer first); returns the first
    /// offset.
    pub fn produce(
        &self,
        topic: &str,
        partition: u32,
        set: &MessageSet,
    ) -> Result<u64, KafkaError> {
        let entry = self.entry(topic, partition)?;
        let first = entry.log.append_set(set);
        self.metrics.produce_messages.add(set.messages.len() as u64);
        self.metrics.bytes_in.add(set.payload_bytes() as u64);
        entry.log_end.set(entry.log.log_end() as i64);
        Ok(first)
    }

    /// Appends an already-encoded message set (a producer wire buffer, a
    /// mirrored or replicated chunk) verbatim, without decoding it —
    /// `messages` and `payload_bytes` are the caller's accounting for the
    /// buffer. Returns the base offset.
    pub fn produce_frames(
        &self,
        topic: &str,
        partition: u32,
        frames: &[u8],
        messages: u64,
        payload_bytes: usize,
    ) -> Result<u64, KafkaError> {
        let entry = self.entry(topic, partition)?;
        let first = entry.log.append_frames(frames)?;
        self.metrics.produce_messages.add(messages);
        self.metrics.bytes_in.add(payload_bytes as u64);
        entry.log_end.set(entry.log.log_end() as i64);
        Ok(first)
    }

    /// Group-commit produce: enqueues an already-encoded frame group into
    /// the partition's append queue and drives the drainer protocol — `N`
    /// concurrent producers on one partition cost one log-lock
    /// acquisition, one flush check, and one consumer wakeup per drained
    /// *batch*, not per producer (see [`crate::ingest`]). Blocks per
    /// `ack`; a standalone broker has no followers, so
    /// [`AckMode::FullIsr`] degenerates to [`AckMode::Leader`] here (the
    /// replicated contract lives in
    /// `ReplicatedCluster::produce_with_ack`).
    pub fn produce_frames_grouped(
        &self,
        topic: &str,
        partition: u32,
        frames: Vec<u8>,
        messages: u64,
        payload_bytes: usize,
        ack: AckMode,
    ) -> Result<ProduceReceipt, KafkaError> {
        let entry = self.entry(topic, partition)?;
        let sink = BrokerSink {
            metrics: &self.metrics,
            entry: &entry,
        };
        entry
            .queue
            .produce(&sink, frames, messages, payload_bytes as u64, ack)
    }

    /// Appends a drained batch of frame groups to the hosted partition
    /// log under **one** lock acquisition, updating produce metrics — the
    /// sink primitive shared by this broker's own group-commit queue and
    /// the replicated cluster's leader append. Returns the base offset of
    /// the batch's first buffer.
    pub fn append_groups_local(
        &self,
        topic: &str,
        partition: u32,
        groups: &[GroupFrames<'_>],
    ) -> Result<u64, KafkaError> {
        let entry = self.entry(topic, partition)?;
        let sink = BrokerSink {
            metrics: &self.metrics,
            entry: &entry,
        };
        sink.append_groups(groups)
    }

    /// Drains every partition's group-commit queue (flush-on-close: makes
    /// sure no [`AckMode::None`] group is still waiting for a drainer).
    /// The log-level flush policy is separate — see [`Broker::flush_all`].
    pub fn flush_ingest(&self) {
        let entries: Vec<PartitionEntry> = self
            .logs
            .lock_all()
            .iter()
            .flat_map(|stripe| stripe.values().cloned())
            .collect();
        for entry in &entries {
            let sink = BrokerSink {
                metrics: &self.metrics,
                entry,
            };
            entry.queue.drain_with(&sink);
        }
    }

    /// Pull fetch: raw stored messages from `offset`, bounded by
    /// `max_bytes`. The consumer unwraps compression.
    ///
    /// Thin adapter over [`Broker::fetch_chunks`]; payloads of the decoded
    /// messages still alias segment memory.
    pub fn fetch(
        &self,
        topic: &str,
        partition: u32,
        offset: u64,
        max_bytes: usize,
    ) -> Result<(Vec<(u64, Message)>, u64), KafkaError> {
        let (chunks, next) = self.fetch_chunks(topic, partition, offset, max_bytes)?;
        let mut messages = Vec::new();
        for chunk in &chunks {
            for item in chunk {
                messages.push(item?);
            }
        }
        Ok((messages, next))
    }

    /// Zero-copy pull fetch: frame-aligned [`FetchChunk`] views of the
    /// partition log's own segment storage, bounded by `max_bytes`. No
    /// payload byte is copied and no lock is held while the caller decodes.
    pub fn fetch_chunks(
        &self,
        topic: &str,
        partition: u32,
        offset: u64,
        max_bytes: usize,
    ) -> Result<(Vec<FetchChunk>, u64), KafkaError> {
        let (chunks, next) = self.log(topic, partition)?.read_chunks(offset, max_bytes)?;
        for chunk in &chunks {
            self.metrics.fetch_messages.add(chunk.messages);
            self.metrics.bytes_out.add(chunk.payload_bytes() as u64);
        }
        Ok((chunks, next))
    }

    /// Replaces a partition's log with a fresh one (replication layer:
    /// resetting a divergent replica before re-replication).
    pub fn reset_partition(&self, topic: &str, partition: u32) {
        let mut stripe = self.logs.lock(&(topic, partition));
        let log = Arc::new(PartitionLog::new(self.config.clone(), self.clock.clone()));
        match stripe.get_mut(&(topic.to_string(), partition)) {
            Some(entry) => entry.log = log,
            None => {
                stripe.insert(
                    (topic.to_string(), partition),
                    PartitionEntry {
                        log,
                        queue: Arc::new(GroupQueue::new(
                            self.mode,
                            self.config.ingest_queue_bytes,
                        )),
                        log_end: self
                            .registry
                            .gauge(&format!("kafka.topic.{topic}.{partition}.log_end")),
                    },
                );
            }
        }
    }

    /// Flushes every partition (time-policy tick / shutdown): first drains
    /// the group-commit queues, then forces the log-level flush.
    pub fn flush_all(&self) {
        self.flush_ingest();
        for stripe in self.logs.lock_all() {
            for entry in stripe.values() {
                entry.log.flush();
            }
        }
    }

    /// Runs the retention SLA on every partition; returns segments deleted.
    pub fn enforce_retention(&self) -> usize {
        self.logs
            .lock_all()
            .iter()
            .flat_map(|stripe| stripe.values())
            .map(|entry| entry.log.enforce_retention())
            .sum()
    }

    /// Topic-partitions hosted here.
    pub fn partitions(&self) -> Vec<(String, u32)> {
        let mut keys: Vec<(String, u32)> = self
            .logs
            .lock_all()
            .iter()
            .flat_map(|stripe| stripe.keys().cloned())
            .collect();
        keys.sort();
        keys
    }
}

/// [`IngestSink`] over one broker-hosted partition: a drained batch lands
/// via `PartitionLog::append_frames_multi` (one lock acquisition for the
/// whole batch), then metrics and the `log_end` gauge update once.
/// `ship` keeps the no-op default — a standalone broker has no replicas.
struct BrokerSink<'a> {
    metrics: &'a BrokerMetrics,
    entry: &'a PartitionEntry,
}

impl IngestSink for BrokerSink<'_> {
    fn append_groups(&self, groups: &[GroupFrames<'_>]) -> Result<u64, KafkaError> {
        let buffers: Vec<&[u8]> = groups.iter().map(|g| g.frames).collect();
        let base = self.entry.log.append_frames_multi(&buffers)?;
        let (mut messages, mut payload_bytes) = (0u64, 0u64);
        for group in groups {
            messages += group.messages;
            payload_bytes += group.payload_bytes;
        }
        self.metrics.produce_messages.add(messages);
        self.metrics.bytes_in.add(payload_bytes);
        self.metrics.produce_groups.add(groups.len() as u64);
        self.metrics.groups_per_commit.record(groups.len() as u64);
        self.entry.log_end.set(self.entry.log.log_end() as i64);
        Ok(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use li_commons::sim::SimClock;

    fn broker() -> Broker {
        Broker::new(0, LogConfig::default(), Arc::new(SimClock::new()))
    }

    #[test]
    fn produce_fetch_cycle() {
        let b = broker();
        b.create_partition("events", 0);
        let set = MessageSet::from_payloads(["a", "b", "c"]);
        let first = b.produce("events", 0, &set).unwrap();
        assert_eq!(first, 0);
        let (messages, next) = b.fetch("events", 0, 0, usize::MAX).unwrap();
        assert_eq!(messages.len(), 3);
        assert!(next > 0);
    }

    #[test]
    fn unknown_partition_rejected() {
        let b = broker();
        assert!(matches!(
            b.fetch("nope", 0, 0, 100),
            Err(KafkaError::UnknownTopicPartition(_, 0))
        ));
        assert!(b
            .produce("nope", 0, &MessageSet::from_payloads(["x"]))
            .is_err());
    }

    #[test]
    fn create_partition_idempotent() {
        let b = broker();
        b.create_partition("t", 0);
        b.produce("t", 0, &MessageSet::from_payloads(["x"])).unwrap();
        b.create_partition("t", 0); // must not wipe the log
        let (messages, _) = b.fetch("t", 0, 0, usize::MAX).unwrap();
        assert_eq!(messages.len(), 1);
    }

    #[test]
    fn partitions_are_independent_logs() {
        let b = broker();
        b.create_partition("t", 0);
        b.create_partition("t", 1);
        b.produce("t", 0, &MessageSet::from_payloads(["only in 0"])).unwrap();
        assert_eq!(b.fetch("t", 0, 0, usize::MAX).unwrap().0.len(), 1);
        assert!(b.fetch("t", 1, 0, usize::MAX).unwrap().0.is_empty());
    }

    #[test]
    fn grouped_produce_matches_legacy_bytes_and_counts_groups() {
        let legacy = broker();
        let grouped = broker();
        for b in [&legacy, &grouped] {
            b.create_partition("t", 0);
        }
        for i in 0..10 {
            let set = MessageSet::from_payloads([format!("m-{i}")]);
            let frames = set.encode();
            let payload = set.payload_bytes();
            let offset = legacy
                .produce_frames("t", 0, &frames, 1, payload)
                .unwrap();
            let receipt = grouped
                .produce_frames_grouped("t", 0, frames, 1, payload, AckMode::Leader)
                .unwrap();
            assert_eq!(receipt.base_offset, Some(offset));
        }
        let (a, b) = (legacy.log("t", 0).unwrap(), grouped.log("t", 0).unwrap());
        assert_eq!(a.log_end(), b.log_end());
        assert_eq!(a.content_fingerprint(), b.content_fingerprint());
    }

    #[test]
    fn grouped_produce_none_ack_lands_after_flush_ingest() {
        let b = broker();
        b.create_partition("t", 0);
        let set = MessageSet::from_payloads(["fire"]);
        let receipt = b
            .produce_frames_grouped("t", 0, set.encode(), 1, set.payload_bytes(), AckMode::None)
            .unwrap();
        assert_eq!(receipt.base_offset, None);
        b.flush_ingest();
        assert_eq!(b.fetch("t", 0, 0, usize::MAX).unwrap().0.len(), 1);
    }

    #[test]
    fn full_isr_on_standalone_broker_degenerates_to_leader() {
        let b = broker();
        b.create_partition("t", 0);
        let set = MessageSet::from_payloads(["x"]);
        let receipt = b
            .produce_frames_grouped("t", 0, set.encode(), 1, set.payload_bytes(), AckMode::FullIsr)
            .unwrap();
        assert_eq!(receipt.base_offset, Some(0));
    }

    #[test]
    fn index_lookup_does_not_cross_stripes() {
        // Holding one partition's index stripe must not block produce on a
        // partition in a different stripe.
        let b = Arc::new(broker());
        b.create_partition("t", 0);
        let other = (1..1000u32)
            .find(|p| b.logs.stripe_of(&("t", *p)) != b.logs.stripe_of(&("t", 0u32)))
            .expect("a partition in another stripe");
        b.create_partition("t", other);
        let guard = b.logs.lock(&("t", 0u32));
        let b2 = b.clone();
        let h = std::thread::spawn(move || {
            b2.produce("t", other, &MessageSet::from_payloads(["x"]))
                .unwrap()
        });
        assert_eq!(h.join().unwrap(), 0);
        drop(guard);
    }
}
