//! The broker: a set of partition logs.
//!
//! The partition index is hash-striped (PR 7): produce and fetch resolve a
//! topic-partition through one short stripe lock instead of a broker-wide
//! map lock, so partitions hosted on the same broker never contend on the
//! index. The striping is semantics-free — the index is read-mostly and
//! each [`PartitionLog`] has its own interior locking — so the
//! deterministic twin ([`ShardMode::Deterministic`], one stripe) exists
//! only to keep lock behavior replayable under the chaos harness.

use std::collections::HashMap;
use std::sync::Arc;

use li_commons::metrics::{Counter, Gauge, MetricsRegistry};
use li_commons::shard::{ShardMode, ShardedLock};
use li_commons::sim::Clock;

use crate::log::{LogConfig, PartitionLog};
use crate::message::{FetchChunk, KafkaError, Message, MessageSet};

/// Index stripes per broker in [`ShardMode::Parallel`].
const INDEX_STRIPES: usize = 16;

/// Per-broker observability under `kafka.broker<id>.`: messages and bytes
/// through produce and fetch, plus one `log_end` gauge per hosted
/// topic-partition (`kafka.topic.<topic>.<partition>.log_end`).
#[derive(Debug, Clone)]
struct BrokerMetrics {
    produce_messages: Counter,
    bytes_in: Counter,
    fetch_messages: Counter,
    bytes_out: Counter,
}

impl BrokerMetrics {
    fn new(registry: &Arc<MetricsRegistry>, id: u16) -> Self {
        let scope = registry.scope(format!("kafka.broker{id}"));
        BrokerMetrics {
            produce_messages: scope.counter("produce.messages"),
            bytes_in: scope.counter("produce.bytes_in"),
            fetch_messages: scope.counter("fetch.messages"),
            bytes_out: scope.counter("fetch.bytes_out"),
        }
    }
}

/// One hosted topic-partition: its log plus the pre-resolved `log_end`
/// gauge, so the produce hot path does a single index lookup.
#[derive(Clone)]
struct PartitionEntry {
    log: Arc<PartitionLog>,
    log_end: Gauge,
}

/// A Kafka broker: "a topic is divided into multiple partitions and each
/// broker stores one or more of those partitions" (§V.A). The broker holds
/// no consumer state whatsoever — that is the point.
pub struct Broker {
    id: u16,
    config: LogConfig,
    clock: Arc<dyn Clock>,
    logs: ShardedLock<HashMap<(String, u32), PartitionEntry>>,
    registry: Arc<MetricsRegistry>,
    metrics: BrokerMetrics,
}

impl std::fmt::Debug for Broker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let hosted: usize = self.logs.lock_all().iter().map(|g| g.len()).sum();
        f.debug_struct("Broker")
            .field("id", &self.id)
            .field("partitions", &hosted)
            .finish()
    }
}

impl Broker {
    /// Creates a standalone broker reporting into a private metrics
    /// registry; cluster-managed brokers share one via
    /// [`Broker::with_metrics`].
    pub fn new(id: u16, config: LogConfig, clock: Arc<dyn Clock>) -> Self {
        Self::with_metrics(id, config, clock, &MetricsRegistry::new())
    }

    /// Creates a broker reporting under `kafka.broker<id>.` in `registry`.
    pub fn with_metrics(
        id: u16,
        config: LogConfig,
        clock: Arc<dyn Clock>,
        registry: &Arc<MetricsRegistry>,
    ) -> Self {
        Self::with_shard_mode(id, config, clock, registry, ShardMode::Parallel)
    }

    /// [`Broker::with_metrics`] with an explicit index shard mode
    /// (deterministic = one stripe, for chaos replays).
    pub fn with_shard_mode(
        id: u16,
        config: LogConfig,
        clock: Arc<dyn Clock>,
        registry: &Arc<MetricsRegistry>,
        mode: ShardMode,
    ) -> Self {
        Broker {
            id,
            config,
            clock,
            logs: ShardedLock::with_mode(mode, INDEX_STRIPES, HashMap::new),
            registry: Arc::clone(registry),
            metrics: BrokerMetrics::new(registry, id),
        }
    }

    /// Resolves a topic-partition to its entry via one stripe lock.
    fn entry(&self, topic: &str, partition: u32) -> Result<PartitionEntry, KafkaError> {
        self.logs
            .lock(&(topic, partition))
            .get(&(topic.to_string(), partition))
            .cloned()
            .ok_or_else(|| KafkaError::UnknownTopicPartition(topic.to_string(), partition))
    }

    /// This broker's id.
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Creates (idempotently) the log for a topic-partition.
    pub fn create_partition(&self, topic: &str, partition: u32) {
        let mut stripe = self.logs.lock(&(topic, partition));
        stripe
            .entry((topic.to_string(), partition))
            .or_insert_with(|| PartitionEntry {
                log: Arc::new(PartitionLog::new(self.config.clone(), self.clock.clone())),
                log_end: self
                    .registry
                    .gauge(&format!("kafka.topic.{topic}.{partition}.log_end")),
            });
    }

    /// The log of a topic-partition.
    pub fn log(&self, topic: &str, partition: u32) -> Result<Arc<PartitionLog>, KafkaError> {
        Ok(self.entry(topic, partition)?.log)
    }

    /// Appends one (possibly wrapper) message; returns its offset.
    pub fn produce_message(
        &self,
        topic: &str,
        partition: u32,
        message: &Message,
    ) -> Result<u64, KafkaError> {
        let entry = self.entry(topic, partition)?;
        let offset = entry.log.append(message);
        self.metrics.produce_messages.inc();
        self.metrics.bytes_in.add(message.payload.len() as u64);
        entry.log_end.set(entry.log.log_end() as i64);
        Ok(offset)
    }

    /// Appends every message of a set under **one** log lock acquisition
    /// (the set is encoded into a single buffer first); returns the first
    /// offset.
    pub fn produce(
        &self,
        topic: &str,
        partition: u32,
        set: &MessageSet,
    ) -> Result<u64, KafkaError> {
        let entry = self.entry(topic, partition)?;
        let first = entry.log.append_set(set);
        self.metrics.produce_messages.add(set.messages.len() as u64);
        self.metrics.bytes_in.add(set.payload_bytes() as u64);
        entry.log_end.set(entry.log.log_end() as i64);
        Ok(first)
    }

    /// Appends an already-encoded message set (a producer wire buffer, a
    /// mirrored or replicated chunk) verbatim, without decoding it —
    /// `messages` and `payload_bytes` are the caller's accounting for the
    /// buffer. Returns the base offset.
    pub fn produce_frames(
        &self,
        topic: &str,
        partition: u32,
        frames: &[u8],
        messages: u64,
        payload_bytes: usize,
    ) -> Result<u64, KafkaError> {
        let entry = self.entry(topic, partition)?;
        let first = entry.log.append_frames(frames)?;
        self.metrics.produce_messages.add(messages);
        self.metrics.bytes_in.add(payload_bytes as u64);
        entry.log_end.set(entry.log.log_end() as i64);
        Ok(first)
    }

    /// Pull fetch: raw stored messages from `offset`, bounded by
    /// `max_bytes`. The consumer unwraps compression.
    ///
    /// Thin adapter over [`Broker::fetch_chunks`]; payloads of the decoded
    /// messages still alias segment memory.
    pub fn fetch(
        &self,
        topic: &str,
        partition: u32,
        offset: u64,
        max_bytes: usize,
    ) -> Result<(Vec<(u64, Message)>, u64), KafkaError> {
        let (chunks, next) = self.fetch_chunks(topic, partition, offset, max_bytes)?;
        let mut messages = Vec::new();
        for chunk in &chunks {
            for item in chunk {
                messages.push(item?);
            }
        }
        Ok((messages, next))
    }

    /// Zero-copy pull fetch: frame-aligned [`FetchChunk`] views of the
    /// partition log's own segment storage, bounded by `max_bytes`. No
    /// payload byte is copied and no lock is held while the caller decodes.
    pub fn fetch_chunks(
        &self,
        topic: &str,
        partition: u32,
        offset: u64,
        max_bytes: usize,
    ) -> Result<(Vec<FetchChunk>, u64), KafkaError> {
        let (chunks, next) = self.log(topic, partition)?.read_chunks(offset, max_bytes)?;
        for chunk in &chunks {
            self.metrics.fetch_messages.add(chunk.messages);
            self.metrics.bytes_out.add(chunk.payload_bytes() as u64);
        }
        Ok((chunks, next))
    }

    /// Replaces a partition's log with a fresh one (replication layer:
    /// resetting a divergent replica before re-replication).
    pub fn reset_partition(&self, topic: &str, partition: u32) {
        let mut stripe = self.logs.lock(&(topic, partition));
        let log = Arc::new(PartitionLog::new(self.config.clone(), self.clock.clone()));
        match stripe.get_mut(&(topic.to_string(), partition)) {
            Some(entry) => entry.log = log,
            None => {
                stripe.insert(
                    (topic.to_string(), partition),
                    PartitionEntry {
                        log,
                        log_end: self
                            .registry
                            .gauge(&format!("kafka.topic.{topic}.{partition}.log_end")),
                    },
                );
            }
        }
    }

    /// Flushes every partition (time-policy tick / shutdown).
    pub fn flush_all(&self) {
        for stripe in self.logs.lock_all() {
            for entry in stripe.values() {
                entry.log.flush();
            }
        }
    }

    /// Runs the retention SLA on every partition; returns segments deleted.
    pub fn enforce_retention(&self) -> usize {
        self.logs
            .lock_all()
            .iter()
            .flat_map(|stripe| stripe.values())
            .map(|entry| entry.log.enforce_retention())
            .sum()
    }

    /// Topic-partitions hosted here.
    pub fn partitions(&self) -> Vec<(String, u32)> {
        let mut keys: Vec<(String, u32)> = self
            .logs
            .lock_all()
            .iter()
            .flat_map(|stripe| stripe.keys().cloned())
            .collect();
        keys.sort();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use li_commons::sim::SimClock;

    fn broker() -> Broker {
        Broker::new(0, LogConfig::default(), Arc::new(SimClock::new()))
    }

    #[test]
    fn produce_fetch_cycle() {
        let b = broker();
        b.create_partition("events", 0);
        let set = MessageSet::from_payloads(["a", "b", "c"]);
        let first = b.produce("events", 0, &set).unwrap();
        assert_eq!(first, 0);
        let (messages, next) = b.fetch("events", 0, 0, usize::MAX).unwrap();
        assert_eq!(messages.len(), 3);
        assert!(next > 0);
    }

    #[test]
    fn unknown_partition_rejected() {
        let b = broker();
        assert!(matches!(
            b.fetch("nope", 0, 0, 100),
            Err(KafkaError::UnknownTopicPartition(_, 0))
        ));
        assert!(b
            .produce("nope", 0, &MessageSet::from_payloads(["x"]))
            .is_err());
    }

    #[test]
    fn create_partition_idempotent() {
        let b = broker();
        b.create_partition("t", 0);
        b.produce("t", 0, &MessageSet::from_payloads(["x"])).unwrap();
        b.create_partition("t", 0); // must not wipe the log
        let (messages, _) = b.fetch("t", 0, 0, usize::MAX).unwrap();
        assert_eq!(messages.len(), 1);
    }

    #[test]
    fn partitions_are_independent_logs() {
        let b = broker();
        b.create_partition("t", 0);
        b.create_partition("t", 1);
        b.produce("t", 0, &MessageSet::from_payloads(["only in 0"])).unwrap();
        assert_eq!(b.fetch("t", 0, 0, usize::MAX).unwrap().0.len(), 1);
        assert!(b.fetch("t", 1, 0, usize::MAX).unwrap().0.is_empty());
    }

    #[test]
    fn index_lookup_does_not_cross_stripes() {
        // Holding one partition's index stripe must not block produce on a
        // partition in a different stripe.
        let b = Arc::new(broker());
        b.create_partition("t", 0);
        let other = (1..1000u32)
            .find(|p| b.logs.stripe_of(&("t", *p)) != b.logs.stripe_of(&("t", 0u32)))
            .expect("a partition in another stripe");
        b.create_partition("t", other);
        let guard = b.logs.lock(&("t", 0u32));
        let b2 = b.clone();
        let h = std::thread::spawn(move || {
            b2.produce("t", other, &MessageSet::from_payloads(["x"]))
                .unwrap()
        });
        assert_eq!(h.join().unwrap(), 0);
        drop(guard);
    }
}
