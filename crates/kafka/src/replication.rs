//! Intra-cluster replication — the paper's stated future work, built out.
//!
//! §V.D closes with: "One of the most important features that we plan to
//! add in the future is intra-cluster replication." This module implements
//! it the way Kafka 0.8 eventually did, reusing this crate's logs:
//!
//! * each partition has a **leader** broker and follower brokers;
//! * producers write to the leader; **followers pull** from the leader's
//!   log, byte-for-byte, so logical offsets are identical on every replica;
//! * the **high watermark** is the offset up to which every in-sync
//!   replica has the data — consumers only ever see committed messages;
//! * the cluster tracks each partition's **ISR** (in-sync replica set):
//!   a replica is dropped from it when it crashes and re-admitted only
//!   once it has caught back up to the leader's visible end;
//! * on leader failure, the live **ISR** follower with the longest log is
//!   elected leader (it is a superset of every committed message) — an
//!   out-of-sync replica is never elected (no unclean leader election),
//!   so a partition with no eligible replica goes offline until one
//!   returns, and `AckMode::FullIsr` acknowledgements survive any crash
//!   sequence the single-failure budget allows;
//! * a recovered broker whose log diverged (it led writes that were never
//!   committed) is reset and re-replicated from the new leader.

use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use li_commons::shard::ShardedLock;

use crate::cluster::KafkaCluster;
use crate::ingest::{AckMode, GroupFrames, GroupQueue, IngestSink, ProduceReceipt};
use crate::message::{KafkaError, Message, MessageSet};

/// Ingest-queue index stripes in `ShardMode::Parallel` (mirrors the
/// broker's partition-index striping).
const QUEUE_STRIPES: usize = 16;

#[derive(Debug, Clone)]
struct PartitionReplicas {
    leader: u16,
    followers: Vec<u16>,
}

/// A replication layer over a [`KafkaCluster`]'s brokers.
pub struct ReplicatedCluster {
    cluster: Arc<KafkaCluster>,
    assignments: RwLock<HashMap<(String, u32), PartitionReplicas>>,
    down: RwLock<HashSet<u16>>,
    /// Per-partition in-sync replica set. A broker leaves on crash and
    /// rejoins only after catching up to the leader's visible end; leader
    /// elections are restricted to this set.
    isr: RwLock<HashMap<(String, u32), HashSet<u16>>>,
    /// Cluster-level group-commit queues, one per replicated partition.
    /// They live here rather than on a broker because the queue must
    /// survive a leader failover: producers keep enqueueing against the
    /// partition while the sink resolves whoever currently leads it.
    queues: ShardedLock<HashMap<(String, u32), Arc<GroupQueue>>>,
}

impl ReplicatedCluster {
    /// Wraps a cluster. The ingest queues inherit the cluster's shard
    /// mode, so a `ShardMode::Deterministic` cluster gets fully
    /// serialized, one-group-per-append produce sequencing here too.
    pub fn new(cluster: Arc<KafkaCluster>) -> Self {
        let mode = cluster.shard_mode();
        ReplicatedCluster {
            cluster,
            assignments: RwLock::new(HashMap::new()),
            down: RwLock::new(HashSet::new()),
            isr: RwLock::new(HashMap::new()),
            queues: ShardedLock::with_mode(mode, QUEUE_STRIPES, HashMap::new),
        }
    }

    /// Creates a replicated topic: partition `p`'s replicas are brokers
    /// `p, p+1, .. p+replication-1 (mod broker count)`, first is leader.
    pub fn create_topic(
        &self,
        topic: &str,
        partitions: u32,
        replication: usize,
    ) -> Result<(), KafkaError> {
        let brokers = self.cluster.brokers();
        if replication == 0 || replication > brokers.len() {
            return Err(KafkaError::Group(format!(
                "replication {replication} invalid for {} brokers",
                brokers.len()
            )));
        }
        let mut assignments = self.assignments.write();
        for p in 0..partitions {
            let replicas: Vec<u16> = (0..replication)
                .map(|r| ((p as usize + r) % brokers.len()) as u16)
                .collect();
            for &b in &replicas {
                brokers[b as usize].create_partition(topic, p);
            }
            assignments.insert(
                (topic.to_string(), p),
                PartitionReplicas {
                    leader: replicas[0],
                    followers: replicas[1..].to_vec(),
                },
            );
            // All replicas start empty, hence in sync.
            self.isr
                .write()
                .insert((topic.to_string(), p), replicas.iter().copied().collect());
            self.queues.lock(&(topic, p)).insert(
                (topic.to_string(), p),
                Arc::new(GroupQueue::new(
                    self.cluster.shard_mode(),
                    self.cluster.log_config().ingest_queue_bytes,
                )),
            );
        }
        Ok(())
    }

    fn queue(&self, topic: &str, partition: u32) -> Result<Arc<GroupQueue>, KafkaError> {
        self.queues
            .lock(&(topic, partition))
            .get(&(topic.to_string(), partition))
            .cloned()
            .ok_or_else(|| KafkaError::UnknownTopicPartition(topic.to_string(), partition))
    }

    fn assignment(&self, topic: &str, partition: u32) -> Result<PartitionReplicas, KafkaError> {
        self.assignments
            .read()
            .get(&(topic.to_string(), partition))
            .cloned()
            .ok_or_else(|| KafkaError::UnknownTopicPartition(topic.to_string(), partition))
    }

    /// The current leader broker id of a partition.
    pub fn leader_of(&self, topic: &str, partition: u32) -> Result<u16, KafkaError> {
        Ok(self.assignment(topic, partition)?.leader)
    }

    /// The partition's current in-sync replica set, sorted. Crashed
    /// brokers leave it immediately; recovered brokers rejoin only after
    /// catching up to the leader's visible end.
    pub fn isr_of(&self, topic: &str, partition: u32) -> Result<Vec<u16>, KafkaError> {
        let isr = self
            .isr
            .read()
            .get(&(topic.to_string(), partition))
            .cloned()
            .ok_or_else(|| KafkaError::UnknownTopicPartition(topic.to_string(), partition))?;
        let mut isr: Vec<u16> = isr.into_iter().collect();
        isr.sort_unstable();
        Ok(isr)
    }

    /// Produces to the partition's leader. Fails when the leader is down
    /// (the client should refresh metadata after a failover).
    pub fn produce(
        &self,
        topic: &str,
        partition: u32,
        set: &MessageSet,
    ) -> Result<u64, KafkaError> {
        let assignment = self.assignment(topic, partition)?;
        if self.down.read().contains(&assignment.leader) {
            return Err(KafkaError::Group(format!(
                "leader {} down for {topic}/{partition}",
                assignment.leader
            )));
        }
        self.cluster.brokers()[assignment.leader as usize].produce(topic, partition, set)
    }

    /// Group-commit produce with an explicit durability contract. The set
    /// is encoded once, outside every lock, then enqueued into the
    /// partition's cluster-level [`GroupQueue`]: concurrent producers
    /// share one leader-log lock acquisition and (for
    /// [`AckMode::FullIsr`]) one replication ship per drained batch.
    ///
    /// * [`AckMode::None`] — returns without waiting; no offset.
    /// * [`AckMode::Leader`] — returns after the leader's local append,
    ///   exactly the [`ReplicatedCluster::produce`] contract.
    /// * [`AckMode::FullIsr`] — returns only after every live replica
    ///   holds the bytes; the message is committed (at or below the high
    ///   watermark) the moment the call returns, with no
    ///   [`ReplicatedCluster::replicate`] pump needed.
    pub fn produce_with_ack(
        &self,
        topic: &str,
        partition: u32,
        set: &MessageSet,
        ack: AckMode,
    ) -> Result<ProduceReceipt, KafkaError> {
        let frames = set.encode();
        let queue = self.queue(topic, partition)?;
        let sink = ReplicaSink {
            rc: self,
            topic,
            partition,
        };
        queue.produce(
            &sink,
            frames,
            set.messages.len() as u64,
            set.payload_bytes() as u64,
            ack,
        )
    }

    /// Drains every partition's group-commit queue (flush-on-close for
    /// [`AckMode::None`] producers; the chaos harness calls this at
    /// quiesce).
    pub fn flush_ingest(&self) {
        let queues: Vec<((String, u32), Arc<GroupQueue>)> = self
            .queues
            .lock_all()
            .iter()
            .flat_map(|stripe| stripe.iter().map(|(k, q)| (k.clone(), q.clone())))
            .collect();
        for ((topic, partition), queue) in &queues {
            let sink = ReplicaSink {
                rc: self,
                topic,
                partition: *partition,
            };
            queue.drain_with(&sink);
        }
    }

    /// One replication pump: every live follower pulls the bytes it is
    /// missing from its leader's log. Returns messages copied.
    pub fn replicate(&self) -> Result<usize, KafkaError> {
        let assignments: Vec<((String, u32), PartitionReplicas)> = self
            .assignments
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let down = self.down.read().clone();
        let mut copied = 0;
        for ((topic, partition), replicas) in assignments {
            if down.contains(&replicas.leader) {
                continue;
            }
            copied += self.catch_up(&topic, partition, &replicas, &down)?;
        }
        Ok(copied)
    }

    /// Pulls every live follower of one partition up to its leader's
    /// visible end — the per-partition body of
    /// [`ReplicatedCluster::replicate`], also invoked by the FullIsr ship.
    /// Returns messages copied.
    fn catch_up(
        &self,
        topic: &str,
        partition: u32,
        replicas: &PartitionReplicas,
        down: &HashSet<u16>,
    ) -> Result<usize, KafkaError> {
        let brokers = self.cluster.brokers();
        let leader_log = brokers[replicas.leader as usize].log(topic, partition)?;
        let target = leader_log.visible_end();
        let mut copied = 0;
        let mut synced: Vec<u16> = vec![replicas.leader];
        for &f in &replicas.followers {
            if down.contains(&f) {
                continue;
            }
            let mut follower_log = brokers[f as usize].log(topic, partition)?;
            let mut from = follower_log.log_end();
            if from > leader_log.log_end() {
                // Divergent follower (was a leader with an uncommitted
                // tail): reset and re-replicate from scratch.
                brokers[f as usize].reset_partition(topic, partition);
                follower_log = brokers[f as usize].log(topic, partition)?;
                from = 0;
            }
            // Pull the leader's stored bytes verbatim: appending the
            // frame-aligned chunks untouched keeps logical offsets
            // identical on every replica without decoding a single
            // message.
            let (chunks, _) = leader_log.read_chunks(from, usize::MAX)?;
            for chunk in &chunks {
                follower_log.append_frames(&chunk.data)?;
                copied += chunk.messages as usize;
            }
            if follower_log.log_end() >= target {
                synced.push(f);
            }
        }
        // Replicas that reached the leader's visible end (re)join the ISR
        // — the only gate through which a recovered broker becomes
        // electable again.
        if let Some(isr) = self.isr.write().get_mut(&(topic.to_string(), partition)) {
            isr.extend(synced);
        }
        Ok(copied)
    }

    /// The FullIsr ship: flushes the partition's current leader log (every
    /// appended byte becomes pull-visible) and catches every live follower
    /// up to it. The in-sync replica set is "live replicas right now" —
    /// with the chaos harness's single-failure budget and replication
    /// factor 3 that always leaves a surviving copy for failover.
    fn ship_partition(&self, topic: &str, partition: u32) -> Result<(), KafkaError> {
        let assignment = self.assignment(topic, partition)?;
        let down = self.down.read().clone();
        if down.contains(&assignment.leader) {
            return Err(KafkaError::Group(format!(
                "leader {} down for {topic}/{partition}",
                assignment.leader
            )));
        }
        self.cluster.brokers()[assignment.leader as usize]
            .log(topic, partition)?
            .flush();
        self.catch_up(topic, partition, &assignment, &down)?;
        Ok(())
    }

    /// The high watermark: the largest offset replicated to *every* live
    /// replica. Messages past it are not yet committed.
    pub fn high_watermark(&self, topic: &str, partition: u32) -> Result<u64, KafkaError> {
        let assignment = self.assignment(topic, partition)?;
        let down = self.down.read();
        let brokers = self.cluster.brokers();
        let mut hw = u64::MAX;
        let mut any = false;
        for &b in std::iter::once(&assignment.leader).chain(&assignment.followers) {
            if down.contains(&b) {
                continue;
            }
            hw = hw.min(brokers[b as usize].log(topic, partition)?.visible_end());
            any = true;
        }
        Ok(if any { hw } else { 0 })
    }

    /// Committed-only fetch: reads from the leader, truncated at the high
    /// watermark — a consumer can never observe a message that a leader
    /// failover could lose.
    pub fn fetch_committed(
        &self,
        topic: &str,
        partition: u32,
        offset: u64,
        max_bytes: usize,
    ) -> Result<(Vec<(u64, Message)>, u64), KafkaError> {
        let assignment = self.assignment(topic, partition)?;
        if self.down.read().contains(&assignment.leader) {
            return Err(KafkaError::Group(format!(
                "leader {} down for {topic}/{partition}",
                assignment.leader
            )));
        }
        let hw = self.high_watermark(topic, partition)?;
        let leader_log = self.cluster.brokers()[assignment.leader as usize].log(topic, partition)?;
        let (messages, next) = leader_log.read(offset.min(hw), max_bytes)?;
        let committed: Vec<(u64, Message)> =
            messages.into_iter().take_while(|(o, _)| *o < hw).collect();
        let next = next.min(hw).max(
            committed
                .last()
                .map(|(o, m)| o + m.framed_len() as u64)
                .unwrap_or(offset.min(hw)),
        );
        Ok((committed, next))
    }

    /// Fails a broker: it leaves every partition's ISR, and partitions it
    /// led elect the live **in-sync** replica with the longest log as new
    /// leader. A stale (restarted, not yet caught-up) replica is never
    /// elected — no unclean leader election — so a partition with no
    /// eligible replica goes offline until one returns, preserving every
    /// `FullIsr`-acknowledged byte.
    pub fn fail_broker(&self, broker: u16) -> Result<Vec<(String, u32, u16)>, KafkaError> {
        self.down.write().insert(broker);
        let brokers = self.cluster.brokers();
        let down = self.down.read().clone();
        let mut elections = Vec::new();
        let mut assignments = self.assignments.write();
        let mut isr_map = self.isr.write();
        for ((topic, partition), replicas) in assignments.iter_mut() {
            let key = (topic.clone(), *partition);
            let isr = isr_map.entry(key).or_default();
            isr.remove(&broker);
            if replicas.leader != broker {
                continue;
            }
            // Longest-log election among live ISR members.
            let candidate = replicas
                .followers
                .iter()
                .filter(|b| !down.contains(b) && isr.contains(b))
                .max_by_key(|&&b| {
                    brokers[b as usize]
                        .log(topic, *partition)
                        .map(|l| l.log_end())
                        .unwrap_or(0)
                })
                .copied();
            let Some(new_leader) = candidate else {
                continue; // partition offline until an ISR replica returns
            };
            replicas.followers.retain(|&b| b != new_leader);
            replicas.followers.push(replicas.leader);
            replicas.leader = new_leader;
            elections.push((topic.clone(), *partition, new_leader));
        }
        Ok(elections)
    }

    /// Brings a broker back; it rejoins as a follower everywhere. Any
    /// partition whose local log has diverged from the current leader is
    /// reset here so the next [`ReplicatedCluster::replicate`] recopies
    /// it from scratch. Divergence is detected by byte-prefix
    /// fingerprint, not length: a crashed leader can rejoin with an
    /// uncommitted tail its successor overwrote with different records
    /// of the *same* framed length, which a length-only check (and the
    /// high watermark, which counts this replica again the moment it is
    /// live) would silently accept.
    pub fn recover_broker(&self, broker: u16) {
        self.down.write().remove(&broker);
        let down = self.down.read().clone();
        let brokers = self.cluster.brokers();
        for ((topic, partition), replicas) in self.assignments.read().iter() {
            if replicas.leader == broker
                || down.contains(&replicas.leader)
                || !replicas.followers.contains(&broker)
            {
                continue;
            }
            let Ok(local) = brokers[broker as usize].log(topic, *partition) else {
                continue;
            };
            let end = local.log_end();
            if end == 0 {
                continue;
            }
            let Ok(leader_log) = brokers[replicas.leader as usize].log(topic, *partition) else {
                continue;
            };
            let overlap = end.min(leader_log.log_end());
            if end > leader_log.log_end()
                || local.prefix_fingerprint(overlap) != leader_log.prefix_fingerprint(overlap)
            {
                brokers[broker as usize].reset_partition(topic, *partition);
            }
        }
    }

    /// Chaos invariant checker: every *live* replica of the partition
    /// holds a byte-identical log (same end offset, same content
    /// fingerprint). Call after pumping [`ReplicatedCluster::replicate`]
    /// to convergence.
    pub fn verify_replica_identity(&self, topic: &str, partition: u32) -> Result<(), String> {
        let assignment = self
            .assignment(topic, partition)
            .map_err(|e| e.to_string())?;
        let down = self.down.read().clone();
        let brokers = self.cluster.brokers();
        let leader_log = brokers[assignment.leader as usize]
            .log(topic, partition)
            .map_err(|e| e.to_string())?;
        let (want_end, want_print) = (leader_log.log_end(), leader_log.content_fingerprint());
        for &b in &assignment.followers {
            if down.contains(&b) {
                continue;
            }
            let log = brokers[b as usize]
                .log(topic, partition)
                .map_err(|e| e.to_string())?;
            if log.log_end() != want_end || log.content_fingerprint() != want_print {
                return Err(format!(
                    "replica {b} of {topic}/{partition} diverges from leader {}: \
                     end {} vs {want_end}, fingerprint {:#x} vs {want_print:#x}",
                    assignment.leader,
                    log.log_end(),
                    log.content_fingerprint()
                ));
            }
        }
        Ok(())
    }
}

/// [`IngestSink`] over one replicated partition: a drained batch appends
/// to whoever *currently* leads the partition (one lock acquisition via
/// the leader broker's group append), and a FullIsr ship pushes the
/// leader's bytes to every live follower once per batch. A downed leader
/// fails the whole batch — every waiting producer sees the error, exactly
/// like the legacy [`ReplicatedCluster::produce`].
struct ReplicaSink<'a> {
    rc: &'a ReplicatedCluster,
    topic: &'a str,
    partition: u32,
}

impl IngestSink for ReplicaSink<'_> {
    fn append_groups(&self, groups: &[GroupFrames<'_>]) -> Result<u64, KafkaError> {
        let assignment = self.rc.assignment(self.topic, self.partition)?;
        if self.rc.down.read().contains(&assignment.leader) {
            return Err(KafkaError::Group(format!(
                "leader {} down for {}/{}",
                assignment.leader, self.topic, self.partition
            )));
        }
        self.rc.cluster.brokers()[assignment.leader as usize].append_groups_local(
            self.topic,
            self.partition,
            groups,
        )
    }

    fn ship(&self) -> Result<(), KafkaError> {
        self.rc.ship_partition(self.topic, self.partition)
    }
}

/// Chaos-scheduler hooks: a crash fails the broker (triggering
/// longest-log leader elections), a restart recovers it as a follower.
impl li_commons::chaos::FaultHooks for ReplicatedCluster {
    fn crash(&self, node: li_commons::ring::NodeId) {
        let _ = self.fail_broker(node.0);
    }

    fn restart(&self, node: li_commons::ring::NodeId) {
        self.recover_broker(node.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogConfig;
    use li_commons::sim::SimClock;

    fn replicated() -> (Arc<KafkaCluster>, ReplicatedCluster) {
        let cluster =
            KafkaCluster::with_parts(3, LogConfig::default(), Arc::new(SimClock::new())).unwrap();
        let replicated = ReplicatedCluster::new(cluster.clone());
        replicated.create_topic("t", 1, 3).unwrap();
        (cluster, replicated)
    }

    fn payloads(rc: &ReplicatedCluster, from: u64) -> Vec<String> {
        let (messages, _) = rc.fetch_committed("t", 0, from, usize::MAX).unwrap();
        messages
            .iter()
            .map(|(_, m)| String::from_utf8_lossy(&m.payload).into_owned())
            .collect()
    }

    #[test]
    fn uncommitted_messages_invisible_until_replicated() {
        let (_c, rc) = replicated();
        rc.produce("t", 0, &MessageSet::from_payloads(["a", "b"])).unwrap();
        assert_eq!(rc.high_watermark("t", 0).unwrap(), 0, "followers empty");
        assert!(payloads(&rc, 0).is_empty(), "nothing committed yet");
        rc.replicate().unwrap();
        assert!(rc.high_watermark("t", 0).unwrap() > 0);
        assert_eq!(payloads(&rc, 0), vec!["a", "b"]);
    }

    #[test]
    fn leader_failover_keeps_all_committed_messages() {
        let (_c, rc) = replicated();
        rc.produce("t", 0, &MessageSet::from_payloads(["committed-1", "committed-2"])).unwrap();
        rc.replicate().unwrap();
        let old_leader = rc.leader_of("t", 0).unwrap();
        // An uncommitted write sneaks in right before the crash.
        rc.produce("t", 0, &MessageSet::from_payloads(["uncommitted"])).unwrap();

        let elections = rc.fail_broker(old_leader).unwrap();
        assert_eq!(elections.len(), 1);
        let new_leader = rc.leader_of("t", 0).unwrap();
        assert_ne!(new_leader, old_leader);
        // Committed survives; the uncommitted tail is gone (it was never
        // visible to consumers in the first place).
        assert_eq!(payloads(&rc, 0), vec!["committed-1", "committed-2"]);
        // Writes continue on the new leader.
        rc.produce("t", 0, &MessageSet::from_payloads(["after-failover"])).unwrap();
        rc.replicate().unwrap();
        assert_eq!(
            payloads(&rc, 0),
            vec!["committed-1", "committed-2", "after-failover"]
        );
    }

    #[test]
    fn produce_to_downed_leader_rejected() {
        let (_c, rc) = replicated();
        let leader = rc.leader_of("t", 0).unwrap();
        rc.fail_broker(leader).unwrap();
        // After metadata refresh (leader_of), produces go to the new leader.
        rc.produce("t", 0, &MessageSet::from_payloads(["x"])).unwrap();
        // But a client pinned to the old leader errors... we model that by
        // failing everyone: all down -> produce fails.
        let l2 = rc.leader_of("t", 0).unwrap();
        rc.fail_broker(l2).unwrap();
        let l3 = rc.leader_of("t", 0).unwrap();
        rc.fail_broker(l3).unwrap();
        assert!(rc.produce("t", 0, &MessageSet::from_payloads(["y"])).is_err());
    }

    #[test]
    fn divergent_recovered_broker_is_reset_and_caught_up() {
        let (c, rc) = replicated();
        rc.produce("t", 0, &MessageSet::from_payloads(["base"])).unwrap();
        rc.replicate().unwrap();
        let old_leader = rc.leader_of("t", 0).unwrap();
        // Uncommitted tail on the old leader, then crash.
        rc.produce("t", 0, &MessageSet::from_payloads(["tail-1", "tail-2", "tail-3"])).unwrap();
        rc.fail_broker(old_leader).unwrap();
        rc.produce("t", 0, &MessageSet::from_payloads(["new-era"])).unwrap();
        rc.replicate().unwrap();

        // Old leader returns with a longer-but-divergent log.
        rc.recover_broker(old_leader);
        rc.replicate().unwrap();
        // Its log now mirrors the new leader exactly.
        let new_leader = rc.leader_of("t", 0).unwrap();
        let a = c.brokers()[old_leader as usize].log("t", 0).unwrap().log_end();
        let b = c.brokers()[new_leader as usize].log("t", 0).unwrap().log_end();
        assert_eq!(a, b, "divergent replica reset to leader's history");
        assert_eq!(payloads(&rc, 0), vec!["base", "new-era"]);
    }

    #[test]
    fn equal_length_divergent_tail_detected_on_rejoin() {
        // Found by the chaos harness: the old leader's uncommitted tail
        // and the new leader's first write can have the *same* framed
        // length, so a length-only divergence check lets the stale
        // replica rejoin, count toward the high watermark, and win a
        // later longest-log election with bytes no consumer ever saw.
        let (c, rc) = replicated();
        rc.produce("t", 0, &MessageSet::from_payloads(["base"])).unwrap();
        rc.replicate().unwrap();
        let old_leader = rc.leader_of("t", 0).unwrap();
        rc.produce("t", 0, &MessageSet::from_payloads(["AAAA"])).unwrap();
        rc.fail_broker(old_leader).unwrap();
        // Same framed length, different bytes.
        rc.produce("t", 0, &MessageSet::from_payloads(["BBBB"])).unwrap();
        rc.replicate().unwrap();
        let new_leader = rc.leader_of("t", 0).unwrap();
        let leader_end = c.brokers()[new_leader as usize].log("t", 0).unwrap().log_end();
        let stale_end = c.brokers()[old_leader as usize].log("t", 0).unwrap().log_end();
        assert_eq!(leader_end, stale_end, "precondition: equal lengths, divergent bytes");

        rc.recover_broker(old_leader);
        rc.replicate().unwrap();
        rc.verify_replica_identity("t", 0).unwrap();
        assert_eq!(payloads(&rc, 0), vec!["base", "BBBB"]);
    }

    #[test]
    fn stale_recovered_replica_is_never_elected_leader() {
        // Found by the ack-durability chaos scenario: crash a follower,
        // FullIsr-produce while it is down, restart it (stale), then
        // crash the leader before the stale replica catches up. Electing
        // by longest *live* log alone would hand leadership to a replica
        // missing FullIsr-acked bytes, whose new appends then overwrite
        // them. The ISR gate must keep the partition offline instead.
        let (_c, rc) = replicated();
        assert_eq!(rc.isr_of("t", 0).unwrap(), vec![0, 1, 2]);
        rc.produce_with_ack("t", 0, &MessageSet::from_payloads(["m1"]), AckMode::FullIsr)
            .unwrap();

        let leader = rc.leader_of("t", 0).unwrap();
        let follower = rc.isr_of("t", 0).unwrap().into_iter().find(|&b| b != leader).unwrap();
        rc.fail_broker(follower).unwrap();
        assert!(!rc.isr_of("t", 0).unwrap().contains(&follower));
        // Acked by the two live ISR replicas while `follower` is down.
        rc.produce_with_ack("t", 0, &MessageSet::from_payloads(["m2"]), AckMode::FullIsr)
            .unwrap();
        // The follower restarts stale: live again, but not in sync —
        // re-admission happens only through a catch-up, which we withhold.
        rc.recover_broker(follower);
        assert!(!rc.isr_of("t", 0).unwrap().contains(&follower));

        // Leader dies; the only other ISR member takes over.
        rc.fail_broker(leader).unwrap();
        let second = rc.leader_of("t", 0).unwrap();
        assert_ne!(second, leader);
        assert_ne!(second, follower, "stale replica must not win the election");
        // And when the second leader dies too, the stale replica still
        // must not be elected: the partition goes offline instead.
        rc.fail_broker(second).unwrap();
        assert_eq!(rc.leader_of("t", 0).unwrap(), second, "leadership frozen");
        assert!(rc
            .produce_with_ack("t", 0, &MessageSet::from_payloads(["m3"]), AckMode::Leader)
            .is_err());

        // An ISR member returning brings the partition back with every
        // FullIsr-acked byte intact, and catch-up re-admits the laggard.
        rc.recover_broker(second);
        for _ in 0..4 {
            if rc.replicate().unwrap() == 0 {
                break;
            }
        }
        assert_eq!(payloads(&rc, 0), vec!["m1", "m2"]);
        assert!(rc.isr_of("t", 0).unwrap().contains(&follower));
        rc.verify_replica_identity("t", 0).unwrap();
    }

    #[test]
    fn high_watermark_monotonic_through_churn() {
        let (_c, rc) = replicated();
        let mut last_hw = 0;
        for round in 0..10u32 {
            rc.produce("t", 0, &MessageSet::from_payloads([format!("m{round}")])).unwrap();
            rc.replicate().unwrap();
            let hw = rc.high_watermark("t", 0).unwrap();
            assert!(hw >= last_hw, "hw went backwards at round {round}");
            last_hw = hw;
        }
        // 10 committed messages, all visible, none duplicated.
        assert_eq!(payloads(&rc, 0).len(), 10);
    }

    #[test]
    fn full_isr_ack_is_committed_without_a_replicate_pump() {
        let (_c, rc) = replicated();
        let receipt = rc
            .produce_with_ack("t", 0, &MessageSet::from_payloads(["durable"]), AckMode::FullIsr)
            .unwrap();
        assert_eq!(receipt.base_offset, Some(0));
        // Committed the moment the call returns: the high watermark covers
        // it and a committed fetch serves it — no replicate() ran.
        assert!(rc.high_watermark("t", 0).unwrap() > 0);
        assert_eq!(payloads(&rc, 0), vec!["durable"]);
        rc.verify_replica_identity("t", 0).unwrap();
    }

    #[test]
    fn leader_ack_leaves_followers_behind_until_replicated() {
        let (_c, rc) = replicated();
        let receipt = rc
            .produce_with_ack("t", 0, &MessageSet::from_payloads(["fast"]), AckMode::Leader)
            .unwrap();
        assert_eq!(receipt.base_offset, Some(0));
        assert_eq!(rc.high_watermark("t", 0).unwrap(), 0, "not shipped");
        rc.replicate().unwrap();
        assert_eq!(payloads(&rc, 0), vec!["fast"]);
    }

    #[test]
    fn full_isr_acked_message_survives_leader_crash() {
        let (_c, rc) = replicated();
        rc.produce_with_ack("t", 0, &MessageSet::from_payloads(["must-survive"]), AckMode::FullIsr)
            .unwrap();
        // Leader-acked tail that never ships...
        rc.produce_with_ack("t", 0, &MessageSet::from_payloads(["may-die"]), AckMode::Leader)
            .unwrap();
        let leader = rc.leader_of("t", 0).unwrap();
        rc.fail_broker(leader).unwrap();
        // ...the FullIsr message is still served after failover; the
        // unshipped Leader-acked tail is the (bounded) loss.
        assert_eq!(payloads(&rc, 0), vec!["must-survive"]);
    }

    #[test]
    fn none_ack_returns_no_offset_and_flush_ingest_is_idle_safe() {
        let (_c, rc) = replicated();
        let receipt = rc
            .produce_with_ack("t", 0, &MessageSet::from_payloads(["ff"]), AckMode::None)
            .unwrap();
        assert_eq!(receipt.base_offset, None);
        rc.flush_ingest();
        rc.replicate().unwrap();
        assert_eq!(payloads(&rc, 0), vec!["ff"]);
    }

    #[test]
    fn produce_with_ack_to_fully_downed_partition_errors() {
        let (_c, rc) = replicated();
        for _ in 0..3 {
            let l = rc.leader_of("t", 0).unwrap();
            rc.fail_broker(l).unwrap();
        }
        for ack in [AckMode::Leader, AckMode::FullIsr] {
            assert!(rc
                .produce_with_ack("t", 0, &MessageSet::from_payloads(["x"]), ack)
                .is_err());
        }
    }

    #[test]
    fn invalid_replication_factor_rejected() {
        let cluster =
            KafkaCluster::with_parts(2, LogConfig::default(), Arc::new(SimClock::new())).unwrap();
        let rc = ReplicatedCluster::new(cluster);
        assert!(rc.create_topic("t", 1, 3).is_err());
        assert!(rc.create_topic("t", 1, 0).is_err());
    }
}
