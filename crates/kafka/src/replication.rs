//! Intra-cluster replication — the paper's stated future work, built out.
//!
//! §V.D closes with: "One of the most important features that we plan to
//! add in the future is intra-cluster replication." This module implements
//! it the way Kafka 0.8 eventually did, reusing this crate's logs:
//!
//! * each partition has a **leader** broker and follower brokers;
//! * producers write to the leader; **followers pull** from the leader's
//!   log, byte-for-byte, so logical offsets are identical on every replica;
//! * the **high watermark** is the offset up to which every in-sync
//!   replica has the data — consumers only ever see committed messages;
//! * on leader failure, the live follower with the **longest log** is
//!   elected leader (it is a superset of every committed message), and the
//!   uncommitted tail beyond the high watermark is naturally invisible;
//! * a recovered broker whose log diverged (it led writes that were never
//!   committed) is reset and re-replicated from the new leader.

use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::cluster::KafkaCluster;
use crate::message::{KafkaError, Message, MessageSet};

#[derive(Debug, Clone)]
struct PartitionReplicas {
    leader: u16,
    followers: Vec<u16>,
}

/// A replication layer over a [`KafkaCluster`]'s brokers.
pub struct ReplicatedCluster {
    cluster: Arc<KafkaCluster>,
    assignments: RwLock<HashMap<(String, u32), PartitionReplicas>>,
    down: RwLock<HashSet<u16>>,
}

impl ReplicatedCluster {
    /// Wraps a cluster.
    pub fn new(cluster: Arc<KafkaCluster>) -> Self {
        ReplicatedCluster {
            cluster,
            assignments: RwLock::new(HashMap::new()),
            down: RwLock::new(HashSet::new()),
        }
    }

    /// Creates a replicated topic: partition `p`'s replicas are brokers
    /// `p, p+1, .. p+replication-1 (mod broker count)`, first is leader.
    pub fn create_topic(
        &self,
        topic: &str,
        partitions: u32,
        replication: usize,
    ) -> Result<(), KafkaError> {
        let brokers = self.cluster.brokers();
        if replication == 0 || replication > brokers.len() {
            return Err(KafkaError::Group(format!(
                "replication {replication} invalid for {} brokers",
                brokers.len()
            )));
        }
        let mut assignments = self.assignments.write();
        for p in 0..partitions {
            let replicas: Vec<u16> = (0..replication)
                .map(|r| ((p as usize + r) % brokers.len()) as u16)
                .collect();
            for &b in &replicas {
                brokers[b as usize].create_partition(topic, p);
            }
            assignments.insert(
                (topic.to_string(), p),
                PartitionReplicas {
                    leader: replicas[0],
                    followers: replicas[1..].to_vec(),
                },
            );
        }
        Ok(())
    }

    fn assignment(&self, topic: &str, partition: u32) -> Result<PartitionReplicas, KafkaError> {
        self.assignments
            .read()
            .get(&(topic.to_string(), partition))
            .cloned()
            .ok_or_else(|| KafkaError::UnknownTopicPartition(topic.to_string(), partition))
    }

    /// The current leader broker id of a partition.
    pub fn leader_of(&self, topic: &str, partition: u32) -> Result<u16, KafkaError> {
        Ok(self.assignment(topic, partition)?.leader)
    }

    /// Produces to the partition's leader. Fails when the leader is down
    /// (the client should refresh metadata after a failover).
    pub fn produce(
        &self,
        topic: &str,
        partition: u32,
        set: &MessageSet,
    ) -> Result<u64, KafkaError> {
        let assignment = self.assignment(topic, partition)?;
        if self.down.read().contains(&assignment.leader) {
            return Err(KafkaError::Group(format!(
                "leader {} down for {topic}/{partition}",
                assignment.leader
            )));
        }
        self.cluster.brokers()[assignment.leader as usize].produce(topic, partition, set)
    }

    /// One replication pump: every live follower pulls the bytes it is
    /// missing from its leader's log. Returns messages copied.
    pub fn replicate(&self) -> Result<usize, KafkaError> {
        let assignments: Vec<((String, u32), PartitionReplicas)> = self
            .assignments
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let down = self.down.read().clone();
        let brokers = self.cluster.brokers();
        let mut copied = 0;
        for ((topic, partition), replicas) in assignments {
            if down.contains(&replicas.leader) {
                continue;
            }
            let leader_log = brokers[replicas.leader as usize].log(&topic, partition)?;
            for &f in &replicas.followers {
                if down.contains(&f) {
                    continue;
                }
                let mut follower_log = brokers[f as usize].log(&topic, partition)?;
                let mut from = follower_log.log_end();
                if from > leader_log.log_end() {
                    // Divergent follower (was a leader with an uncommitted
                    // tail): reset and re-replicate from scratch.
                    brokers[f as usize].reset_partition(&topic, partition);
                    follower_log = brokers[f as usize].log(&topic, partition)?;
                    from = 0;
                }
                // Pull the leader's stored bytes verbatim: appending the
                // frame-aligned chunks untouched keeps logical offsets
                // identical on every replica without decoding a single
                // message.
                let (chunks, _) = leader_log.read_chunks(from, usize::MAX)?;
                for chunk in &chunks {
                    follower_log.append_frames(&chunk.data)?;
                    copied += chunk.messages as usize;
                }
            }
        }
        Ok(copied)
    }

    /// The high watermark: the largest offset replicated to *every* live
    /// replica. Messages past it are not yet committed.
    pub fn high_watermark(&self, topic: &str, partition: u32) -> Result<u64, KafkaError> {
        let assignment = self.assignment(topic, partition)?;
        let down = self.down.read();
        let brokers = self.cluster.brokers();
        let mut hw = u64::MAX;
        let mut any = false;
        for &b in std::iter::once(&assignment.leader).chain(&assignment.followers) {
            if down.contains(&b) {
                continue;
            }
            hw = hw.min(brokers[b as usize].log(topic, partition)?.visible_end());
            any = true;
        }
        Ok(if any { hw } else { 0 })
    }

    /// Committed-only fetch: reads from the leader, truncated at the high
    /// watermark — a consumer can never observe a message that a leader
    /// failover could lose.
    pub fn fetch_committed(
        &self,
        topic: &str,
        partition: u32,
        offset: u64,
        max_bytes: usize,
    ) -> Result<(Vec<(u64, Message)>, u64), KafkaError> {
        let assignment = self.assignment(topic, partition)?;
        if self.down.read().contains(&assignment.leader) {
            return Err(KafkaError::Group(format!(
                "leader {} down for {topic}/{partition}",
                assignment.leader
            )));
        }
        let hw = self.high_watermark(topic, partition)?;
        let leader_log = self.cluster.brokers()[assignment.leader as usize].log(topic, partition)?;
        let (messages, next) = leader_log.read(offset.min(hw), max_bytes)?;
        let committed: Vec<(u64, Message)> =
            messages.into_iter().take_while(|(o, _)| *o < hw).collect();
        let next = next.min(hw).max(
            committed
                .last()
                .map(|(o, m)| o + m.framed_len() as u64)
                .unwrap_or(offset.min(hw)),
        );
        Ok((committed, next))
    }

    /// Fails a broker: partitions it led elect the live replica with the
    /// longest log as new leader.
    pub fn fail_broker(&self, broker: u16) -> Result<Vec<(String, u32, u16)>, KafkaError> {
        self.down.write().insert(broker);
        let brokers = self.cluster.brokers();
        let down = self.down.read().clone();
        let mut elections = Vec::new();
        let mut assignments = self.assignments.write();
        for ((topic, partition), replicas) in assignments.iter_mut() {
            if replicas.leader != broker {
                continue;
            }
            // Longest-log election among live replicas.
            let candidate = replicas
                .followers
                .iter()
                .filter(|b| !down.contains(b))
                .max_by_key(|&&b| {
                    brokers[b as usize]
                        .log(topic, *partition)
                        .map(|l| l.log_end())
                        .unwrap_or(0)
                })
                .copied();
            let Some(new_leader) = candidate else {
                continue; // partition offline until a replica returns
            };
            replicas.followers.retain(|&b| b != new_leader);
            replicas.followers.push(replicas.leader);
            replicas.leader = new_leader;
            elections.push((topic.clone(), *partition, new_leader));
        }
        Ok(elections)
    }

    /// Brings a broker back; it rejoins as a follower everywhere. Any
    /// partition whose local log has diverged from the current leader is
    /// reset here so the next [`ReplicatedCluster::replicate`] recopies
    /// it from scratch. Divergence is detected by byte-prefix
    /// fingerprint, not length: a crashed leader can rejoin with an
    /// uncommitted tail its successor overwrote with different records
    /// of the *same* framed length, which a length-only check (and the
    /// high watermark, which counts this replica again the moment it is
    /// live) would silently accept.
    pub fn recover_broker(&self, broker: u16) {
        self.down.write().remove(&broker);
        let down = self.down.read().clone();
        let brokers = self.cluster.brokers();
        for ((topic, partition), replicas) in self.assignments.read().iter() {
            if replicas.leader == broker
                || down.contains(&replicas.leader)
                || !replicas.followers.contains(&broker)
            {
                continue;
            }
            let Ok(local) = brokers[broker as usize].log(topic, *partition) else {
                continue;
            };
            let end = local.log_end();
            if end == 0 {
                continue;
            }
            let Ok(leader_log) = brokers[replicas.leader as usize].log(topic, *partition) else {
                continue;
            };
            let overlap = end.min(leader_log.log_end());
            if end > leader_log.log_end()
                || local.prefix_fingerprint(overlap) != leader_log.prefix_fingerprint(overlap)
            {
                brokers[broker as usize].reset_partition(topic, *partition);
            }
        }
    }

    /// Chaos invariant checker: every *live* replica of the partition
    /// holds a byte-identical log (same end offset, same content
    /// fingerprint). Call after pumping [`ReplicatedCluster::replicate`]
    /// to convergence.
    pub fn verify_replica_identity(&self, topic: &str, partition: u32) -> Result<(), String> {
        let assignment = self
            .assignment(topic, partition)
            .map_err(|e| e.to_string())?;
        let down = self.down.read().clone();
        let brokers = self.cluster.brokers();
        let leader_log = brokers[assignment.leader as usize]
            .log(topic, partition)
            .map_err(|e| e.to_string())?;
        let (want_end, want_print) = (leader_log.log_end(), leader_log.content_fingerprint());
        for &b in &assignment.followers {
            if down.contains(&b) {
                continue;
            }
            let log = brokers[b as usize]
                .log(topic, partition)
                .map_err(|e| e.to_string())?;
            if log.log_end() != want_end || log.content_fingerprint() != want_print {
                return Err(format!(
                    "replica {b} of {topic}/{partition} diverges from leader {}: \
                     end {} vs {want_end}, fingerprint {:#x} vs {want_print:#x}",
                    assignment.leader,
                    log.log_end(),
                    log.content_fingerprint()
                ));
            }
        }
        Ok(())
    }
}

/// Chaos-scheduler hooks: a crash fails the broker (triggering
/// longest-log leader elections), a restart recovers it as a follower.
impl li_commons::chaos::FaultHooks for ReplicatedCluster {
    fn crash(&self, node: li_commons::ring::NodeId) {
        let _ = self.fail_broker(node.0);
    }

    fn restart(&self, node: li_commons::ring::NodeId) {
        self.recover_broker(node.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogConfig;
    use li_commons::sim::SimClock;

    fn replicated() -> (Arc<KafkaCluster>, ReplicatedCluster) {
        let cluster =
            KafkaCluster::with_parts(3, LogConfig::default(), Arc::new(SimClock::new())).unwrap();
        let replicated = ReplicatedCluster::new(cluster.clone());
        replicated.create_topic("t", 1, 3).unwrap();
        (cluster, replicated)
    }

    fn payloads(rc: &ReplicatedCluster, from: u64) -> Vec<String> {
        let (messages, _) = rc.fetch_committed("t", 0, from, usize::MAX).unwrap();
        messages
            .iter()
            .map(|(_, m)| String::from_utf8_lossy(&m.payload).into_owned())
            .collect()
    }

    #[test]
    fn uncommitted_messages_invisible_until_replicated() {
        let (_c, rc) = replicated();
        rc.produce("t", 0, &MessageSet::from_payloads(["a", "b"])).unwrap();
        assert_eq!(rc.high_watermark("t", 0).unwrap(), 0, "followers empty");
        assert!(payloads(&rc, 0).is_empty(), "nothing committed yet");
        rc.replicate().unwrap();
        assert!(rc.high_watermark("t", 0).unwrap() > 0);
        assert_eq!(payloads(&rc, 0), vec!["a", "b"]);
    }

    #[test]
    fn leader_failover_keeps_all_committed_messages() {
        let (_c, rc) = replicated();
        rc.produce("t", 0, &MessageSet::from_payloads(["committed-1", "committed-2"])).unwrap();
        rc.replicate().unwrap();
        let old_leader = rc.leader_of("t", 0).unwrap();
        // An uncommitted write sneaks in right before the crash.
        rc.produce("t", 0, &MessageSet::from_payloads(["uncommitted"])).unwrap();

        let elections = rc.fail_broker(old_leader).unwrap();
        assert_eq!(elections.len(), 1);
        let new_leader = rc.leader_of("t", 0).unwrap();
        assert_ne!(new_leader, old_leader);
        // Committed survives; the uncommitted tail is gone (it was never
        // visible to consumers in the first place).
        assert_eq!(payloads(&rc, 0), vec!["committed-1", "committed-2"]);
        // Writes continue on the new leader.
        rc.produce("t", 0, &MessageSet::from_payloads(["after-failover"])).unwrap();
        rc.replicate().unwrap();
        assert_eq!(
            payloads(&rc, 0),
            vec!["committed-1", "committed-2", "after-failover"]
        );
    }

    #[test]
    fn produce_to_downed_leader_rejected() {
        let (_c, rc) = replicated();
        let leader = rc.leader_of("t", 0).unwrap();
        rc.fail_broker(leader).unwrap();
        // After metadata refresh (leader_of), produces go to the new leader.
        rc.produce("t", 0, &MessageSet::from_payloads(["x"])).unwrap();
        // But a client pinned to the old leader errors... we model that by
        // failing everyone: all down -> produce fails.
        let l2 = rc.leader_of("t", 0).unwrap();
        rc.fail_broker(l2).unwrap();
        let l3 = rc.leader_of("t", 0).unwrap();
        rc.fail_broker(l3).unwrap();
        assert!(rc.produce("t", 0, &MessageSet::from_payloads(["y"])).is_err());
    }

    #[test]
    fn divergent_recovered_broker_is_reset_and_caught_up() {
        let (c, rc) = replicated();
        rc.produce("t", 0, &MessageSet::from_payloads(["base"])).unwrap();
        rc.replicate().unwrap();
        let old_leader = rc.leader_of("t", 0).unwrap();
        // Uncommitted tail on the old leader, then crash.
        rc.produce("t", 0, &MessageSet::from_payloads(["tail-1", "tail-2", "tail-3"])).unwrap();
        rc.fail_broker(old_leader).unwrap();
        rc.produce("t", 0, &MessageSet::from_payloads(["new-era"])).unwrap();
        rc.replicate().unwrap();

        // Old leader returns with a longer-but-divergent log.
        rc.recover_broker(old_leader);
        rc.replicate().unwrap();
        // Its log now mirrors the new leader exactly.
        let new_leader = rc.leader_of("t", 0).unwrap();
        let a = c.brokers()[old_leader as usize].log("t", 0).unwrap().log_end();
        let b = c.brokers()[new_leader as usize].log("t", 0).unwrap().log_end();
        assert_eq!(a, b, "divergent replica reset to leader's history");
        assert_eq!(payloads(&rc, 0), vec!["base", "new-era"]);
    }

    #[test]
    fn equal_length_divergent_tail_detected_on_rejoin() {
        // Found by the chaos harness: the old leader's uncommitted tail
        // and the new leader's first write can have the *same* framed
        // length, so a length-only divergence check lets the stale
        // replica rejoin, count toward the high watermark, and win a
        // later longest-log election with bytes no consumer ever saw.
        let (c, rc) = replicated();
        rc.produce("t", 0, &MessageSet::from_payloads(["base"])).unwrap();
        rc.replicate().unwrap();
        let old_leader = rc.leader_of("t", 0).unwrap();
        rc.produce("t", 0, &MessageSet::from_payloads(["AAAA"])).unwrap();
        rc.fail_broker(old_leader).unwrap();
        // Same framed length, different bytes.
        rc.produce("t", 0, &MessageSet::from_payloads(["BBBB"])).unwrap();
        rc.replicate().unwrap();
        let new_leader = rc.leader_of("t", 0).unwrap();
        let leader_end = c.brokers()[new_leader as usize].log("t", 0).unwrap().log_end();
        let stale_end = c.brokers()[old_leader as usize].log("t", 0).unwrap().log_end();
        assert_eq!(leader_end, stale_end, "precondition: equal lengths, divergent bytes");

        rc.recover_broker(old_leader);
        rc.replicate().unwrap();
        rc.verify_replica_identity("t", 0).unwrap();
        assert_eq!(payloads(&rc, 0), vec!["base", "BBBB"]);
    }

    #[test]
    fn high_watermark_monotonic_through_churn() {
        let (_c, rc) = replicated();
        let mut last_hw = 0;
        for round in 0..10u32 {
            rc.produce("t", 0, &MessageSet::from_payloads([format!("m{round}")])).unwrap();
            rc.replicate().unwrap();
            let hw = rc.high_watermark("t", 0).unwrap();
            assert!(hw >= last_hw, "hw went backwards at round {round}");
            last_hw = hw;
        }
        // 10 committed messages, all visible, none duplicated.
        assert_eq!(payloads(&rc, 0).len(), 10);
    }

    #[test]
    fn invalid_replication_factor_rejected() {
        let cluster =
            KafkaCluster::with_parts(2, LogConfig::default(), Arc::new(SimClock::new())).unwrap();
        let rc = ReplicatedCluster::new(cluster);
        assert!(rc.create_topic("t", 1, 3).is_err());
        assert!(rc.create_topic("t", 1, 0).is_err());
    }
}
