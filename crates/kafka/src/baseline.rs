//! A traditional message-queue baseline.
//!
//! The paper's design choices are defined by contrast with "most other
//! messaging systems": explicit per-message ids with "auxiliary index
//! structures that map the message ids to the actual message locations",
//! broker-maintained consumer state, per-message acknowledgements, and
//! out-of-order delivery bookkeeping (§V.B). This module implements that
//! conventional design so the benchmarks can measure what Kafka's
//! offset-addressed, stateless-broker log buys.

use bytes::Bytes;
use li_commons::crc32::crc32;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Broker-assigned unique message id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MessageId(pub u64);

#[derive(Debug, Default)]
struct QueueState {
    /// Arrival order -> id (scan structure).
    arrival: BTreeMap<u64, MessageId>,
    /// Id -> (checksummed payload, crc): the auxiliary index Kafka avoids.
    /// Like any broker, this one frames and checksums what it stores.
    index: HashMap<MessageId, (Bytes, u32)>,
    /// Id -> arrival seq (needed to GC out of `arrival` on full ack).
    seq_of: HashMap<MessageId, u64>,
    next_seq: u64,
    next_id: u64,
    /// Per consumer: delivered-but-unacked and the acked set.
    consumers: HashMap<String, ConsumerState>,
}

#[derive(Debug, Default)]
struct ConsumerState {
    delivered: HashSet<MessageId>,
    acked: HashSet<MessageId>,
}

/// The traditional queue: one topic, broker-side consumer state.
#[derive(Debug, Default)]
pub struct TraditionalMq {
    state: Mutex<QueueState>,
}

impl TraditionalMq {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a consumer (the broker must know each one to track acks).
    pub fn register_consumer(&self, name: &str) {
        self.state
            .lock()
            .consumers
            .entry(name.to_string())
            .or_default();
    }

    /// Publishes a message; the broker mints an id, checksums the payload
    /// (all brokers frame what they persist), and indexes it.
    pub fn publish(&self, payload: impl Into<Bytes>) -> MessageId {
        let payload = payload.into();
        let crc = crc32(&payload);
        let mut state = self.state.lock();
        let id = MessageId(state.next_id);
        state.next_id += 1;
        let seq = state.next_seq;
        state.next_seq += 1;
        state.arrival.insert(seq, id);
        state.seq_of.insert(id, seq);
        state.index.insert(id, (payload, crc));
        id
    }

    /// Delivers up to `max` not-yet-delivered messages to `consumer`,
    /// marking them in-flight (broker-side mutable state per delivery).
    pub fn deliver(&self, consumer: &str, max: usize) -> Vec<(MessageId, Bytes)> {
        let mut state = self.state.lock();
        let candidate_ids: Vec<MessageId> = state.arrival.values().copied().collect();
        let mut out = Vec::with_capacity(max.min(candidate_ids.len()));
        let consumer_state = state
            .consumers
            .entry(consumer.to_string())
            .or_default();
        for id in candidate_ids {
            if out.len() >= max {
                break;
            }
            if consumer_state.delivered.contains(&id) || consumer_state.acked.contains(&id) {
                continue;
            }
            consumer_state.delivered.insert(id);
            out.push(id);
        }
        out.into_iter()
            .map(|id| {
                let (payload, crc) = state.index[&id].clone();
                // Verify integrity on the way out, as a real broker would.
                assert_eq!(crc32(&payload), crc, "corrupt message {id:?}");
                (id, payload)
            })
            .collect()
    }

    /// Acknowledges one message (out-of-order acks allowed). When every
    /// registered consumer has acked it, the message is garbage-collected
    /// from both structures — the deletion problem Kafka sidesteps with
    /// its time-based SLA.
    pub fn ack(&self, consumer: &str, id: MessageId) -> bool {
        let mut state = self.state.lock();
        let Some(consumer_state) = state.consumers.get_mut(consumer) else {
            return false;
        };
        if !consumer_state.delivered.remove(&id) {
            return false;
        }
        consumer_state.acked.insert(id);
        let fully_acked = state
            .consumers
            .values()
            .all(|c| c.acked.contains(&id));
        if fully_acked {
            state.index.remove(&id);
            if let Some(seq) = state.seq_of.remove(&id) {
                state.arrival.remove(&seq);
            }
            for c in state.consumers.values_mut() {
                c.acked.remove(&id);
            }
        }
        true
    }

    /// Messages still retained (not fully acked).
    pub fn retained(&self) -> usize {
        self.state.lock().index.len()
    }

    /// Redelivers in-flight messages of a crashed consumer (they were
    /// delivered but never acked).
    pub fn redeliver_unacked(&self, consumer: &str) -> Vec<(MessageId, Bytes)> {
        let mut state = self.state.lock();
        let Some(consumer_state) = state.consumers.get_mut(consumer) else {
            return Vec::new();
        };
        let ids: Vec<MessageId> = consumer_state.delivered.iter().copied().collect();
        ids.into_iter()
            .filter_map(|id| state.index.get(&id).map(|(p, _)| (id, p.clone())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_deliver_ack_cycle() {
        let mq = TraditionalMq::new();
        mq.register_consumer("c1");
        let id = mq.publish(&b"hello"[..]);
        let batch = mq.deliver("c1", 10);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].0, id);
        // Not redelivered while in flight.
        assert!(mq.deliver("c1", 10).is_empty());
        assert!(mq.ack("c1", id));
        assert_eq!(mq.retained(), 0, "fully acked message GC'd");
    }

    #[test]
    fn retained_until_all_consumers_ack() {
        let mq = TraditionalMq::new();
        mq.register_consumer("c1");
        mq.register_consumer("c2");
        let id = mq.publish(&b"x"[..]);
        mq.deliver("c1", 1);
        mq.deliver("c2", 1);
        mq.ack("c1", id);
        assert_eq!(mq.retained(), 1, "c2 hasn't acked");
        mq.ack("c2", id);
        assert_eq!(mq.retained(), 0);
    }

    #[test]
    fn out_of_order_acks() {
        let mq = TraditionalMq::new();
        mq.register_consumer("c");
        let a = mq.publish(&b"a"[..]);
        let b = mq.publish(&b"b"[..]);
        mq.deliver("c", 2);
        assert!(mq.ack("c", b));
        assert_eq!(mq.retained(), 1);
        assert!(mq.ack("c", a));
        assert_eq!(mq.retained(), 0);
    }

    #[test]
    fn unacked_messages_redelivered_after_crash() {
        let mq = TraditionalMq::new();
        mq.register_consumer("c");
        mq.publish(&b"m1"[..]);
        mq.publish(&b"m2"[..]);
        let batch = mq.deliver("c", 2);
        mq.ack("c", batch[0].0);
        let redelivered = mq.redeliver_unacked("c");
        assert_eq!(redelivered.len(), 1);
        assert_eq!(redelivered[0].1.as_ref(), b"m2");
    }

    #[test]
    fn bogus_acks_rejected() {
        let mq = TraditionalMq::new();
        mq.register_consumer("c");
        let id = mq.publish(&b"x"[..]);
        assert!(!mq.ack("c", id), "not yet delivered");
        assert!(!mq.ack("ghost", id), "unknown consumer");
    }
}
