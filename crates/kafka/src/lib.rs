//! # li-kafka — log-structured pub/sub messaging (Kafka reproduction)
//!
//! Paper §V: "We developed a system called Kafka for collecting and
//! delivering event data. Kafka adopts a messaging API to support both
//! real time and offline consumption of this data. Since event data is 2-3
//! orders magnitude larger than data handled in traditional messaging
//! systems, we made a few unconventional yet practical design choices to
//! make our system simple, efficient and scalable."
//!
//! Those choices, and where they live here:
//!
//! * **Simple storage** ([`log`]) — a partition is a set of segment files;
//!   messages are addressed by *logical offset* (next id = id + message
//!   length), not per-message ids with an index; messages become visible
//!   only after a flush.
//! * **Efficient transfer** ([`producer`], [`net`]) — producers batch
//!   message sets and compress them ([`li_commons::compress`]); brokers
//!   hand out stored bytes without re-copying (the `sendfile` analog, with
//!   an explicit 4-copy baseline for the benchmark).
//! * **Distributed consumer state** ([`consumer`]) — brokers keep no
//!   per-consumer state; consumers own their offsets, can rewind, and
//!   retention is a simple time-based SLA.
//! * **Distributed coordination** ([`group`]) — consumer groups rebalance
//!   through ZooKeeper ([`li_zk`]): partition ownership, rebalance
//!   triggering on membership change, and offset storage.
//! * **Pipelines** ([`mirror`]) — embedded consumers mirror live clusters
//!   into an offline cluster; [`audit`] reproduces the paper's end-to-end
//!   count-auditing scheme.
//! * **Baseline** ([`baseline`]) — a traditional message queue (per-message
//!   ids, broker-side ack state) for the design-choice benchmarks.
//!
//! ```
//! use li_kafka::{KafkaCluster, Producer, SimpleConsumer};
//!
//! let cluster = KafkaCluster::new(2)?;
//! cluster.create_topic("activity", 4)?;
//!
//! let producer = Producer::new(cluster.clone()).with_batch_size(8);
//! for i in 0..32 {
//!     producer.send("activity", format!("event-{i}"))?;
//! }
//! producer.flush()?;
//!
//! // Consumers own their offsets; the broker keeps no consumer state.
//! let mut total = 0;
//! for partition in 0..4 {
//!     let mut consumer = SimpleConsumer::new(cluster.clone(), "activity", partition)?;
//!     total += consumer.poll()?.len();
//! }
//! assert_eq!(total, 32);
//! # Ok::<(), li_kafka::KafkaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod baseline;
pub mod broker;
pub mod cluster;
pub mod consumer;
pub mod group;
pub mod ingest;
pub mod log;
pub mod message;
pub mod mirror;
pub mod net;
pub mod producer;
pub mod replication;

pub use broker::Broker;
pub use cluster::KafkaCluster;
pub use consumer::{MessageStream, SimpleConsumer};
pub use group::GroupConsumer;
pub use ingest::{AckMode, ProduceReceipt};
pub use message::{FetchChunk, KafkaError, Message, MessageSet};
pub use producer::{Partitioner, Producer};
pub use replication::ReplicatedCluster;
