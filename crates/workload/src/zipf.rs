//! Zipfian sampling (Gray et al., "Quickly generating billion-record
//! synthetic databases" — the construction YCSB popularized).

use rand::Rng;

/// A Zipfian distribution over `0..n` with skew `theta` (0 < theta < 1;
/// YCSB's default 0.99). Rank 0 is the hottest item.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

impl Zipfian {
    /// Creates a sampler over `0..n` with skew `theta`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "empty item space");
        assert!((0.0..1.0).contains(&theta), "theta must be in (0,1)");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    /// YCSB's default skew.
    pub fn ycsb(n: u64) -> Self {
        Self::new(n, 0.99)
    }

    /// Number of items.
    pub fn item_count(&self) -> u64 {
        self.n
    }

    /// Draws a rank in `0..n` (0 = hottest).
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.random();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) && self.n >= 2 {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// The exact probability mass of rank `k` (for tests / analysis).
    pub fn mass(&self, k: u64) -> f64 {
        1.0 / ((k + 1) as f64).powf(self.theta) / self.zetan
    }

    /// Internal zeta(2) accessor kept for diagnostics.
    #[doc(hidden)]
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// A Zipf-distributed *size* in `1..=max` (rank 0 → `max`): used for the
/// Company Follow value-size distribution, where a few companies have
/// enormous follower lists.
pub fn zipf_size(zipf: &Zipfian, rng: &mut impl Rng, max: usize) -> usize {
    let rank = zipf.sample(rng);
    // Invert: hot ranks → big sizes, with harmonic decay.
    ((max as f64) / (rank + 1) as f64).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranks_in_range() {
        let zipf = Zipfian::ycsb(1000);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn skew_concentrates_on_hot_items() {
        let zipf = Zipfian::ycsb(10_000);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut hot = 0usize;
        const SAMPLES: usize = 50_000;
        for _ in 0..SAMPLES {
            if zipf.sample(&mut rng) < 100 {
                hot += 1;
            }
        }
        // Top 1% of items should draw a large share of traffic (far more
        // than the 1% uniform would give).
        let share = hot as f64 / SAMPLES as f64;
        assert!(share > 0.3, "hot share {share}");
    }

    #[test]
    fn empirical_matches_mass_for_rank_zero() {
        let zipf = Zipfian::new(100, 0.9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        const SAMPLES: usize = 200_000;
        let zeros = (0..SAMPLES)
            .filter(|_| zipf.sample(&mut rng) == 0)
            .count();
        let observed = zeros as f64 / SAMPLES as f64;
        let expected = zipf.mass(0);
        assert!(
            (observed - expected).abs() < 0.02,
            "observed {observed} vs expected {expected}"
        );
    }

    #[test]
    fn single_item_space() {
        let zipf = Zipfian::new(1, 0.5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        assert_eq!(zipf.sample(&mut rng), 0);
    }

    #[test]
    fn sizes_are_skewed_and_bounded() {
        let zipf = Zipfian::ycsb(1000);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let sizes: Vec<usize> = (0..1000).map(|_| zipf_size(&zipf, &mut rng, 5000)).collect();
        assert!(sizes.iter().all(|&s| (1..=5000).contains(&s)));
        assert!(sizes.contains(&5000), "hot rank hits max size");
        assert!(sizes.iter().filter(|&&s| s < 50).count() > 100, "long tail");
    }
}
