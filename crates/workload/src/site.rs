//! Site-scale population synthesis: an LDBC-SNB-shaped social graph and
//! the closed-loop query mix that drives the whole platform through it.
//!
//! The LDBC Social Network Benchmark (PAPERS.md, arXiv 2001.02299) is the
//! template: a member population whose connectivity is heavily skewed
//! (Zipfian follower counts — a few companies/profiles attract most of the
//! edges), read traffic concentrated on hot profiles, and write traffic
//! with power-law skew (a minority of members generate most follows and
//! activity). [`SiteGraph`] generates that population deterministically
//! from one seed; [`SiteWorkload`] turns it into per-driver operation
//! streams for the closed-loop `site_bench` harness.
//!
//! # Determinism contract
//!
//! Everything here is a pure function of `(config, seed)`:
//!
//! * [`SiteGraph::generate`] derives one RNG per member via
//!   [`split_seed`], so the graph is identical run to run *and*
//!   independent of generation order.
//! * [`SiteWorkload::ops_for_driver`] derives one RNG per `(seed,
//!   driver)` pair — concurrent drivers never share a cursor, so adding
//!   or removing drivers cannot skew another driver's mix (the shared-RNG
//!   ratio-skew bug the regression tests in `driver.rs` pin down).

use rand::{Rng, SeedableRng};

use crate::datasets::PymkRecord;
use crate::zipf::{zipf_size, Zipfian};

/// Derives an independent stream seed from `(seed, stream)` via one
/// splitmix64 round — the standard way to split one run seed into many
/// decorrelated per-member / per-driver RNG streams.
pub fn split_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Shape parameters of a generated site population.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteGraphConfig {
    /// Member population size.
    pub members: u64,
    /// Company population size (follow targets).
    pub companies: u64,
    /// Cap on one member's initial follow-list length.
    pub max_follows: usize,
    /// PYMK recommendations per member.
    pub recs_per_member: usize,
    /// The population seed (profiles, edges, and PYMK scores all derive
    /// from it).
    pub seed: u64,
}

impl SiteGraphConfig {
    /// A small, fast population for smoke tests.
    pub fn smoke(members: u64, seed: u64) -> Self {
        SiteGraphConfig {
            members,
            companies: (members / 10).max(4),
            max_follows: 16,
            recs_per_member: 5,
            seed,
        }
    }
}

/// Vocabulary for profile text (deterministic, small — enough token
/// diversity that the search index has real work to do).
const PROFILE_WORDS: &[&str] = &[
    "engineer", "manager", "designer", "scientist", "analyst", "recruiter",
    "distributed", "systems", "storage", "streams", "search", "graph",
    "learning", "product", "sales", "enterprise", "mobile", "security",
];

/// The generated population: per-member profile text, deduplicated
/// member→company follow edges with Zipfian company popularity, and a
/// PYMK recommendation list per member.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteGraph {
    config: SiteGraphConfig,
    /// Per member: followed company ids, sorted and deduplicated.
    follows: Vec<Vec<u64>>,
    /// Per member: profile text.
    profiles: Vec<String>,
    /// Per member: the PYMK record.
    pymk: Vec<PymkRecord>,
}

/// One contiguous batch of generated members: the unit the streaming
/// loader moves between the generator thread and the platform-seeding
/// loader. Row `i` of every vector describes member `first_member + i`.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteChunk {
    /// Id of the first member in this chunk.
    pub first_member: u64,
    /// Per member: followed company ids, sorted and deduplicated.
    pub follows: Vec<Vec<u64>>,
    /// Per member: profile text.
    pub profiles: Vec<String>,
    /// Per member: the PYMK record.
    pub pymk: Vec<PymkRecord>,
}

impl SiteChunk {
    /// Members in this chunk.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True when the chunk holds no members.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Iterates `(member_id, follows, profile, pymk)` rows.
    pub fn rows(&self) -> impl Iterator<Item = (u64, &Vec<u64>, &str, &PymkRecord)> {
        (0..self.len()).map(move |i| {
            (
                self.first_member + i as u64,
                &self.follows[i],
                self.profiles[i].as_str(),
                &self.pymk[i],
            )
        })
    }
}

/// Streaming population generator: yields the same members as
/// [`SiteGraph::generate`] — byte for byte, in member order — but in
/// bounded [`SiteChunk`]s produced on demand, so a million-member
/// population never has to be materialized before the first batch can be
/// loaded. Because each member derives its own RNG via [`split_seed`],
/// the chunking is invisible: any chunk size produces the identical
/// population (proptest-pinned in `tests/site_graph_props.rs`).
#[derive(Debug, Clone)]
pub struct SiteGraphChunks {
    config: SiteGraphConfig,
    degree_zipf: Zipfian,
    company_zipf: Zipfian,
    next_member: u64,
    chunk_members: usize,
}

impl SiteGraphChunks {
    /// A chunked generator over `config`'s population, `chunk_members`
    /// members per chunk (clamped to at least 1).
    pub fn new(config: &SiteGraphConfig, chunk_members: usize) -> Self {
        assert!(config.members > 0, "empty member population");
        assert!(config.companies > 0, "empty company population");
        SiteGraphChunks {
            config: config.clone(),
            degree_zipf: Zipfian::ycsb(config.members),
            company_zipf: Zipfian::ycsb(config.companies),
            next_member: 0,
            chunk_members: chunk_members.max(1),
        }
    }

    /// Total chunks this generator will yield.
    pub fn chunk_count(&self) -> usize {
        (self.config.members as usize).div_ceil(self.chunk_members)
    }

    /// Generates one member. Pure function of `(config, member)`.
    fn generate_member(&self, member: u64) -> (Vec<u64>, String, PymkRecord) {
        let config = &self.config;
        let mut rng = rand::rngs::StdRng::seed_from_u64(split_seed(config.seed, member));
        // Degree: a Zipf-distributed list size (power-law out-degree),
        // capped by the company space.
        let cap = config.max_follows.min(config.companies as usize);
        let degree = zipf_size(&self.degree_zipf, &mut rng, cap);
        // Targets: Zipfian company popularity — hot companies collect
        // follower lists orders of magnitude longer than the tail.
        let mut list = std::collections::BTreeSet::new();
        let mut attempts = 0;
        while list.len() < degree && attempts < degree * 8 {
            list.insert(self.company_zipf.sample(&mut rng));
            attempts += 1;
        }
        let follows: Vec<u64> = list.into_iter().collect();

        let words: Vec<&str> = (0..4)
            .map(|_| PROFILE_WORDS[rng.random_range(0..PROFILE_WORDS.len() as u64) as usize])
            .collect();
        let profile = format!("member {member} {}", words.join(" "));

        let mut recommendations: Vec<(u64, f32)> = (0..config.recs_per_member)
            .map(|_| (rng.random_range(0..config.members), rng.random::<f32>()))
            .collect();
        recommendations
            .sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        (
            follows,
            profile,
            PymkRecord {
                member,
                recommendations,
            },
        )
    }
}

impl Iterator for SiteGraphChunks {
    type Item = SiteChunk;

    fn next(&mut self) -> Option<SiteChunk> {
        if self.next_member >= self.config.members {
            return None;
        }
        let first_member = self.next_member;
        let end = (first_member + self.chunk_members as u64).min(self.config.members);
        let count = (end - first_member) as usize;
        let mut chunk = SiteChunk {
            first_member,
            follows: Vec::with_capacity(count),
            profiles: Vec::with_capacity(count),
            pymk: Vec::with_capacity(count),
        };
        for member in first_member..end {
            let (follows, profile, pymk) = self.generate_member(member);
            chunk.follows.push(follows);
            chunk.profiles.push(profile);
            chunk.pymk.push(pymk);
        }
        self.next_member = end;
        Some(chunk)
    }
}

impl SiteGraph {
    /// Generates the population. Pure function of `config` (including its
    /// seed): one RNG per member, derived via [`split_seed`]. Implemented
    /// over the chunked generator, so the bulk and streaming paths cannot
    /// drift apart.
    pub fn generate(config: &SiteGraphConfig) -> SiteGraph {
        Self::from_chunks(
            config,
            SiteGraphChunks::new(config, config.members.max(1) as usize),
        )
    }

    /// Assembles a graph from generated chunks (they must arrive in member
    /// order and cover the whole population — the streaming loader's
    /// accumulation path).
    pub fn from_chunks(
        config: &SiteGraphConfig,
        chunks: impl IntoIterator<Item = SiteChunk>,
    ) -> SiteGraph {
        let mut follows = Vec::with_capacity(config.members as usize);
        let mut profiles = Vec::with_capacity(config.members as usize);
        let mut pymk = Vec::with_capacity(config.members as usize);
        for chunk in chunks {
            assert_eq!(
                chunk.first_member,
                follows.len() as u64,
                "chunks must arrive in member order, gap-free"
            );
            follows.extend(chunk.follows);
            profiles.extend(chunk.profiles);
            pymk.extend(chunk.pymk);
        }
        assert_eq!(
            follows.len() as u64,
            config.members,
            "chunks must cover the whole population"
        );
        SiteGraph {
            config: config.clone(),
            follows,
            profiles,
            pymk,
        }
    }

    /// The config this graph was generated from.
    pub fn config(&self) -> &SiteGraphConfig {
        &self.config
    }

    /// Member population size.
    pub fn member_count(&self) -> u64 {
        self.config.members
    }

    /// Company population size.
    pub fn company_count(&self) -> u64 {
        self.config.companies
    }

    /// The companies `member` initially follows (sorted, deduplicated).
    pub fn follows_of(&self, member: u64) -> &[u64] {
        &self.follows[member as usize]
    }

    /// The profile text of `member`.
    pub fn profile_of(&self, member: u64) -> &str {
        &self.profiles[member as usize]
    }

    /// The PYMK record of `member`.
    pub fn pymk_of(&self, member: u64) -> &PymkRecord {
        &self.pymk[member as usize]
    }

    /// Total follow edges.
    pub fn edge_count(&self) -> usize {
        self.follows.iter().map(Vec::len).sum()
    }

    /// Per-company follower counts (index = company id).
    pub fn follower_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.config.companies as usize];
        for list in &self.follows {
            for &company in list {
                counts[company as usize] += 1;
            }
        }
        counts
    }

    /// Structural self-consistency: every followed company id is in range,
    /// every list is sorted and duplicate-free, and every member has a
    /// profile and a PYMK record whose recommendations stay in the member
    /// id space.
    pub fn verify_consistency(&self) -> Result<(), String> {
        if self.follows.len() != self.config.members as usize
            || self.profiles.len() != self.config.members as usize
            || self.pymk.len() != self.config.members as usize
        {
            return Err("per-member vectors disagree with member count".into());
        }
        for (member, list) in self.follows.iter().enumerate() {
            for pair in list.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(format!(
                        "member {member}: follow list unsorted or duplicated at {pair:?}"
                    ));
                }
            }
            if let Some(&company) = list.last() {
                if company >= self.config.companies {
                    return Err(format!(
                        "member {member}: dangling company id {company}"
                    ));
                }
            }
        }
        for record in &self.pymk {
            if record.recommendations.len() != self.config.recs_per_member {
                return Err(format!(
                    "member {}: PYMK list has {} recs, want {}",
                    record.member,
                    record.recommendations.len(),
                    self.config.recs_per_member
                ));
            }
            if record.recommendations.iter().any(|&(id, _)| id >= self.config.members) {
                return Err(format!("member {}: dangling PYMK member id", record.member));
            }
        }
        Ok(())
    }
}

/// The closed-loop traffic mix over the four serving paths. Fractions are
/// normalized at construction; the defaults follow the paper's
/// read-dominated site profile.
#[derive(Debug, Clone, Copy)]
pub struct SiteMix {
    /// Profile document reads (Espresso).
    pub profile_reads: f64,
    /// PYMK lookups (Voldemort read-only store).
    pub pymk_reads: f64,
    /// Follow-edge writes (primary sqlstore → Databus → caches).
    pub follow_writes: f64,
    /// Activity events (Kafka).
    pub activity_events: f64,
}

impl SiteMix {
    /// The default site profile: read-heavy with a visible write stream.
    pub fn site_default() -> Self {
        SiteMix {
            profile_reads: 0.50,
            pymk_reads: 0.20,
            follow_writes: 0.10,
            activity_events: 0.20,
        }
    }

    fn normalized(&self) -> [f64; 4] {
        let total =
            self.profile_reads + self.pymk_reads + self.follow_writes + self.activity_events;
        assert!(total > 0.0, "mix must have positive mass");
        [
            self.profile_reads / total,
            self.pymk_reads / total,
            self.follow_writes / total,
            self.activity_events / total,
        ]
    }
}

/// One operation against the site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SiteOp {
    /// Read a member's profile document (Espresso).
    ProfileRead(u64),
    /// Look up a member's PYMK recommendations (Voldemort RO).
    PymkRead(u64),
    /// `member` follows `company` (primary store write).
    Follow {
        /// Acting member.
        member: u64,
        /// Followed company.
        company: u64,
    },
    /// An activity event emitted by `member` (Kafka).
    Activity {
        /// Acting member.
        member: u64,
        /// Event payload text.
        event: String,
    },
}

impl SiteOp {
    /// The serving tier this op exercises (histogram/counter key).
    pub fn tier(&self) -> &'static str {
        match self {
            SiteOp::ProfileRead(_) => "profile_read",
            SiteOp::PymkRead(_) => "pymk_read",
            SiteOp::Follow { .. } => "follow_write",
            SiteOp::Activity { .. } => "activity",
        }
    }
}

/// The per-driver operation generator: hot-profile read skew, power-law
/// write skew, Zipfian follow targets.
#[derive(Debug, Clone)]
pub struct SiteWorkload {
    mix: [f64; 4],
    /// Read skew: hot profiles draw most of the read traffic.
    hot_members: Zipfian,
    /// Write skew: a flatter power law — active members write most.
    active_members: Zipfian,
    /// Follow-target skew (hot companies).
    companies: Zipfian,
    members: u64,
}

impl SiteWorkload {
    /// Builds the workload over a population of `members` × `companies`.
    pub fn new(members: u64, companies: u64, mix: SiteMix) -> Self {
        SiteWorkload {
            mix: mix.normalized(),
            hot_members: Zipfian::ycsb(members),
            active_members: Zipfian::new(members, 0.7),
            companies: Zipfian::ycsb(companies),
            members,
        }
    }

    /// Draws the next operation from `rng`.
    pub fn next_op(&self, rng: &mut impl Rng) -> SiteOp {
        let pick: f64 = rng.random();
        if pick < self.mix[0] {
            SiteOp::ProfileRead(self.hot_members.sample(rng))
        } else if pick < self.mix[0] + self.mix[1] {
            SiteOp::PymkRead(self.hot_members.sample(rng))
        } else if pick < self.mix[0] + self.mix[1] + self.mix[2] {
            SiteOp::Follow {
                member: self.active_members.sample(rng),
                company: self.companies.sample(rng),
            }
        } else {
            let member = self.active_members.sample(rng);
            let page = rng.random_range(0..64u64);
            SiteOp::Activity {
                member,
                event: format!("event=page_view member={member} page=/feed/{page}"),
            }
        }
    }

    /// The deterministic op stream of one driver: an independent RNG per
    /// `(seed, driver)` via [`split_seed`], so concurrent drivers cannot
    /// skew each other's mix and any driver's stream replays exactly.
    pub fn ops_for_driver(&self, seed: u64, driver: u64, count: usize) -> Vec<SiteOp> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(split_seed(seed, driver));
        (0..count).map(|_| self.next_op(&mut rng)).collect()
    }

    /// Member population size.
    pub fn member_count(&self) -> u64 {
        self.members
    }
}

/// Folds driver op streams into the expected downstream follow state:
/// member → set of companies that must each appear **exactly once** in the
/// member's cached follow list after the pipeline drains (the write-
/// conservation gate's oracle). `initial` contributes each member's
/// seeded edges.
pub fn expected_follow_sets(
    initial: &SiteGraph,
    streams: &[Vec<SiteOp>],
) -> std::collections::BTreeMap<u64, std::collections::BTreeSet<u64>> {
    let mut expected: std::collections::BTreeMap<u64, std::collections::BTreeSet<u64>> =
        std::collections::BTreeMap::new();
    for stream in streams {
        for op in stream {
            if let SiteOp::Follow { member, company } = op {
                expected
                    .entry(*member)
                    .or_insert_with(|| {
                        initial.follows_of(*member).iter().copied().collect()
                    })
                    .insert(*company);
            }
        }
    }
    expected
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seed_deterministic() {
        let config = SiteGraphConfig::smoke(300, 7);
        let a = SiteGraph::generate(&config);
        let b = SiteGraph::generate(&config);
        assert_eq!(a, b);
        let c = SiteGraph::generate(&SiteGraphConfig::smoke(300, 8));
        assert_ne!(a, c);
    }

    #[test]
    fn chunked_generation_matches_bulk_at_any_chunk_size() {
        let config = SiteGraphConfig::smoke(317, 11);
        let bulk = SiteGraph::generate(&config);
        for chunk_members in [1usize, 2, 7, 64, 317, 1000] {
            let chunks = SiteGraphChunks::new(&config, chunk_members);
            let streamed = SiteGraph::from_chunks(&config, chunks);
            assert_eq!(bulk, streamed, "chunk size {chunk_members} diverged");
        }
    }

    #[test]
    fn chunk_rows_cover_the_population_in_order() {
        let config = SiteGraphConfig::smoke(100, 4);
        let mut seen = 0u64;
        let mut total_chunks = 0usize;
        let chunks = SiteGraphChunks::new(&config, 13);
        assert_eq!(chunks.chunk_count(), 8);
        for chunk in chunks {
            assert!(chunk.len() <= 13 && !chunk.is_empty());
            for (member, follows, profile, pymk) in chunk.rows() {
                assert_eq!(member, seen);
                assert_eq!(pymk.member, member);
                assert!(profile.starts_with(&format!("member {member} ")));
                assert!(follows.windows(2).all(|w| w[0] < w[1]));
                seen += 1;
            }
            total_chunks += 1;
        }
        assert_eq!(seen, config.members);
        assert_eq!(total_chunks, 8);
    }

    #[test]
    fn graph_is_self_consistent() {
        let graph = SiteGraph::generate(&SiteGraphConfig::smoke(500, 3));
        graph.verify_consistency().unwrap();
        assert!(graph.edge_count() > 0);
    }

    #[test]
    fn follower_counts_are_zipf_skewed() {
        let graph = SiteGraph::generate(&SiteGraphConfig {
            members: 2000,
            companies: 200,
            max_follows: 24,
            recs_per_member: 3,
            seed: 5,
        });
        let mut counts = graph.follower_counts();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = counts.iter().sum();
        let head: usize = counts.iter().take(counts.len() / 10).sum();
        assert!(
            head as f64 > total as f64 * 0.4,
            "top-10% companies hold {head}/{total} edges — not Zipf-shaped"
        );
    }

    #[test]
    fn mix_fractions_hold_per_driver() {
        let workload = SiteWorkload::new(1000, 100, SiteMix::site_default());
        for driver in 0..4u64 {
            let ops = workload.ops_for_driver(9, driver, 4000);
            let reads = ops
                .iter()
                .filter(|o| matches!(o, SiteOp::ProfileRead(_)))
                .count();
            let ratio = reads as f64 / ops.len() as f64;
            assert!(
                (0.45..=0.55).contains(&ratio),
                "driver {driver}: profile-read ratio {ratio}"
            );
        }
    }

    #[test]
    fn driver_streams_are_independent_and_deterministic() {
        let workload = SiteWorkload::new(500, 50, SiteMix::site_default());
        let a = workload.ops_for_driver(1, 0, 200);
        assert_eq!(a, workload.ops_for_driver(1, 0, 200));
        assert_ne!(a, workload.ops_for_driver(1, 1, 200));
        assert_ne!(a, workload.ops_for_driver(2, 0, 200));
    }

    #[test]
    fn expected_follow_sets_union_initial_and_ops() {
        let graph = SiteGraph::generate(&SiteGraphConfig::smoke(50, 1));
        let streams = vec![
            vec![
                SiteOp::Follow {
                    member: 3,
                    company: 1,
                },
                SiteOp::ProfileRead(3),
            ],
            vec![SiteOp::Follow {
                member: 3,
                company: 1,
            }],
        ];
        let expected = expected_follow_sets(&graph, &streams);
        let set = &expected[&3];
        assert!(set.contains(&1));
        for company in graph.follows_of(3) {
            assert!(set.contains(company));
        }
        // Members with no follow ops are absent (their seeded state is
        // checked via the graph directly).
        assert!(!expected.contains_key(&0) || !graph.follows_of(0).is_empty());
    }

    #[test]
    fn split_seed_decorrelates_streams() {
        let mut seen = std::collections::HashSet::new();
        for stream in 0..1000 {
            assert!(seen.insert(split_seed(42, stream)));
        }
        assert_eq!(split_seed(42, 7), split_seed(42, 7));
    }
}
