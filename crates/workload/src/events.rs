//! Activity-event synthesis.
//!
//! Kafka's input is "user activity events corresponding to logins,
//! page-views, clicks, 'likes', sharing, comments, and search queries"
//! (§V). Real activity logs are highly self-similar (repeated event names,
//! URL prefixes, field keys), which is what makes the paper's "save about
//! 2/3 of the network bandwidth with compression" possible. The generator
//! reproduces that text shape.

use rand::Rng;

use crate::zipf::Zipfian;

const EVENT_TYPES: [&str; 7] = [
    "page_view", "login", "click", "like", "share", "comment", "search",
];

const PAGES: [&str; 8] = [
    "/in/profile",
    "/feed/updates",
    "/jobs/search",
    "/company/follow",
    "/groups/discussion",
    "/people/pymk",
    "/inbox/messages",
    "/settings/privacy",
];

/// Generates one activity-event log line.
pub fn activity_event(rng: &mut impl Rng, member_space: u64) -> String {
    let event = EVENT_TYPES[rng.random_range(0..EVENT_TYPES.len())];
    let page = PAGES[rng.random_range(0..PAGES.len())];
    let member = rng.random_range(0..member_space);
    let session = rng.random_range(0..1_000_000u64);
    format!(
        "event={event} member={member:09} page={page} session={session:06} ua=browser/linkedin-web dc=ela4"
    )
}

/// Generates a batch of events with a Zipfian member distribution (a few
/// very active members), the shape online consumers see.
pub fn activity_batch(rng: &mut impl Rng, zipf: &Zipfian, count: usize) -> Vec<String> {
    (0..count)
        .map(|_| {
            let member = zipf.sample(rng);
            let event = EVENT_TYPES[rng.random_range(0..EVENT_TYPES.len())];
            let page = PAGES[rng.random_range(0..PAGES.len())];
            format!(
                "event={event} member={member:09} page={page} ua=browser/linkedin-web dc=ela4"
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn events_have_the_expected_fields() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let line = activity_event(&mut rng, 1000);
        for field in ["event=", "member=", "page=", "session=", "dc="] {
            assert!(line.contains(field), "{line}");
        }
    }

    #[test]
    fn batches_compress_about_3x() {
        // The property the Kafka compression experiment relies on.
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let zipf = Zipfian::ycsb(100_000);
        let batch = activity_batch(&mut rng, &zipf, 500).join("\n");
        let packed = li_commons::compress::compress(batch.as_bytes());
        let ratio = batch.len() as f64 / packed.len() as f64;
        assert!(ratio > 2.5, "compression ratio {ratio:.2}");
    }

    #[test]
    fn zipfian_batch_has_hot_members() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let zipf = Zipfian::ycsb(10_000);
        let batch = activity_batch(&mut rng, &zipf, 2000);
        let hot = batch
            .iter()
            .filter(|l| l.contains("member=000000000"))
            .count();
        assert!(hot > 50, "hottest member appears {hot} times");
    }
}
