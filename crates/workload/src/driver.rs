//! Mixed read/write operation streams and latency recording.

use li_commons::hist::Histogram;
use li_commons::metrics::MetricsScope;
use rand::{Rng, SeedableRng};

use crate::keys::KeyDistribution;

/// One operation in a workload stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operation {
    /// Read the key.
    Read(Vec<u8>),
    /// Write the key with a value of the attached size.
    Write(Vec<u8>, usize),
}

/// A mixed workload: read fraction, key distribution, value size. The
/// paper's read-write cluster profile is `MixedWorkload::sixty_forty(...)`.
#[derive(Debug, Clone)]
pub struct MixedWorkload {
    read_fraction: f64,
    keys: KeyDistribution,
    value_size: usize,
    key_formatter: fn(u64) -> Vec<u8>,
}

impl MixedWorkload {
    /// Creates a workload.
    pub fn new(read_fraction: f64, keys: KeyDistribution, value_size: usize) -> Self {
        MixedWorkload {
            read_fraction: read_fraction.clamp(0.0, 1.0),
            keys,
            value_size,
            key_formatter: crate::keys::member_key,
        }
    }

    /// The paper's read-write cluster mix: "about 60% reads and 40% writes".
    pub fn sixty_forty(keys: KeyDistribution, value_size: usize) -> Self {
        Self::new(0.6, keys, value_size)
    }

    /// Overrides the key formatting function.
    #[must_use]
    pub fn with_key_formatter(mut self, f: fn(u64) -> Vec<u8>) -> Self {
        self.key_formatter = f;
        self
    }

    /// Draws the next operation.
    pub fn next_op(&self, rng: &mut impl Rng) -> Operation {
        let key = (self.key_formatter)(self.keys.sample(rng));
        if rng.random::<f64>() < self.read_fraction {
            Operation::Read(key)
        } else {
            Operation::Write(key, self.value_size)
        }
    }

    /// Generates a whole stream.
    pub fn ops(&self, rng: &mut impl Rng, count: usize) -> Vec<Operation> {
        (0..count).map(|_| self.next_op(rng)).collect()
    }

    /// Deterministic op stream: the same `(workload, seed, count)` always
    /// yields the same operations. This is the chaos harness's workload
    /// source — op streams must be a pure function of the run seed so a
    /// failing run replays byte-for-byte.
    pub fn ops_seeded(&self, seed: u64, count: usize) -> Vec<Operation> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        self.ops(&mut rng, count)
    }

    /// Deterministic op stream for ONE driver of a concurrent group.
    ///
    /// Concurrent drivers must never share a mutable RNG cursor: with a
    /// shared cursor behind a lock, each driver sees an arbitrary
    /// interleaved *subsequence* of the stream, so the per-driver
    /// read/write ratio — and replayability — are at the mercy of thread
    /// scheduling. Instead every `(seed, driver)` pair gets its own RNG
    /// via [`crate::site::split_seed`]; the streams are decorrelated,
    /// each independently holds the configured mix, and each replays
    /// exactly regardless of how many other drivers run beside it.
    pub fn ops_for_driver(&self, seed: u64, driver: u64, count: usize) -> Vec<Operation> {
        self.ops_seeded(crate::site::split_seed(seed, driver), count)
    }

    /// The unbounded form of [`Self::ops_for_driver`]: an iterator a
    /// closed-loop driver thread can pull from until told to stop, with
    /// the same per-driver determinism guarantee.
    pub fn driver_stream(&self, seed: u64, driver: u64) -> DriverStream<'_> {
        DriverStream {
            workload: self,
            rng: rand::rngs::StdRng::seed_from_u64(crate::site::split_seed(seed, driver)),
        }
    }

    /// Number of distinct keys in the space.
    pub fn key_count(&self) -> u64 {
        self.keys.key_count()
    }
}

/// Infinite per-driver operation stream (see
/// [`MixedWorkload::driver_stream`]). Owns its RNG — no shared cursor.
#[derive(Debug)]
pub struct DriverStream<'a> {
    workload: &'a MixedWorkload,
    rng: rand::rngs::StdRng,
}

impl Iterator for DriverStream<'_> {
    type Item = Operation;

    fn next(&mut self) -> Option<Operation> {
        Some(self.workload.next_op(&mut self.rng))
    }
}

/// Separate read/write latency recorders, reported the way the paper
/// quotes its numbers (average + percentile latencies per op class).
#[derive(Debug, Default, Clone)]
pub struct LatencyReport {
    /// Read latencies (ns).
    pub reads: Histogram,
    /// Write latencies (ns).
    pub writes: Histogram,
}

impl LatencyReport {
    /// Creates empty recorders.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one operation's latency.
    pub fn record(&mut self, op: &Operation, nanos: u64) {
        match op {
            Operation::Read(_) => self.reads.record(nanos),
            Operation::Write(_, _) => self.writes.record(nanos),
        }
    }

    /// Publishes the recorded distributions into a metrics scope as
    /// `<scope>.read.latency_ns` and `<scope>.write.latency_ns`, so a
    /// driver run shows up in the same snapshot as the system's own
    /// server-side metrics.
    pub fn publish(&self, scope: &MetricsScope) {
        scope.histogram("read.latency_ns").merge_from(&self.reads);
        scope.histogram("write.latency_ns").merge_from(&self.writes);
    }

    /// Two-line summary in the paper's terms.
    pub fn summary(&self) -> String {
        format!(
            "reads:  {}\nwrites: {}",
            self.reads.summary_ms(),
            self.writes.summary_ms()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mix_ratio_holds() {
        let workload = MixedWorkload::sixty_forty(KeyDistribution::uniform(1000), 100);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let ops = workload.ops(&mut rng, 10_000);
        let reads = ops.iter().filter(|o| matches!(o, Operation::Read(_))).count();
        let ratio = reads as f64 / ops.len() as f64;
        assert!((0.57..=0.63).contains(&ratio), "read ratio {ratio}");
    }

    #[test]
    fn pure_read_and_pure_write() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let reads = MixedWorkload::new(1.0, KeyDistribution::uniform(10), 1).ops(&mut rng, 100);
        assert!(reads.iter().all(|o| matches!(o, Operation::Read(_))));
        let writes = MixedWorkload::new(0.0, KeyDistribution::uniform(10), 1).ops(&mut rng, 100);
        assert!(writes.iter().all(|o| matches!(o, Operation::Write(_, _))));
    }

    #[test]
    fn seeded_ops_are_deterministic() {
        let workload = MixedWorkload::sixty_forty(KeyDistribution::uniform(100), 64);
        assert_eq!(workload.ops_seeded(9, 500), workload.ops_seeded(9, 500));
        assert_ne!(workload.ops_seeded(9, 500), workload.ops_seeded(10, 500));
        // A prefix of a longer stream is the shorter stream.
        let long = workload.ops_seeded(9, 500);
        assert_eq!(&long[..100], &workload.ops_seeded(9, 100)[..]);
    }

    /// Regression: N concurrent drivers sharing one `MixedWorkload` must
    /// each see the configured read/write mix AND a replayable stream.
    /// With a shared mutable RNG cursor, thread interleaving hands each
    /// driver an arbitrary subsequence — the per-driver ratio drifts and
    /// nothing replays. The per-driver seeded split closes both holes.
    #[test]
    fn concurrent_drivers_keep_mix_and_determinism() {
        use std::sync::Arc;
        let workload = Arc::new(MixedWorkload::sixty_forty(
            KeyDistribution::zipfian(10_000),
            128,
        ));
        const DRIVERS: u64 = 8;
        const OPS: usize = 5_000;
        let handles: Vec<_> = (0..DRIVERS)
            .map(|driver| {
                let workload = Arc::clone(&workload);
                std::thread::spawn(move || workload.ops_for_driver(77, driver, OPS))
            })
            .collect();
        let streams: Vec<Vec<Operation>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (driver, ops) in streams.iter().enumerate() {
            let reads = ops.iter().filter(|o| matches!(o, Operation::Read(_))).count();
            let ratio = reads as f64 / ops.len() as f64;
            assert!(
                (0.57..=0.63).contains(&ratio),
                "driver {driver} read ratio skewed to {ratio} under concurrency"
            );
            // Concurrency must not perturb the stream: it replays exactly.
            assert_eq!(
                ops,
                &workload.ops_for_driver(77, driver as u64, OPS),
                "driver {driver} stream not replayable"
            );
        }
        // Drivers draw from decorrelated streams, not copies of one.
        assert_ne!(streams[0], streams[1]);
        // The iterator form agrees with the batch form.
        let via_stream: Vec<Operation> =
            workload.driver_stream(77, 0).take(OPS).collect();
        assert_eq!(via_stream, streams[0]);
    }

    #[test]
    fn latency_report_separates_classes() {
        let mut report = LatencyReport::new();
        report.record(&Operation::Read(vec![]), 1_000_000);
        report.record(&Operation::Write(vec![], 10), 3_000_000);
        assert_eq!(report.reads.count(), 1);
        assert_eq!(report.writes.count(), 1);
        assert!(report.summary().contains("reads:"));
    }

    #[test]
    fn publish_lands_in_registry_snapshot() {
        use li_commons::metrics::MetricsRegistry;
        let mut report = LatencyReport::new();
        report.record(&Operation::Read(vec![]), 1_000_000);
        report.record(&Operation::Read(vec![]), 2_000_000);
        report.record(&Operation::Write(vec![], 10), 3_000_000);
        let registry = MetricsRegistry::new();
        report.publish(&registry.scope("workload"));
        let snapshot = registry.snapshot();
        let reads = snapshot.histogram("workload.read.latency_ns").unwrap();
        assert_eq!(reads.count, 2);
        let writes = snapshot.histogram("workload.write.latency_ns").unwrap();
        assert_eq!(writes.count, 1);
    }
}
