//! # li-workload — workload synthesis for the benchmark harness
//!
//! The paper characterizes its production workloads by distribution rather
//! than by trace: the read-write Voldemort cluster sees "about 60% reads
//! and 40% writes"; the Company Follow stores "have a Zipfian distribution
//! for their data size"; Kafka ingests self-similar activity-log text
//! ("user activity events corresponding to logins, page-views, clicks...").
//! This crate generates synthetic workloads with exactly those shapes (the
//! substitution for LinkedIn's production traces, per DESIGN.md):
//!
//! * [`zipf`] — a Zipfian sampler (Gray et al. rejection-free method, the
//!   same construction YCSB uses).
//! * [`keys`] — uniform/Zipfian key streams over formatted key spaces.
//! * [`events`] — activity-event text with realistic redundancy for the
//!   compression experiments.
//! * [`datasets`] — the two application datasets §II.C describes:
//!   Company Follow (two association stores with Zipfian list sizes) and
//!   People You May Know (per-member scored recommendation lists).
//! * [`driver`] — mixed read/write operation streams (e.g. 60/40) with a
//!   latency recorder.
//! * [`site`] — the site-scale closed-loop population: an LDBC-shaped
//!   social graph (Zipfian follower counts, hot profiles, power-law write
//!   skew) plus per-driver-seeded mixed site traffic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod driver;
pub mod events;
pub mod keys;
pub mod site;
pub mod zipf;

pub use driver::{MixedWorkload, Operation};
pub use site::{
    SiteChunk, SiteGraph, SiteGraphChunks, SiteGraphConfig, SiteMix, SiteOp, SiteWorkload,
};
pub use zipf::Zipfian;
