//! Key-stream generators.

use rand::Rng;

use crate::zipf::Zipfian;

/// How keys are drawn from the key space.
#[derive(Debug, Clone)]
pub enum KeyDistribution {
    /// Uniform over `0..n`.
    Uniform(u64),
    /// Zipfian over `0..n` (hot keys exist).
    Zipfian(Zipfian),
}

impl KeyDistribution {
    /// Uniform key space of `n` keys.
    pub fn uniform(n: u64) -> Self {
        KeyDistribution::Uniform(n)
    }

    /// YCSB-skewed key space of `n` keys.
    pub fn zipfian(n: u64) -> Self {
        KeyDistribution::Zipfian(Zipfian::ycsb(n))
    }

    /// Draws a key id.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        match self {
            KeyDistribution::Uniform(n) => rng.random_range(0..*n),
            KeyDistribution::Zipfian(zipf) => zipf.sample(rng),
        }
    }

    /// Size of the key space.
    pub fn key_count(&self) -> u64 {
        match self {
            KeyDistribution::Uniform(n) => *n,
            KeyDistribution::Zipfian(zipf) => zipf.item_count(),
        }
    }
}

/// Formats key ids as the member-keyed byte keys used across examples and
/// benches (`member:000000042` — fixed width so keys sort naturally).
pub fn member_key(id: u64) -> Vec<u8> {
    format!("member:{id:09}").into_bytes()
}

/// Company-keyed variant.
pub fn company_key(id: u64) -> Vec<u8> {
    format!("company:{id:07}").into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_space() {
        let dist = KeyDistribution::uniform(100);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            seen.insert(dist.sample(&mut rng));
        }
        assert!(seen.len() > 95, "covered {}", seen.len());
    }

    #[test]
    fn zipfian_is_skewed() {
        let dist = KeyDistribution::zipfian(1000);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let hot = (0..10_000).filter(|_| dist.sample(&mut rng) < 10).count();
        assert!(hot > 2000, "hot count {hot}");
    }

    #[test]
    fn formatted_keys_sort_numerically() {
        assert!(member_key(9) < member_key(10));
        assert!(company_key(99) < company_key(100));
    }
}
