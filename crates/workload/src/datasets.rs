//! Application dataset synthesizers for the two Voldemort case studies of
//! §II.C: Company Follow and People You May Know.

use rand::Rng;

use crate::keys::{company_key, member_key};
use crate::zipf::{zipf_size, Zipfian};

/// One member→companies association (the first Company Follow store).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberFollows {
    /// The member key.
    pub key: Vec<u8>,
    /// Serialized list of followed company ids.
    pub value: Vec<u8>,
}

/// One company→members association (the second Company Follow store).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompanyFollowers {
    /// The company key.
    pub key: Vec<u8>,
    /// Serialized list of follower member ids.
    pub value: Vec<u8>,
}

/// Builds the Company Follow dataset: "both the stores have a Zipfian
/// distribution for their data size" — a few companies have huge follower
/// lists, a few members follow very many companies.
pub fn company_follow_dataset(
    rng: &mut impl Rng,
    members: u64,
    companies: u64,
    max_list: usize,
) -> (Vec<MemberFollows>, Vec<CompanyFollowers>) {
    let member_zipf = Zipfian::ycsb(members);
    let company_zipf = Zipfian::ycsb(companies);

    let member_rows = (0..members)
        .map(|m| {
            let list_len = zipf_size(&member_zipf, rng, max_list.min(companies as usize));
            let list: Vec<String> = (0..list_len)
                .map(|_| company_zipf.sample(rng).to_string())
                .collect();
            MemberFollows {
                key: member_key(m),
                value: list.join(",").into_bytes(),
            }
        })
        .collect();

    let company_rows = (0..companies)
        .map(|c| {
            let list_len = zipf_size(&company_zipf, rng, max_list);
            let list: Vec<String> = (0..list_len)
                .map(|_| rng.random_range(0..members).to_string())
                .collect();
            CompanyFollowers {
                key: company_key(c),
                value: list.join(",").into_bytes(),
            }
        })
        .collect();

    (member_rows, company_rows)
}

/// One PYMK record: "for every member id, a list of recommended member
/// ids, along with a score."
#[derive(Debug, Clone, PartialEq)]
pub struct PymkRecord {
    /// The member.
    pub member: u64,
    /// `(recommended member, score)` pairs, best first.
    pub recommendations: Vec<(u64, f32)>,
}

impl PymkRecord {
    /// Serializes as the read-only store value.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.recommendations
            .iter()
            .map(|(id, score)| format!("{id}:{score:.4}"))
            .collect::<Vec<_>>()
            .join(",")
            .into_bytes()
    }

    /// Parses a stored value.
    pub fn from_bytes(member: u64, data: &[u8]) -> Option<Self> {
        let text = std::str::from_utf8(data).ok()?;
        let recommendations = if text.is_empty() {
            Vec::new()
        } else {
            text.split(',')
                .map(|pair| {
                    let (id, score) = pair.split_once(':')?;
                    Some((id.parse().ok()?, score.parse().ok()?))
                })
                .collect::<Option<Vec<_>>>()?
        };
        Some(PymkRecord {
            member,
            recommendations,
        })
    }
}

/// Builds a PYMK dataset: `recs_per_member` scored recommendations per
/// member. "Due to continuous iterations on the prediction algorithm and
/// the rapidly changing social graph, most of the scores change between
/// runs" — pass a different `run_seed` component via the RNG per run.
pub fn pymk_dataset(
    rng: &mut impl Rng,
    members: u64,
    recs_per_member: usize,
) -> Vec<PymkRecord> {
    (0..members)
        .map(|member| {
            let mut recommendations: Vec<(u64, f32)> = (0..recs_per_member)
                .map(|_| (rng.random_range(0..members), rng.random::<f32>()))
                .collect();
            recommendations
                .sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            PymkRecord {
                member,
                recommendations,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn company_follow_sizes_are_zipfian() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (members, companies) = company_follow_dataset(&mut rng, 500, 100, 1000);
        assert_eq!(members.len(), 500);
        assert_eq!(companies.len(), 100);
        let sizes: Vec<usize> = companies.iter().map(|c| c.value.len()).collect();
        let max = *sizes.iter().max().unwrap();
        let median = {
            let mut s = sizes.clone();
            s.sort_unstable();
            s[s.len() / 2]
        };
        assert!(max > median * 3, "skew expected: max {max}, median {median}");
        let min = *sizes.iter().min().unwrap();
        assert!(max > min * 20, "long tail expected: max {max}, min {min}");
    }

    #[test]
    fn pymk_round_trip_and_sorted_scores() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let dataset = pymk_dataset(&mut rng, 50, 10);
        assert_eq!(dataset.len(), 50);
        for record in &dataset {
            assert_eq!(record.recommendations.len(), 10);
            for pair in record.recommendations.windows(2) {
                assert!(pair[0].1 >= pair[1].1, "scores sorted desc");
            }
            let bytes = record.to_bytes();
            let parsed = PymkRecord::from_bytes(record.member, &bytes).unwrap();
            assert_eq!(parsed.recommendations.len(), 10);
            assert_eq!(parsed.recommendations[0].0, record.recommendations[0].0);
        }
    }

    #[test]
    fn scores_change_between_runs() {
        let mut run1 = rand::rngs::StdRng::seed_from_u64(10);
        let mut run2 = rand::rngs::StdRng::seed_from_u64(11);
        let a = pymk_dataset(&mut run1, 20, 5);
        let b = pymk_dataset(&mut run2, 20, 5);
        assert_ne!(a[0].recommendations, b[0].recommendations);
    }

    #[test]
    fn empty_pymk_value_parses() {
        let parsed = PymkRecord::from_bytes(7, b"").unwrap();
        assert!(parsed.recommendations.is_empty());
    }
}
