//! Consistent hashing over fixed logical partitions, with zones.
//!
//! Paper §II.B (Routing): "Keys ... are hashed to a hash ring — a
//! representation of the key space split into equal sized logical
//! partitions. Every node in a cluster is then responsible for a certain
//! set of partitions. ... A key is hashed to a logical partition, after
//! which we jump the ring till we find N-1 other partitions on different
//! nodes to store the replicas. This non-order preserving partitioning
//! scheme prevents formation of hot spots."
//!
//! The zoned variant reproduces the multi-datacenter extension: "We group
//! co-located nodes into logical clusters called 'zones' ... The routing
//! algorithm now jumps the consistent hash ring with an extra constraint to
//! satisfy number of zones required for the request."
//!
//! Because the full topology is static metadata held by every node (unlike
//! Chord's partial finger tables), a lookup is O(1) hash + O(ring walk)
//! with no network hops — the paper's headline routing claim, benchmarked
//! against a Chord baseline in `li-bench`.

use serde::{get_field, object, DeError, Deserialize, JsonKey, JsonValue, Serialize};
use std::collections::BTreeMap;
use std::fmt;

use crate::fnv::fnv1a;

/// Identifier of a physical node in a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

/// Identifier of a logical partition on the hash ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionId(pub u32);

/// Identifier of a zone (a co-located group of nodes, e.g. a datacenter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ZoneId(pub u8);

/// The id newtypes serialize as their bare integers (and as decimal
/// strings when used as JSON object keys), matching serde's newtype and
/// integer-key behavior.
macro_rules! id_serde {
    ($($id:ident($inner:ty)),*) => {$(
        impl Serialize for $id {
            fn to_json_value(&self) -> JsonValue {
                self.0.to_json_value()
            }
        }
        impl Deserialize for $id {
            fn from_json_value(value: &JsonValue) -> Result<Self, DeError> {
                <$inner>::from_json_value(value).map($id)
            }
        }
        impl JsonKey for $id {
            fn to_key(&self) -> String {
                self.0.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                <$inner>::from_key(key).map($id)
            }
        }
    )*};
}

id_serde!(NodeId(u16), PartitionId(u32), ZoneId(u8));

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ZoneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "zone-{}", self.0)
    }
}

/// Errors from ring construction or lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RingError {
    /// The ring has no partitions.
    Empty,
    /// A partition id is out of range or assigned twice / not at all.
    BadAssignment(String),
    /// The replication request cannot be satisfied by the topology
    /// (e.g. more replicas than distinct nodes, or more zones than exist).
    Unsatisfiable(String),
}

impl fmt::Display for RingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingError::Empty => write!(f, "ring has no partitions"),
            RingError::BadAssignment(msg) => write!(f, "bad partition assignment: {msg}"),
            RingError::Unsatisfiable(msg) => write!(f, "unsatisfiable replication: {msg}"),
        }
    }
}

impl std::error::Error for RingError {}

/// The full cluster topology: every partition's owner and every node's zone.
///
/// Cloneable and cheap to share; Voldemort replicates this to every node
/// and every client ("we store the complete topology metadata on every
/// node").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// `owner[p]` is the node owning logical partition `p`.
    owner: Vec<NodeId>,
    /// Zone of each node.
    zones: BTreeMap<NodeId, ZoneId>,
    /// Cached count of distinct zones (lookups are O(1), per the paper's
    /// routing claim — nothing on the request path may scan the topology).
    zone_count: usize,
}

impl Serialize for HashRing {
    fn to_json_value(&self) -> JsonValue {
        object(vec![
            ("owner", self.owner.to_json_value()),
            ("zones", self.zones.to_json_value()),
            ("zone_count", self.zone_count.to_json_value()),
        ])
    }
}

impl Deserialize for HashRing {
    fn from_json_value(value: &JsonValue) -> Result<Self, DeError> {
        Ok(HashRing {
            owner: get_field(value, "owner")?,
            zones: get_field(value, "zones")?,
            zone_count: get_field(value, "zone_count")?,
        })
    }
}

/// Counts distinct zones (admin-time only; the request path reads the
/// cached value).
fn count_zones(zones: &BTreeMap<NodeId, ZoneId>) -> usize {
    let mut words = [0u64; 4];
    let mut count = 0usize;
    for zone in zones.values() {
        let idx = (zone.0 >> 6) as usize;
        let bit = 1u64 << (zone.0 & 63);
        if words[idx] & bit == 0 {
            words[idx] |= bit;
            count += 1;
        }
    }
    count
}

impl HashRing {
    /// Builds a ring of `num_partitions` logical partitions distributed
    /// round-robin over `nodes` (all in [`ZoneId`] 0). Round-robin placement
    /// guarantees that walking consecutive partitions visits distinct nodes
    /// quickly, matching Voldemort's default cluster generator.
    pub fn balanced(num_partitions: u32, nodes: &[NodeId]) -> Result<Self, RingError> {
        if num_partitions == 0 || nodes.is_empty() {
            return Err(RingError::Empty);
        }
        let owner = (0..num_partitions)
            .map(|p| nodes[(p as usize) % nodes.len()])
            .collect();
        let zones: BTreeMap<NodeId, ZoneId> = nodes.iter().map(|&n| (n, ZoneId(0))).collect();
        let zone_count = count_zones(&zones);
        Ok(HashRing { owner, zones, zone_count })
    }

    /// Builds a ring from an explicit partition→node assignment plus a
    /// node→zone map. Every partition must be owned exactly once.
    pub fn from_assignment(
        owner: Vec<NodeId>,
        zones: BTreeMap<NodeId, ZoneId>,
    ) -> Result<Self, RingError> {
        if owner.is_empty() {
            return Err(RingError::Empty);
        }
        for (p, node) in owner.iter().enumerate() {
            if !zones.contains_key(node) {
                return Err(RingError::BadAssignment(format!(
                    "partition {p} owned by {node} which has no zone"
                )));
            }
        }
        let zone_count = count_zones(&zones);
        Ok(HashRing { owner, zones, zone_count })
    }

    /// Builds a zoned ring: `layout` maps each node to its zone; partitions
    /// are dealt round-robin across nodes interleaved by zone so replicas
    /// of consecutive partitions naturally spread across zones.
    pub fn zoned(num_partitions: u32, layout: &[(NodeId, ZoneId)]) -> Result<Self, RingError> {
        if num_partitions == 0 || layout.is_empty() {
            return Err(RingError::Empty);
        }
        // Interleave zones: z0n0, z1n0, z0n1, z1n1, ...
        let mut by_zone: BTreeMap<ZoneId, Vec<NodeId>> = BTreeMap::new();
        for &(node, zone) in layout {
            by_zone.entry(zone).or_default().push(node);
        }
        let max_len = by_zone.values().map(Vec::len).max().unwrap_or(0);
        let mut order = Vec::with_capacity(layout.len());
        for i in 0..max_len {
            for nodes in by_zone.values() {
                if let Some(&n) = nodes.get(i) {
                    order.push(n);
                }
            }
        }
        let owner = (0..num_partitions)
            .map(|p| order[(p as usize) % order.len()])
            .collect();
        let zones: BTreeMap<NodeId, ZoneId> = layout.iter().copied().collect();
        let zone_count = count_zones(&zones);
        Ok(HashRing { owner, zones, zone_count })
    }

    /// Number of logical partitions on the ring.
    pub fn num_partitions(&self) -> u32 {
        self.owner.len() as u32
    }

    /// All node ids present in the topology, sorted.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.zones.keys().copied().collect()
    }

    /// Zone of `node`, if the node is in the topology.
    pub fn zone_of(&self, node: NodeId) -> Option<ZoneId> {
        self.zones.get(&node).copied()
    }

    /// Owner of logical partition `partition`.
    pub fn owner_of(&self, partition: PartitionId) -> NodeId {
        self.owner[partition.0 as usize % self.owner.len()]
    }

    /// Partitions owned by `node`, in ring order.
    pub fn partitions_of(&self, node: NodeId) -> Vec<PartitionId> {
        self.owner
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n == node)
            .map(|(p, _)| PartitionId(p as u32))
            .collect()
    }

    /// Hashes `key` to its master logical partition.
    pub fn master_partition(&self, key: &[u8]) -> PartitionId {
        PartitionId((fnv1a(key) % self.owner.len() as u64) as u32)
    }

    /// Computes the replica partition list for `partition`: the partition
    /// itself plus the next `n - 1` partitions (walking the ring) that live
    /// on nodes not already chosen.
    pub fn replica_partitions(
        &self,
        partition: PartitionId,
        n: usize,
    ) -> Result<Vec<PartitionId>, RingError> {
        self.replica_partitions_zoned(partition, n, 1)
    }

    /// Zone-aware replica selection: in addition to distinct nodes, the
    /// first `zones_required` replicas must cover that many distinct zones.
    pub fn replica_partitions_zoned(
        &self,
        partition: PartitionId,
        n: usize,
        zones_required: usize,
    ) -> Result<Vec<PartitionId>, RingError> {
        let parts = self.owner.len();
        let start = partition.0 as usize % parts;
        let mut chosen = Vec::with_capacity(n);
        let mut chosen_nodes = Vec::with_capacity(n);
        let mut chosen_zones = Vec::with_capacity(n);

        let distinct_nodes = self.zones.len();
        let distinct_zones = self.zone_count;
        if n > distinct_nodes {
            return Err(RingError::Unsatisfiable(format!(
                "need {n} replicas but only {distinct_nodes} nodes"
            )));
        }
        if zones_required > distinct_zones {
            return Err(RingError::Unsatisfiable(format!(
                "need {zones_required} zones but only {distinct_zones} exist"
            )));
        }

        // First pass: walk the ring preferring new zones until the zone
        // constraint is met, then any new node.
        for step in 0..parts {
            if chosen.len() == n {
                break;
            }
            let p = (start + step) % parts;
            let node = self.owner[p];
            if chosen_nodes.contains(&node) {
                continue;
            }
            let zone = self.zones[&node];
            let zones_missing = zones_required.saturating_sub(chosen_zones.len());
            let replicas_left = n - chosen.len();
            // If we still owe distinct zones and picking a repeat zone would
            // make the constraint impossible to satisfy with the slots left,
            // skip this partition.
            if chosen_zones.contains(&zone) && zones_missing >= replicas_left {
                continue;
            }
            chosen.push(PartitionId(p as u32));
            chosen_nodes.push(node);
            if !chosen_zones.contains(&zone) {
                chosen_zones.push(zone);
            }
        }
        if chosen.len() < n {
            return Err(RingError::Unsatisfiable(format!(
                "found only {} of {n} replicas with {zones_required} zones",
                chosen.len()
            )));
        }
        Ok(chosen)
    }

    /// Full preference list for `key`: the nodes (in priority order) that
    /// should hold its `n` replicas.
    pub fn preference_list(&self, key: &[u8], n: usize) -> Result<Vec<NodeId>, RingError> {
        self.preference_list_zoned(key, n, 1)
    }

    /// Zone-aware preference list (multi-datacenter routing).
    pub fn preference_list_zoned(
        &self,
        key: &[u8],
        n: usize,
        zones_required: usize,
    ) -> Result<Vec<NodeId>, RingError> {
        let master = self.master_partition(key);
        Ok(self
            .replica_partitions_zoned(master, n, zones_required)?
            .into_iter()
            .map(|p| self.owner_of(p))
            .collect())
    }

    /// Reassigns `partition` to `new_owner` (rebalancing primitive). The
    /// new owner inherits the partition; zone membership must already be
    /// known.
    pub fn reassign(&mut self, partition: PartitionId, new_owner: NodeId) -> Result<(), RingError> {
        if !self.zones.contains_key(&new_owner) {
            return Err(RingError::BadAssignment(format!(
                "{new_owner} not in topology; call add_node first"
            )));
        }
        let idx = partition.0 as usize;
        if idx >= self.owner.len() {
            return Err(RingError::BadAssignment(format!(
                "partition {partition} out of range"
            )));
        }
        self.owner[idx] = new_owner;
        Ok(())
    }

    /// Adds a node (with its zone) to the topology without assigning it any
    /// partitions yet.
    pub fn add_node(&mut self, node: NodeId, zone: ZoneId) {
        self.zones.insert(node, zone);
        self.zone_count = count_zones(&self.zones);
    }

    /// Plans a minimal-move rebalance that brings a newly added `new_node`
    /// up to its fair share of partitions: steals `ceil(P / (nodes))`
    /// partitions, always from the currently most-loaded node. Returns the
    /// list of `(partition, from, to)` moves; the caller (Voldemort's admin
    /// service) executes them one at a time with request redirection.
    pub fn plan_rebalance(&self, new_node: NodeId) -> Vec<(PartitionId, NodeId, NodeId)> {
        let parts = self.owner.len();
        let mut load: BTreeMap<NodeId, Vec<PartitionId>> = BTreeMap::new();
        for (p, &node) in self.owner.iter().enumerate() {
            load.entry(node).or_default().push(PartitionId(p as u32));
        }
        load.entry(new_node).or_default();
        let fair = parts / load.len();
        let mut moves = Vec::new();
        let mut new_count = load.get(&new_node).map_or(0, Vec::len);
        while new_count < fair {
            // Steal from the most loaded node.
            let (&donor, _) = match load
                .iter()
                .filter(|(&n, ps)| n != new_node && !ps.is_empty())
                .max_by_key(|(_, ps)| ps.len())
            {
                Some(entry) => entry,
                None => break,
            };
            let donor_parts = load.get_mut(&donor).expect("donor exists");
            let partition = donor_parts.pop().expect("non-empty");
            moves.push((partition, donor, new_node));
            new_count += 1;
        }
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn nodes(n: u16) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn balanced_ring_distributes_evenly() {
        let ring = HashRing::balanced(32, &nodes(4)).unwrap();
        for node in ring.nodes() {
            assert_eq!(ring.partitions_of(node).len(), 8);
        }
    }

    #[test]
    fn empty_inputs_rejected() {
        assert_eq!(HashRing::balanced(0, &nodes(2)), Err(RingError::Empty));
        assert_eq!(HashRing::balanced(8, &[]), Err(RingError::Empty));
    }

    #[test]
    fn preference_list_has_distinct_nodes() {
        let ring = HashRing::balanced(64, &nodes(8)).unwrap();
        let prefs = ring.preference_list(b"member:42", 3).unwrap();
        assert_eq!(prefs.len(), 3);
        let mut sorted = prefs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "replicas must be on distinct nodes");
    }

    #[test]
    fn first_preference_is_master_partition_owner() {
        let ring = HashRing::balanced(64, &nodes(8)).unwrap();
        let key = b"member:42";
        let master = ring.master_partition(key);
        assert_eq!(ring.preference_list(key, 3).unwrap()[0], ring.owner_of(master));
    }

    #[test]
    fn too_many_replicas_is_unsatisfiable() {
        let ring = HashRing::balanced(8, &nodes(2)).unwrap();
        assert!(matches!(
            ring.preference_list(b"k", 3),
            Err(RingError::Unsatisfiable(_))
        ));
    }

    #[test]
    fn zoned_preference_spans_zones() {
        // 2 zones x 4 nodes, like the paper's two-datacenter deployments.
        let layout: Vec<(NodeId, ZoneId)> = (0..8)
            .map(|i| (NodeId(i), ZoneId((i % 2) as u8)))
            .collect();
        let ring = HashRing::zoned(64, &layout).unwrap();
        for i in 0..100 {
            let key = format!("member:{i}");
            let prefs = ring.preference_list_zoned(key.as_bytes(), 3, 2).unwrap();
            let mut zones: Vec<ZoneId> =
                prefs.iter().map(|&n| ring.zone_of(n).unwrap()).collect();
            zones.sort_unstable();
            zones.dedup();
            assert!(zones.len() >= 2, "key {i} replicas all in one zone");
        }
    }

    #[test]
    fn zone_constraint_beyond_topology_fails() {
        let ring = HashRing::balanced(8, &nodes(4)).unwrap();
        assert!(matches!(
            ring.preference_list_zoned(b"k", 2, 2),
            Err(RingError::Unsatisfiable(_))
        ));
    }

    #[test]
    fn rebalance_plan_reaches_fair_share_with_minimal_moves() {
        let mut ring = HashRing::balanced(32, &nodes(4)).unwrap();
        let newbie = NodeId(4);
        ring.add_node(newbie, ZoneId(0));
        let moves = ring.plan_rebalance(newbie);
        // fair share = 32/5 = 6 (floor); exactly that many moves.
        assert_eq!(moves.len(), 6);
        for &(p, from, to) in &moves {
            assert_eq!(to, newbie);
            assert_eq!(ring.owner_of(p), from);
            ring.reassign(p, to).unwrap();
        }
        assert_eq!(ring.partitions_of(newbie).len(), 6);
        // Donors stay near fair share.
        for node in nodes(4) {
            let count = ring.partitions_of(node).len();
            assert!((6..=8).contains(&count), "{node} has {count}");
        }
    }

    #[test]
    fn reassign_unknown_node_rejected() {
        let mut ring = HashRing::balanced(8, &nodes(2)).unwrap();
        assert!(ring.reassign(PartitionId(0), NodeId(99)).is_err());
    }

    #[test]
    fn keys_spread_without_hot_spots() {
        let ring = HashRing::balanced(32, &nodes(4)).unwrap();
        let mut counts = BTreeMap::new();
        for i in 0..40_000 {
            let key = format!("member:{i}");
            let node = ring.preference_list(key.as_bytes(), 1).unwrap()[0];
            *counts.entry(node).or_insert(0usize) += 1;
        }
        for (&node, &count) in &counts {
            assert!(
                (5_000..=15_000).contains(&count),
                "{node} has hot/cold spot: {count}"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_replica_lists_valid(
            parts in 1u32..128,
            node_count in 1u16..16,
            key in proptest::collection::vec(any::<u8>(), 0..32),
            n in 1usize..4,
        ) {
            let ring = HashRing::balanced(parts, &nodes(node_count)).unwrap();
            match ring.preference_list(&key, n) {
                Ok(prefs) => {
                    prop_assert_eq!(prefs.len(), n);
                    let mut unique = prefs.clone();
                    unique.sort_unstable();
                    unique.dedup();
                    prop_assert_eq!(unique.len(), n);
                }
                Err(RingError::Unsatisfiable(_)) => {
                    // Only acceptable when the topology genuinely can't:
                    // fewer distinct nodes than n. Note a ring with fewer
                    // partitions than nodes exposes only `parts` nodes.
                    let reachable = (node_count as u32).min(parts) as usize;
                    prop_assert!(n > reachable);
                }
                Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
            }
        }

        #[test]
        fn prop_same_key_same_list(
            key in proptest::collection::vec(any::<u8>(), 0..32),
        ) {
            let ring = HashRing::balanced(64, &nodes(8)).unwrap();
            let a = ring.preference_list(&key, 3).unwrap();
            let b = ring.preference_list(&key, 3).unwrap();
            prop_assert_eq!(a, b);
        }

        #[test]
        fn prop_rebalance_only_moves_to_new_node(node_count in 2u16..12) {
            let mut ring = HashRing::balanced(48, &nodes(node_count)).unwrap();
            let newbie = NodeId(node_count);
            ring.add_node(newbie, ZoneId(0));
            let moves = ring.plan_rebalance(newbie);
            let fair = 48 / (node_count as usize + 1);
            prop_assert_eq!(moves.len(), fair);
            for (_, from, to) in moves {
                prop_assert_eq!(to, newbie);
                prop_assert!(from != newbie);
            }
        }
    }
}
