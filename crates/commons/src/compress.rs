//! LZ77-family batch compression.
//!
//! Kafka (paper §V.B): "to enable efficient data transfer especially across
//! datacenters, we support compression in Kafka. Each producer can compress
//! a set of messages and send it to the broker. ... In practice, we save
//! about 2/3 of the network bandwidth with compression enabled."
//!
//! The offline crate policy allowlists no compression crates, so we
//! implement a greedy hash-chain LZ77 ourselves. Activity-event batches are
//! highly self-similar (repeated field names, URLs, member-id prefixes), so
//! even this simple matcher comfortably reproduces the ~3x ratio class the
//! paper reports; `li-bench`'s `kafka_compression` target measures it.
//!
//! Wire format (self-describing, versioned):
//! ```text
//! [magic u8 = 0xC7][varint uncompressed_len][token...]
//! token := 0x00 [varint run_len] [run_len literal bytes]
//!        | 0x01 [varint match_len - MIN_MATCH] [varint distance]
//! ```

use crate::varint;

const MAGIC: u8 = 0xC7;
const TOKEN_LITERALS: u8 = 0x00;
const TOKEN_MATCH: u8 = 0x01;
/// Minimum match length worth encoding (a match token costs >= 3 bytes).
const MIN_MATCH: usize = 4;
/// Maximum back-reference distance (32 KiB window).
const WINDOW: usize = 32 * 1024;
/// Bound on hash-chain probes per position: caps worst-case compress time.
const MAX_CHAIN: usize = 32;
/// Hash table size (power of two).
const HASH_BITS: u32 = 15;

/// Compression codec selector carried in Kafka message attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Codec {
    /// Store bytes as-is.
    None,
    /// LZ77 compression (this module).
    Lz,
}

impl Codec {
    /// Encodes the codec as the attribute byte stored with a message.
    pub fn to_attribute(self) -> u8 {
        match self {
            Codec::None => 0,
            Codec::Lz => 1,
        }
    }

    /// Decodes an attribute byte.
    pub fn from_attribute(attr: u8) -> Result<Self, DecompressError> {
        match attr {
            0 => Ok(Codec::None),
            1 => Ok(Codec::Lz),
            other => Err(DecompressError::BadFormat(format!(
                "unknown codec attribute {other}"
            ))),
        }
    }
}

/// Errors from [`decompress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompressError {
    /// The input is not in the expected format.
    BadFormat(String),
    /// The input ended prematurely.
    Truncated,
}

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompressError::BadFormat(msg) => write!(f, "bad compressed data: {msg}"),
            DecompressError::Truncated => write!(f, "compressed data truncated"),
        }
    }
}

impl std::error::Error for DecompressError {}

impl From<varint::VarintError> for DecompressError {
    fn from(_: varint::VarintError) -> Self {
        DecompressError::Truncated
    }
}

fn hash4(window: &[u8]) -> usize {
    let v = u32::from_le_bytes([window[0], window[1], window[2], window[3]]);
    ((v.wrapping_mul(0x9E37_79B1)) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input`. Always succeeds; incompressible input grows by a few
/// bytes of framing (the caller may compare lengths and keep the original —
/// Kafka's producer does exactly that).
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.push(MAGIC);
    varint::write_u64(&mut out, input.len() as u64);

    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; input.len()];

    let mut pos = 0usize;
    let mut literal_start = 0usize;

    let flush_literals = |out: &mut Vec<u8>, start: usize, end: usize| {
        if end > start {
            out.push(TOKEN_LITERALS);
            varint::write_u64(out, (end - start) as u64);
            out.extend_from_slice(&input[start..end]);
        }
    };

    while pos + MIN_MATCH <= input.len() {
        let h = hash4(&input[pos..]);
        let mut candidate = head[h];
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut probes = 0usize;
        while candidate != usize::MAX && probes < MAX_CHAIN {
            let dist = pos - candidate;
            if dist > WINDOW {
                break;
            }
            // Extend the match.
            let max_len = input.len() - pos;
            let mut len = 0usize;
            while len < max_len && input[candidate + len] == input[pos + len] {
                len += 1;
            }
            if len > best_len {
                best_len = len;
                best_dist = dist;
            }
            candidate = prev[candidate];
            probes += 1;
        }

        if best_len >= MIN_MATCH {
            flush_literals(&mut out, literal_start, pos);
            out.push(TOKEN_MATCH);
            varint::write_u64(&mut out, (best_len - MIN_MATCH) as u64);
            varint::write_u64(&mut out, best_dist as u64);
            // Index every position covered by the match so later data can
            // reference into it (stop where a 4-byte hash no longer fits).
            let match_end = pos + best_len;
            let index_end = match_end.min(input.len().saturating_sub(MIN_MATCH - 1));
            while pos < index_end {
                let h = hash4(&input[pos..]);
                prev[pos] = head[h];
                head[h] = pos;
                pos += 1;
            }
            pos = match_end;
            literal_start = pos;
        } else {
            prev[pos] = head[h];
            head[h] = pos;
            pos += 1;
        }
    }
    flush_literals(&mut out, literal_start, input.len());
    out
}

/// Decompresses data produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, DecompressError> {
    let mut cursor = input;
    if cursor.first() != Some(&MAGIC) {
        return Err(DecompressError::BadFormat("missing magic byte".into()));
    }
    cursor = &cursor[1..];
    let expected_len = varint::read_u64(&mut cursor)? as usize;
    let mut out = Vec::with_capacity(expected_len);
    while !cursor.is_empty() {
        let token = cursor[0];
        cursor = &cursor[1..];
        match token {
            TOKEN_LITERALS => {
                let len = varint::read_u64(&mut cursor)? as usize;
                if cursor.len() < len {
                    return Err(DecompressError::Truncated);
                }
                out.extend_from_slice(&cursor[..len]);
                cursor = &cursor[len..];
            }
            TOKEN_MATCH => {
                let len = varint::read_u64(&mut cursor)? as usize + MIN_MATCH;
                let dist = varint::read_u64(&mut cursor)? as usize;
                if dist == 0 || dist > out.len() {
                    return Err(DecompressError::BadFormat(format!(
                        "match distance {dist} exceeds output {}",
                        out.len()
                    )));
                }
                // Byte-by-byte copy: overlapping matches (dist < len) are
                // legal and encode runs.
                let start = out.len() - dist;
                for i in 0..len {
                    let byte = out[start + i];
                    out.push(byte);
                }
            }
            other => {
                return Err(DecompressError::BadFormat(format!(
                    "unknown token {other}"
                )))
            }
        }
    }
    if out.len() != expected_len {
        return Err(DecompressError::BadFormat(format!(
            "expected {expected_len} bytes, got {}",
            out.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trips_empty_and_tiny() {
        for input in [&b""[..], b"a", b"abc", b"abcd"] {
            assert_eq!(decompress(&compress(input)).unwrap(), input);
        }
    }

    #[test]
    fn round_trips_repetitive_text() {
        let input = "pageview member=12345 url=/in/profile ".repeat(500);
        let compressed = compress(input.as_bytes());
        assert_eq!(decompress(&compressed).unwrap(), input.as_bytes());
        assert!(
            compressed.len() * 3 < input.len(),
            "activity-log text should compress at least 3x, got {} -> {}",
            input.len(),
            compressed.len()
        );
    }

    #[test]
    fn overlapping_match_run() {
        let input = vec![b'x'; 10_000];
        let compressed = compress(&input);
        assert!(compressed.len() < 100);
        assert_eq!(decompress(&compressed).unwrap(), input);
    }

    #[test]
    fn incompressible_random_data_round_trips() {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut input = vec![0u8; 64 * 1024];
        rng.fill_bytes(&mut input);
        let compressed = compress(&input);
        assert_eq!(decompress(&compressed).unwrap(), input);
        // Random data must not blow up: framing overhead stays small.
        assert!(compressed.len() < input.len() + input.len() / 16 + 64);
    }

    #[test]
    fn rejects_garbage() {
        assert!(decompress(b"").is_err());
        assert!(decompress(b"\xff\x01\x02").is_err());
        // Valid header, bogus match distance.
        let mut evil = vec![MAGIC];
        crate::varint::write_u64(&mut evil, 4);
        evil.push(TOKEN_MATCH);
        crate::varint::write_u64(&mut evil, 0);
        crate::varint::write_u64(&mut evil, 99); // distance into nothing
        assert!(matches!(
            decompress(&evil),
            Err(DecompressError::BadFormat(_))
        ));
    }

    #[test]
    fn truncated_stream_detected() {
        let input = "repeat repeat repeat repeat".repeat(20);
        let compressed = compress(input.as_bytes());
        assert!(decompress(&compressed[..compressed.len() / 2]).is_err());
    }

    #[test]
    fn codec_attribute_round_trip() {
        for codec in [Codec::None, Codec::Lz] {
            assert_eq!(Codec::from_attribute(codec.to_attribute()).unwrap(), codec);
        }
        assert!(Codec::from_attribute(9).is_err());
    }

    proptest! {
        #[test]
        fn prop_round_trip(input in proptest::collection::vec(any::<u8>(), 0..4096)) {
            prop_assert_eq!(decompress(&compress(&input)).unwrap(), input);
        }

        #[test]
        fn prop_round_trip_structured(
            words in proptest::collection::vec("[a-e]{1,6}", 0..200)
        ) {
            let input = words.join(" ");
            prop_assert_eq!(
                decompress(&compress(input.as_bytes())).unwrap(),
                input.as_bytes()
            );
        }
    }
}
