//! Latency histogram with logarithmic buckets.
//!
//! The paper reports its deployments in latency terms — "average latency of
//! 3 ms", "average latency of less than 1 ms", "sub-milliseconds" — so the
//! benchmark harness needs percentile-accurate recording that is cheap
//! enough to sit on the hot path. This is an HDR-style histogram: values
//! are bucketed by (exponent, sub-bucket) so relative error is bounded
//! (~1.6% with 64 sub-buckets) while memory stays a few KiB.

use std::time::Duration;

const SUB_BUCKET_BITS: u32 = 6;
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS; // 64
const EXPONENTS: usize = 64 - SUB_BUCKET_BITS as usize;

/// Fixed-memory log-bucketed histogram of `u64` values (nanoseconds by
/// convention, but unit-agnostic).
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            // exponent groups 0 (values < 64) plus one per exponent 6..=63
            counts: vec![0; (EXPONENTS + 1) * SUB_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let exponent = 63 - value.leading_zeros() as usize; // >= SUB_BUCKET_BITS
        let shift = exponent - SUB_BUCKET_BITS as usize;
        let sub = ((value >> shift) as usize) & (SUB_BUCKETS - 1);
        (exponent - SUB_BUCKET_BITS as usize + 1) * SUB_BUCKETS + sub
    }

    /// Representative (lower-bound) value of bucket `index`.
    fn bucket_floor(index: usize) -> u64 {
        let exp_group = index / SUB_BUCKETS;
        let sub = (index % SUB_BUCKETS) as u64;
        if exp_group == 0 {
            sub
        } else {
            let exponent = exp_group - 1 + SUB_BUCKET_BITS as usize;
            let shift = exponent - SUB_BUCKET_BITS as usize;
            (1u64 << exponent) | (sub << shift)
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.total += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a [`Duration`] in nanoseconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Arithmetic mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in [0, 1] (bucket lower bound; 0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_floor(i);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// One-line summary in milliseconds, assuming nanosecond observations —
    /// the format EXPERIMENTS.md records.
    pub fn summary_ms(&self) -> String {
        format!(
            "n={} mean={:.3}ms p50={:.3}ms p99={:.3}ms max={:.3}ms",
            self.total,
            self.mean() / 1e6,
            self.quantile(0.5) as f64 / 1e6,
            self.quantile(0.99) as f64 / 1e6,
            self.max as f64 / 1e6,
        )
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn exact_small_values() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        // values < 64 are stored exactly
        assert_eq!(h.quantile(1.0), 63);
    }

    #[test]
    fn relative_error_bounded() {
        let mut h = Histogram::new();
        let value = 1_234_567u64;
        h.record(value);
        let q = h.quantile(0.5);
        let err = (value as f64 - q as f64).abs() / value as f64;
        assert!(err < 0.032, "relative error {err} too large (got {q})");
    }

    #[test]
    fn quantiles_ordered() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 1000);
        }
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        // p50 of 1k..10M uniform should be near 5M.
        assert!((4_500_000..=5_500_000).contains(&p50), "p50={p50}");
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.mean(), 20.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(100);
        b.record(200);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 100);
        assert_eq!(a.max(), 200);
    }

    #[test]
    fn percentile_relative_error_under_one_point_six_percent() {
        // With SUB_BUCKET_BITS = 6 each power-of-two range splits into 64
        // sub-buckets, so a reported quantile (bucket lower bound) sits
        // within 1/64 ≈ 1.6% below the true value.
        let mut value = 64u64;
        while value < 1 << 40 {
            let mut h = Histogram::new();
            h.record(value);
            let q = h.quantile(0.5);
            assert!(q <= value, "quantile overshot: {q} > {value}");
            let err = (value - q) as f64 / value as f64;
            assert!(err < 1.0 / 64.0, "value {value}: error {err} >= 1/64");
            value = value.saturating_mul(7).saturating_add(13);
        }
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let mut merged = Histogram::new();
        let mut direct = Histogram::new();
        let mut other = Histogram::new();
        for i in 1..=1000u64 {
            let v = i * 997;
            direct.record(v);
            if i % 2 == 0 {
                merged.record(v);
            } else {
                other.record(v);
            }
        }
        merged.merge(&other);
        assert_eq!(merged.count(), direct.count());
        assert_eq!(merged.min(), direct.min());
        assert_eq!(merged.max(), direct.max());
        assert_eq!(merged.mean(), direct.mean());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), direct.quantile(q), "q={q}");
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(42);
        let before = (h.count(), h.min(), h.max(), h.mean());
        h.merge(&Histogram::new());
        assert_eq!((h.count(), h.min(), h.max(), h.mean()), before);
    }

    #[test]
    fn zero_value_round_trips() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn max_value_does_not_overflow_quantile() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        let q = h.quantile(1.0);
        let err = (u64::MAX - q) as f64 / u64::MAX as f64;
        assert!(err < 1.0 / 64.0, "error {err} >= 1/64");
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.5) > u64::MAX / 2);
    }
}
