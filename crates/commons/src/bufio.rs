//! CRC-framed record I/O over byte streams.
//!
//! Kafka segment files, `sqlstore` binlogs, and the Databus bootstrap log
//! all persist sequences of records and must survive a crash mid-append:
//! on recovery the reader scans frames and truncates at the first torn or
//! corrupt one. A frame is:
//!
//! ```text
//! [len: u32 le][crc: u32 le][payload: len bytes]    crc = crc32(payload)
//! ```
//!
//! The fixed-width length prefix (rather than a varint) lets a reader
//! validate a frame header with a single 8-byte read and makes offset
//! arithmetic trivial — the property Kafka's logical-offset addressing
//! depends on ("to compute the id of the next message, we have to add the
//! length of the current message to its id").

use crate::crc32::crc32;

/// Bytes of framing overhead per record.
pub const FRAME_HEADER: usize = 8;

/// Outcome of attempting to read one frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete, checksum-valid record.
    Record {
        /// The record payload.
        payload: Vec<u8>,
        /// Offset just past the record (the next read position).
        next: usize,
    },
    /// Clean end of stream exactly at the read position.
    End,
    /// A torn or corrupt frame begins here — recovery should truncate to
    /// the read position.
    Corrupt,
}

/// Appends one frame to `out`, returning the number of bytes written.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) -> usize {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    FRAME_HEADER + payload.len()
}

/// Size a payload occupies once framed.
pub fn framed_len(payload_len: usize) -> usize {
    FRAME_HEADER + payload_len
}

/// Outcome of locating one frame without copying its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameBounds {
    /// A structurally complete record: payload is `data[start..end]`, the
    /// next frame begins at `end`.
    Record {
        /// First payload byte.
        start: usize,
        /// One past the last payload byte (== next frame's offset).
        end: usize,
    },
    /// Clean end of stream exactly at the read position.
    End,
    /// A torn or corrupt frame begins here.
    Corrupt,
}

/// Locates the frame starting at `offset` without reading the payload:
/// header and length bounds are validated, the CRC is **not**. This is the
/// serving-path primitive — bytes that were CRC-framed on append and never
/// left process memory are handed out without being touched, the same
/// contract `sendfile` gives Kafka (the kernel cannot checksum what it
/// never copies through user space). Use [`frame_at`] when the bytes
/// crossed a trust boundary (disk recovery, decompression).
pub fn frame_bounds(data: &[u8], offset: usize) -> FrameBounds {
    if offset == data.len() {
        return FrameBounds::End;
    }
    if offset > data.len() || data.len() - offset < FRAME_HEADER {
        return FrameBounds::Corrupt;
    }
    let len = u32::from_le_bytes([
        data[offset],
        data[offset + 1],
        data[offset + 2],
        data[offset + 3],
    ]) as usize;
    let start = offset + FRAME_HEADER;
    if data.len() - start < len {
        return FrameBounds::Corrupt;
    }
    FrameBounds::Record { start, end: start + len }
}

/// Locates and fully validates (including CRC) the frame at `offset`,
/// returning payload bounds instead of a copy.
pub fn frame_at(data: &[u8], offset: usize) -> FrameBounds {
    match frame_bounds(data, offset) {
        FrameBounds::Record { start, end } => {
            let crc = u32::from_le_bytes([
                data[offset + 4],
                data[offset + 5],
                data[offset + 6],
                data[offset + 7],
            ]);
            if crc32(&data[start..end]) != crc {
                FrameBounds::Corrupt
            } else {
                FrameBounds::Record { start, end }
            }
        }
        other => other,
    }
}

/// Reads the frame starting at `offset` in `data`, copying the payload.
pub fn read_frame(data: &[u8], offset: usize) -> Frame {
    match frame_at(data, offset) {
        FrameBounds::End => Frame::End,
        FrameBounds::Corrupt => Frame::Corrupt,
        FrameBounds::Record { start, end } => Frame::Record {
            payload: data[start..end].to_vec(),
            next: end,
        },
    }
}

/// Scans all frames from the start of `data`, returning the valid payloads
/// and the offset of the first invalid byte (== `data.len()` when clean).
/// This is the crash-recovery entry point: callers truncate their file to
/// the returned offset.
pub fn recover(data: &[u8]) -> (Vec<Vec<u8>>, usize) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    loop {
        match read_frame(data, offset) {
            Frame::Record { payload, next } => {
                records.push(payload);
                offset = next;
            }
            Frame::End | Frame::Corrupt => return (records, offset),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn write_read_round_trip() {
        let mut buf = Vec::new();
        let n1 = write_frame(&mut buf, b"first");
        let n2 = write_frame(&mut buf, b"");
        write_frame(&mut buf, b"third record");
        assert_eq!(n1, framed_len(5));
        assert_eq!(n2, framed_len(0));
        let (records, end) = recover(&buf);
        assert_eq!(records, vec![b"first".to_vec(), b"".to_vec(), b"third record".to_vec()]);
        assert_eq!(end, buf.len());
    }

    #[test]
    fn torn_tail_write_is_truncated() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"durable");
        let keep = buf.len();
        write_frame(&mut buf, b"torn away in the crash");
        buf.truncate(buf.len() - 5); // simulate partial tail write
        let (records, end) = recover(&buf);
        assert_eq!(records.len(), 1);
        assert_eq!(end, keep);
    }

    #[test]
    fn bit_flip_stops_recovery_at_corruption() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"alpha");
        let boundary = buf.len();
        write_frame(&mut buf, b"beta");
        buf[boundary + FRAME_HEADER] ^= 0x40; // corrupt beta's payload
        let (records, end) = recover(&buf);
        assert_eq!(records, vec![b"alpha".to_vec()]);
        assert_eq!(end, boundary);
    }

    #[test]
    fn frame_bounds_skips_crc_but_catches_torn_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"serve me");
        let FrameBounds::Record { start, end } = frame_bounds(&buf, 0) else {
            panic!("expected a record");
        };
        assert_eq!(&buf[start..end], b"serve me");
        assert_eq!(frame_bounds(&buf, end), FrameBounds::End);
        // A flipped payload bit is invisible to the structural check but
        // caught by the full validation.
        buf[FRAME_HEADER] ^= 0x01;
        assert!(matches!(frame_bounds(&buf, 0), FrameBounds::Record { .. }));
        assert_eq!(frame_at(&buf, 0), FrameBounds::Corrupt);
        // Truncation is structural: both reject it.
        let torn = &buf[..buf.len() - 1];
        assert_eq!(frame_bounds(torn, 0), FrameBounds::Corrupt);
    }

    #[test]
    fn header_only_tail_is_corrupt() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"ok");
        let keep = buf.len();
        buf.extend_from_slice(&[0u8; 4]); // half a header
        let (records, end) = recover(&buf);
        assert_eq!(records.len(), 1);
        assert_eq!(end, keep);
    }

    proptest! {
        #[test]
        fn prop_round_trip(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..128), 0..32)
        ) {
            let mut buf = Vec::new();
            for p in &payloads {
                write_frame(&mut buf, p);
            }
            let (records, end) = recover(&buf);
            prop_assert_eq!(records, payloads);
            prop_assert_eq!(end, buf.len());
        }

        #[test]
        fn prop_truncation_never_yields_garbage(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..64), 1..16),
            cut in any::<proptest::sample::Index>(),
        ) {
            let mut buf = Vec::new();
            for p in &payloads {
                write_frame(&mut buf, p);
            }
            let cut = cut.index(buf.len() + 1);
            let (records, end) = recover(&buf[..cut]);
            // Every recovered record must be a true prefix of the originals.
            prop_assert!(records.len() <= payloads.len());
            for (r, p) in records.iter().zip(payloads.iter()) {
                prop_assert_eq!(r, p);
            }
            prop_assert!(end <= cut);
        }
    }
}
