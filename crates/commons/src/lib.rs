//! # li-commons
//!
//! Shared substrates for the reproduction of *Data Infrastructure at
//! LinkedIn* (ICDE 2012). Every system in the paper — Voldemort, Databus,
//! Espresso, Kafka — leans on a common set of distributed-systems
//! primitives. This crate provides them, implemented from scratch:
//!
//! * [`clock`] — vector clocks (\[LAM78\] in the paper) used by Voldemort to
//!   version tuples and detect concurrent writes.
//! * [`ring`] — the non-order-preserving consistent hash ring with fixed
//!   logical partitions and zone-aware replica selection.
//! * [`schema`] — an Avro-analog self-describing binary record codec with
//!   writer-schema versioning and compatible evolution, used by Databus and
//!   Espresso for source-independent change serialization.
//! * [`compress`] — an LZ77-family compressor used by Kafka producers to
//!   reproduce the paper's ~2/3 bandwidth-saving claim.
//! * [`failure`] — the success-ratio failure detector with asynchronous
//!   recovery probing described in the Voldemort section.
//! * [`sim`] — a deterministic in-process cluster harness: virtual clock,
//!   lossy/partitionable network, crashable nodes. All protocol state
//!   machines are exercised through it.
//! * [`chaos`] — the seeded chaos scheduler over [`sim`]: generates whole
//!   fault schedules from a `u64` seed, records replayable event traces,
//!   and reports invariant violations with a one-line repro.
//! * [`md5`], [`crc32`], [`fnv`], [`varint`] — the low-level codecs the
//!   paper's systems assume (MD5-keyed read-only indexes, CRC-framed log
//!   entries, hash routing, compact integer framing).
//! * [`exec`] — a bounded fan-out executor (worker pool + quorum waiter
//!   with hedging and deadlines) behind Voldemort's parallel quorum I/O,
//!   with a deterministic inline mode for chaos replays.
//! * [`hist`] — a latency histogram for the benchmark harness.
//! * [`metrics`] — the unified metrics registry (counters, gauges,
//!   histograms) every system exports its observability through.
//! * [`shard`] — hash-striped locks with ordered multi-stripe acquisition
//!   (the partitioned-state substrate behind the sharded serving runtime),
//!   with a deterministic one-stripe twin for chaos replays.
//! * [`watch`] — a single-value watch channel for config/external-view and
//!   high-water-mark propagation instead of polling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bufio;
pub mod chaos;
pub mod clock;
pub mod compress;
pub mod crc32;
pub mod exec;
pub mod failure;
pub mod fnv;
pub mod hist;
pub mod md5;
pub mod metrics;
pub mod migrate;
pub mod ring;
pub mod schema;
pub mod shard;
pub mod sim;
pub mod varint;
pub mod watch;

pub use clock::{Occurred, VectorClock, Versioned};
pub use ring::{HashRing, NodeId, PartitionId, ZoneId};
