//! MD5 (RFC 1321).
//!
//! Voldemort's custom read-only storage engine keys its index files by
//! "a compact list of sorted MD5 of key and offset to data into the data
//! file" (paper §II.B, Figure II.3). We need bit-for-bit MD5 so index
//! entries sort and compare identically to the paper's layout. MD5 is used
//! here purely as a uniform 16-byte key digest, not for security.

use std::sync::OnceLock;

/// A 16-byte MD5 digest.
pub type Digest = [u8; 16];

/// Per-round left-rotate amounts.
const SHIFTS: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// K\[i\] = floor(|sin(i+1)| * 2^32), computed once at first use.
fn sine_table() -> &'static [u32; 64] {
    static TABLE: OnceLock<[u32; 64]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut k = [0u32; 64];
        for (i, entry) in k.iter_mut().enumerate() {
            *entry = ((i as f64 + 1.0).sin().abs() * 4_294_967_296.0) as u32;
        }
        k
    })
}

/// Computes the MD5 digest of `data`.
pub fn md5(data: &[u8]) -> Digest {
    let k = sine_table();
    let mut a0: u32 = 0x6745_2301;
    let mut b0: u32 = 0xefcd_ab89;
    let mut c0: u32 = 0x98ba_dcfe;
    let mut d0: u32 = 0x1032_5476;

    // Pad: 0x80, zeros to 56 mod 64, then the bit length as little-endian u64.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut message = Vec::with_capacity(data.len() + 72);
    message.extend_from_slice(data);
    message.push(0x80);
    while message.len() % 64 != 56 {
        message.push(0);
    }
    message.extend_from_slice(&bit_len.to_le_bytes());

    for chunk in message.chunks_exact(64) {
        let mut m = [0u32; 16];
        for (j, word) in m.iter_mut().enumerate() {
            *word = u32::from_le_bytes([
                chunk[4 * j],
                chunk[4 * j + 1],
                chunk[4 * j + 2],
                chunk[4 * j + 3],
            ]);
        }
        let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
        for i in 0..64 {
            let (f, g) = match i {
                0..=15 => ((b & c) | (!b & d), i),
                16..=31 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                32..=47 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let rotated = f
                .wrapping_add(a)
                .wrapping_add(k[i])
                .wrapping_add(m[g])
                .rotate_left(SHIFTS[i]);
            a = d;
            d = c;
            c = b;
            b = b.wrapping_add(rotated);
        }
        a0 = a0.wrapping_add(a);
        b0 = b0.wrapping_add(b);
        c0 = c0.wrapping_add(c);
        d0 = d0.wrapping_add(d);
    }

    let mut out = [0u8; 16];
    out[0..4].copy_from_slice(&a0.to_le_bytes());
    out[4..8].copy_from_slice(&b0.to_le_bytes());
    out[8..12].copy_from_slice(&c0.to_le_bytes());
    out[12..16].copy_from_slice(&d0.to_le_bytes());
    out
}

/// Formats a digest as lowercase hex, the conventional presentation.
pub fn to_hex(digest: &Digest) -> String {
    let mut s = String::with_capacity(32);
    for byte in digest {
        s.push_str(&format!("{byte:02x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1321_vectors() {
        assert_eq!(to_hex(&md5(b"")), "d41d8cd98f00b204e9800998ecf8427e");
        assert_eq!(to_hex(&md5(b"a")), "0cc175b9c0f1b6a831c399e269772661");
        assert_eq!(to_hex(&md5(b"abc")), "900150983cd24fb0d6963f7d28e17f72");
        assert_eq!(
            to_hex(&md5(b"message digest")),
            "f96b697d7cb7938d525a2f31aaf161d0"
        );
        assert_eq!(
            to_hex(&md5(b"abcdefghijklmnopqrstuvwxyz")),
            "c3fcd3d76192e4007dfb496cca67e13b"
        );
    }

    #[test]
    fn quick_brown_fox() {
        assert_eq!(
            to_hex(&md5(b"The quick brown fox jumps over the lazy dog")),
            "9e107d9d372bb6826bd81d3542a419d6"
        );
    }

    #[test]
    fn padding_boundaries() {
        // Lengths around the 56-byte and 64-byte padding boundaries are the
        // classic off-by-one territory; make sure they all hash distinctly
        // and deterministically.
        let mut seen = std::collections::HashSet::new();
        for len in 54..=66 {
            let data = vec![b'x'; len];
            let d1 = md5(&data);
            let d2 = md5(&data);
            assert_eq!(d1, d2);
            assert!(seen.insert(d1), "collision at len {len}");
        }
    }

    #[test]
    fn len55_and_len56_vectors() {
        // 55 bytes: padding fits one block; 56 bytes: spills to a second.
        let a55: String = "a".repeat(55);
        let a56: String = "a".repeat(56);
        assert_eq!(
            to_hex(&md5(a55.as_bytes())),
            "ef1772b6dff9a122358552954ad0df65"
        );
        assert_eq!(
            to_hex(&md5(a56.as_bytes())),
            "3b0c8ac703f828b04c6c197006d17218"
        );
    }
}
