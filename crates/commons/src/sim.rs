//! Deterministic in-process cluster harness.
//!
//! The paper's systems run on datacenter networks where "frequent transient
//! and short-term failures ... are very prevalent" (§II.A, citing
//! [FLP+10]). Reproducing quorum reads, hinted handoff, failover, and
//! bootstrap switchover requires injecting exactly those failures on
//! demand. This module provides:
//!
//! * [`Clock`] — a time source abstraction with a real implementation and a
//!   manually-advanced [`SimClock`], so retention policies, failure
//!   detectors, and SLA windows are testable without sleeping.
//! * [`SimNetwork`] — a link-state model between [`NodeId`]s: per-link
//!   latency, seeded probabilistic drops, explicit partitions, and downed
//!   nodes. Servers consult the network before serving a "remote" call, so
//!   every protocol sees the same failure surface it would on a real
//!   network, but deterministically.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::ring::NodeId;

/// A monotonic time source in nanoseconds.
pub trait Clock: Send + Sync {
    /// Current time in nanoseconds since an arbitrary epoch.
    fn now_nanos(&self) -> u64;

    /// Current time as a [`Duration`] since the epoch.
    fn now(&self) -> Duration {
        Duration::from_nanos(self.now_nanos())
    }
}

/// Wall-clock time (monotonic) for production-like runs.
#[derive(Debug)]
pub struct RealClock {
    start: std::time::Instant,
}

impl RealClock {
    /// Creates a clock anchored at construction time.
    pub fn new() -> Self {
        RealClock {
            start: std::time::Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

/// Manually-advanced virtual clock. Cloning shares the underlying time.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    nanos: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances time by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::SeqCst);
    }

    /// Sets the absolute time (must not go backwards in tests that care).
    pub fn set(&self, d: Duration) {
        self.nanos.store(d.as_nanos() as u64, Ordering::SeqCst);
    }
}

impl Clock for SimClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }
}

/// Why a simulated delivery failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// The destination node is down (crashed or stopped).
    NodeDown,
    /// The two nodes are on different sides of a partition.
    Partitioned,
    /// The message was dropped (transient loss).
    Dropped,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::NodeDown => write!(f, "destination node down"),
            NetError::Partitioned => write!(f, "network partition"),
            NetError::Dropped => write!(f, "message dropped"),
        }
    }
}

impl std::error::Error for NetError {}

#[derive(Debug)]
struct NetState {
    default_latency: Duration,
    link_latency: HashMap<(NodeId, NodeId), Duration>,
    drop_probability: f64,
    down: HashSet<NodeId>,
    /// Partition group of each node; nodes in different groups can't talk.
    /// Empty map = fully connected.
    partition_group: HashMap<NodeId, u32>,
    /// Directed links that are blocked (asymmetric partitions): `(from,
    /// to)` present means `from` cannot reach `to`, while `to -> from` may
    /// still work — the one-way failure mode real switches produce.
    blocked_links: HashSet<(NodeId, NodeId)>,
    rng: StdRng,
}

/// Shared, thread-safe network model. Cloning shares state.
#[derive(Debug, Clone)]
pub struct SimNetwork {
    state: Arc<Mutex<NetState>>,
}

impl SimNetwork {
    /// A fully connected, lossless, zero-latency network (deterministic,
    /// seeded for when loss is later enabled).
    pub fn reliable() -> Self {
        Self::with_seed(0)
    }

    /// A reliable network whose RNG (used once drops are enabled) is seeded.
    pub fn with_seed(seed: u64) -> Self {
        SimNetwork {
            state: Arc::new(Mutex::new(NetState {
                default_latency: Duration::ZERO,
                link_latency: HashMap::new(),
                drop_probability: 0.0,
                down: HashSet::new(),
                partition_group: HashMap::new(),
                blocked_links: HashSet::new(),
                rng: StdRng::seed_from_u64(seed),
            })),
        }
    }

    /// Sets the latency applied to every link without an override.
    pub fn set_default_latency(&self, latency: Duration) {
        self.state.lock().default_latency = latency;
    }

    /// Sets the latency for the directed link `from -> to`.
    pub fn set_link_latency(&self, from: NodeId, to: NodeId, latency: Duration) {
        self.state.lock().link_latency.insert((from, to), latency);
    }

    /// Sets the probability in \[0,1\] that any delivery is dropped.
    pub fn set_drop_probability(&self, p: f64) {
        self.state.lock().drop_probability = p.clamp(0.0, 1.0);
    }

    /// Marks `node` as crashed: every delivery to it fails with
    /// [`NetError::NodeDown`].
    pub fn crash(&self, node: NodeId) {
        self.state.lock().down.insert(node);
    }

    /// Restores a crashed node.
    pub fn restart(&self, node: NodeId) {
        self.state.lock().down.remove(&node);
    }

    /// True when `node` is currently marked down.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.state.lock().down.contains(&node)
    }

    /// Splits the cluster: nodes in `groups[i]` can only reach nodes in the
    /// same group. Nodes not mentioned remain reachable from everyone.
    pub fn partition(&self, groups: &[&[NodeId]]) {
        let mut state = self.state.lock();
        state.partition_group.clear();
        for (i, group) in groups.iter().enumerate() {
            for &node in *group {
                state.partition_group.insert(node, i as u32);
            }
        }
    }

    /// Removes any partition.
    pub fn heal(&self) {
        self.state.lock().partition_group.clear();
    }

    /// Blocks the directed link `from -> to` (asymmetric partition):
    /// deliveries that way fail with [`NetError::Partitioned`] while the
    /// reverse direction is unaffected.
    pub fn block_link(&self, from: NodeId, to: NodeId) {
        self.state.lock().blocked_links.insert((from, to));
    }

    /// Unblocks the directed link `from -> to`.
    pub fn unblock_link(&self, from: NodeId, to: NodeId) {
        self.state.lock().blocked_links.remove(&(from, to));
    }

    /// Clears all link, partition, loss, and latency faults in one step
    /// (the chaos scheduler's quiesce). Downed nodes are *not* restarted —
    /// crash state belongs to whoever crashed them.
    pub fn heal_all(&self) {
        let mut state = self.state.lock();
        state.partition_group.clear();
        state.blocked_links.clear();
        state.drop_probability = 0.0;
        state.link_latency.clear();
    }

    /// Attempts a delivery `from -> to`; on success returns the simulated
    /// one-way latency (the caller decides whether to sleep or account it
    /// against a virtual clock).
    pub fn deliver(&self, from: NodeId, to: NodeId) -> Result<Duration, NetError> {
        let mut state = self.state.lock();
        if state.down.contains(&to) {
            return Err(NetError::NodeDown);
        }
        match (
            state.partition_group.get(&from),
            state.partition_group.get(&to),
        ) {
            (Some(a), Some(b)) if a != b => return Err(NetError::Partitioned),
            _ => {}
        }
        if state.blocked_links.contains(&(from, to)) {
            return Err(NetError::Partitioned);
        }
        if state.drop_probability > 0.0 {
            let roll: f64 = state.rng.random();
            if roll < state.drop_probability {
                return Err(NetError::Dropped);
            }
        }
        Ok(state
            .link_latency
            .get(&(from, to))
            .copied()
            .unwrap_or(state.default_latency))
    }

    /// Read-only variant of [`SimNetwork::deliver`]: reports whether the
    /// link currently works and its latency *without* consuming the drop
    /// RNG (a peek never rolls the dice), so invariant checkers can compute
    /// latency bounds without perturbing a seeded replay.
    pub fn peek_latency(&self, from: NodeId, to: NodeId) -> Result<Duration, NetError> {
        let state = self.state.lock();
        if state.down.contains(&to) {
            return Err(NetError::NodeDown);
        }
        match (
            state.partition_group.get(&from),
            state.partition_group.get(&to),
        ) {
            (Some(a), Some(b)) if a != b => return Err(NetError::Partitioned),
            _ => {}
        }
        if state.blocked_links.contains(&(from, to)) {
            return Err(NetError::Partitioned);
        }
        Ok(state
            .link_latency
            .get(&(from, to))
            .copied()
            .unwrap_or(state.default_latency))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: NodeId = NodeId(0);
    const B: NodeId = NodeId(1);
    const C: NodeId = NodeId(2);

    #[test]
    fn sim_clock_advances() {
        let clock = SimClock::new();
        assert_eq!(clock.now_nanos(), 0);
        clock.advance(Duration::from_millis(5));
        assert_eq!(clock.now(), Duration::from_millis(5));
        let shared = clock.clone();
        shared.advance(Duration::from_millis(5));
        assert_eq!(clock.now(), Duration::from_millis(10), "clones share time");
    }

    #[test]
    fn real_clock_monotonic() {
        let clock = RealClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn reliable_network_delivers() {
        let net = SimNetwork::reliable();
        assert_eq!(net.deliver(A, B), Ok(Duration::ZERO));
    }

    #[test]
    fn latency_overrides() {
        let net = SimNetwork::reliable();
        net.set_default_latency(Duration::from_micros(100));
        net.set_link_latency(A, C, Duration::from_millis(50)); // cross-DC link
        assert_eq!(net.deliver(A, B), Ok(Duration::from_micros(100)));
        assert_eq!(net.deliver(A, C), Ok(Duration::from_millis(50)));
        assert_eq!(net.deliver(C, A), Ok(Duration::from_micros(100)), "directed");
    }

    #[test]
    fn crash_and_restart() {
        let net = SimNetwork::reliable();
        net.crash(B);
        assert_eq!(net.deliver(A, B), Err(NetError::NodeDown));
        assert!(net.deliver(B, A).is_ok(), "a down node can still send in model");
        net.restart(B);
        assert!(net.deliver(A, B).is_ok());
    }

    #[test]
    fn partition_and_heal() {
        let net = SimNetwork::reliable();
        net.partition(&[&[A], &[B, C]]);
        assert_eq!(net.deliver(A, B), Err(NetError::Partitioned));
        assert!(net.deliver(B, C).is_ok());
        net.heal();
        assert!(net.deliver(A, B).is_ok());
    }

    #[test]
    fn unmentioned_nodes_stay_connected() {
        let net = SimNetwork::reliable();
        net.partition(&[&[A], &[B]]);
        assert!(net.deliver(A, C).is_ok());
        assert!(net.deliver(C, B).is_ok());
    }

    #[test]
    fn blocked_links_are_asymmetric() {
        let net = SimNetwork::reliable();
        net.block_link(A, B);
        assert_eq!(net.deliver(A, B), Err(NetError::Partitioned));
        assert!(net.deliver(B, A).is_ok(), "reverse direction unaffected");
        assert!(net.deliver(A, C).is_ok(), "other links unaffected");
        net.unblock_link(A, B);
        assert!(net.deliver(A, B).is_ok());
    }

    #[test]
    fn heal_all_clears_faults_but_not_crashes() {
        let net = SimNetwork::reliable();
        net.partition(&[&[A], &[B]]);
        net.block_link(B, C);
        net.set_drop_probability(1.0);
        net.set_link_latency(A, C, Duration::from_secs(9));
        net.crash(C);
        net.heal_all();
        assert!(net.deliver(A, B).is_ok());
        assert!(net.deliver(B, A).is_ok());
        assert_eq!(net.deliver(B, C), Err(NetError::NodeDown), "crash survives heal_all");
        net.restart(C);
        assert_eq!(net.deliver(A, C), Ok(Duration::ZERO), "latency override cleared");
    }

    #[test]
    fn peek_latency_matches_deliver_without_consuming_rng() {
        let net = SimNetwork::with_seed(7);
        net.set_link_latency(A, B, Duration::from_millis(3));
        assert_eq!(net.peek_latency(A, B), Ok(Duration::from_millis(3)));
        net.crash(B);
        assert_eq!(net.peek_latency(A, B), Err(NetError::NodeDown));
        net.restart(B);
        net.block_link(A, B);
        assert_eq!(net.peek_latency(A, B), Err(NetError::Partitioned));
        net.unblock_link(A, B);
        // With drops enabled, peeking must not advance the RNG: the
        // deliver sequence is identical whether or not we peeked first.
        net.set_drop_probability(0.5);
        let baseline: Vec<bool> = {
            let control = SimNetwork::with_seed(123);
            control.set_drop_probability(0.5);
            (0..50).map(|_| control.deliver(A, B).is_ok()).collect()
        };
        let peeked = SimNetwork::with_seed(123);
        peeked.set_drop_probability(0.5);
        let outcomes: Vec<bool> = (0..50)
            .map(|_| {
                let _ = peeked.peek_latency(A, B);
                peeked.deliver(A, B).is_ok()
            })
            .collect();
        assert_eq!(baseline, outcomes);
    }

    #[test]
    fn drops_are_probabilistic_and_seeded() {
        let net = SimNetwork::with_seed(42);
        net.set_drop_probability(0.5);
        let outcomes: Vec<bool> = (0..100).map(|_| net.deliver(A, B).is_ok()).collect();
        let delivered = outcomes.iter().filter(|&&ok| ok).count();
        assert!((20..=80).contains(&delivered), "delivered {delivered}/100");
        // Same seed reproduces the exact sequence.
        let net2 = SimNetwork::with_seed(42);
        net2.set_drop_probability(0.5);
        let outcomes2: Vec<bool> = (0..100).map(|_| net2.deliver(A, B).is_ok()).collect();
        assert_eq!(outcomes, outcomes2);
    }
}
