//! A single-value watch channel: one writer publishes successive versions
//! of a value, any number of readers observe the latest one and can block
//! until it changes.
//!
//! This is the propagation pattern the serving tiers use for routing
//! tables and stream high-water marks instead of polling: the Helix
//! controller publishes each rebalanced external view once, routers read
//! the cached copy per request (no coordination-service round trip on the
//! hot path), and the Databus dispatcher sleeps on the relay's SCN watch
//! instead of spinning. Unlike a queue, a watch conflates intermediate
//! values — a slow reader sees only the newest state, which is exactly
//! right for configuration and progress marks.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Shared<T> {
    /// (version, value): version strictly increases with every send.
    slot: Mutex<(u64, T)>,
    changed: Condvar,
    senders: AtomicUsize,
}

/// The writing half. Cloneable; dropping the last sender closes the
/// channel (blocked readers wake and see the close).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The reading half. Each receiver tracks the last version it observed
/// via [`Receiver::wait_newer`]; [`Receiver::get`] never blocks.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
    seen: u64,
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("watch::Sender { .. }")
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("watch::Receiver { .. }")
    }
}

/// Creates a watch channel seeded with `initial` (version 0).
pub fn channel<T>(initial: T) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        slot: Mutex::new((0, initial)),
        changed: Condvar::new(),
        senders: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared, seen: 0 },
    )
}

impl<T> Sender<T> {
    /// Publishes a new value, waking every blocked reader.
    pub fn send(&self, value: T) {
        let mut slot = self.shared.slot.lock();
        slot.0 += 1;
        slot.1 = value;
        self.shared.changed.notify_all();
    }

    /// A new receiver that has not yet observed the current value (its
    /// first [`Receiver::wait_newer`] returns immediately if a version
    /// was ever published).
    pub fn subscribe(&self) -> Receiver<T> {
        Receiver {
            shared: self.shared.clone(),
            seen: 0,
        }
    }

    /// The current version (0 = nothing sent since creation).
    pub fn version(&self) -> u64 {
        self.shared.slot.lock().0
    }
}

impl<T: Clone> Sender<T> {
    /// The current value.
    pub fn get(&self) -> T {
        self.shared.slot.lock().1.clone()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.shared.changed.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver {
            shared: self.shared.clone(),
            seen: self.seen,
        }
    }
}

impl<T: Clone> Receiver<T> {
    /// The latest value, without blocking or consuming anything. This is
    /// the per-request read path — one short lock, one clone (keep `T`
    /// cheap to clone, e.g. an `Arc`).
    pub fn get(&self) -> T {
        self.shared.slot.lock().1.clone()
    }

    /// Latest value and its version, marking it observed.
    pub fn get_and_update(&mut self) -> (u64, T) {
        let slot = self.shared.slot.lock();
        self.seen = slot.0;
        (slot.0, slot.1.clone())
    }

    /// Blocks until a version newer than the last observed one is
    /// published (or `timeout` expires / every sender is gone — both
    /// return `None`). On success the value is marked observed.
    pub fn wait_newer(&mut self, timeout: Duration) -> Option<T> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.shared.slot.lock();
        loop {
            if slot.0 > self.seen {
                self.seen = slot.0;
                return Some(slot.1.clone());
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.shared.changed.wait_for(&mut slot, deadline - now);
        }
    }
}

impl<T> Receiver<T> {
    /// True when a version newer than the last observed one exists — a
    /// single short lock, no clone (cheap staleness probe).
    pub fn has_changed(&self) -> bool {
        self.shared.slot.lock().0 > self.seen
    }

    /// The last version this receiver observed.
    pub fn seen_version(&self) -> u64 {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_sees_latest_without_consuming() {
        let (tx, rx) = channel(1u32);
        assert_eq!(rx.get(), 1);
        tx.send(2);
        tx.send(3);
        assert_eq!(rx.get(), 3);
        assert_eq!(rx.get(), 3);
    }

    #[test]
    fn wait_newer_blocks_until_send() {
        let (tx, mut rx) = channel(0u32);
        let h = std::thread::spawn(move || rx.wait_newer(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        tx.send(7);
        assert_eq!(h.join().unwrap(), Some(7));
    }

    #[test]
    fn wait_newer_conflates_intermediate_values() {
        let (tx, mut rx) = channel(0u32);
        tx.send(1);
        tx.send(2);
        tx.send(3);
        assert_eq!(rx.wait_newer(Duration::from_millis(10)), Some(3));
        // Nothing newer: times out.
        assert_eq!(rx.wait_newer(Duration::from_millis(10)), None);
    }

    #[test]
    fn sender_drop_wakes_waiters() {
        let (tx, mut rx) = channel(0u32);
        let h = std::thread::spawn(move || rx.wait_newer(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        drop(tx);
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn subscribe_starts_unobserved() {
        let (tx, _rx) = channel(0u32);
        tx.send(5);
        let mut fresh = tx.subscribe();
        assert!(fresh.has_changed());
        assert_eq!(fresh.wait_newer(Duration::from_millis(10)), Some(5));
    }
}
