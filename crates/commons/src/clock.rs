//! Vector clocks and versioned values.
//!
//! Voldemort "uses vector clocks \[LAM78\] to version our tuples and delegate
//! conflict resolution of concurrent versions to the application"
//! (paper §II.B). Any replica can accept a write, so divergent version
//! histories can form during failures or partitions; the vector clock's
//! partial order is what lets the system tell *stale* apart from
//! *concurrent*. The paper's optimistic-locking behaviour — a put with an
//! already-written clock fails with a special error — is implemented in
//! `li-voldemort` on top of [`Occurred`].

use serde::{get_field, object, DeError, Deserialize, JsonValue, Serialize};
use std::collections::BTreeMap;
use std::fmt;

use crate::varint;
use bytes::Buf;

/// Identifier of the node that performed a write (Voldemort node id).
pub type WriterId = u16;

/// Result of comparing two vector clocks under the happens-before partial
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Occurred {
    /// `self` happened strictly before the other clock (self is stale).
    Before,
    /// `self` happened strictly after the other clock (self supersedes it).
    After,
    /// The clocks are identical.
    Equal,
    /// Neither dominates: the writes were concurrent and both versions must
    /// be kept as siblings until the application reconciles them.
    Concurrent,
}

/// A vector clock: a map from writer node id to a monotonically increasing
/// counter of writes that node has coordinated for the tuple.
///
/// Stored as a sorted map so serialization is canonical — two equal clocks
/// always serialize to identical bytes, which Voldemort's read-repair
/// relies on when comparing replica responses.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct VectorClock {
    entries: BTreeMap<WriterId, u64>,
}

impl Serialize for VectorClock {
    fn to_json_value(&self) -> JsonValue {
        object(vec![("entries", self.entries.to_json_value())])
    }
}

impl Deserialize for VectorClock {
    fn from_json_value(value: &JsonValue) -> Result<Self, DeError> {
        Ok(VectorClock {
            entries: get_field(value, "entries")?,
        })
    }
}

impl VectorClock {
    /// Creates an empty clock (the version of a never-written tuple).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock with a single entry, convenient in tests.
    pub fn with(writer: WriterId, counter: u64) -> Self {
        let mut clock = Self::new();
        clock.entries.insert(writer, counter);
        clock
    }

    /// Records one more write coordinated by `writer`, returning the
    /// incremented clock. The original is untouched so callers can keep the
    /// pre-image for optimistic-lock comparison.
    #[must_use]
    pub fn incremented(&self, writer: WriterId) -> Self {
        let mut next = self.clone();
        *next.entries.entry(writer).or_insert(0) += 1;
        next
    }

    /// Increments this clock in place.
    pub fn increment(&mut self, writer: WriterId) {
        *self.entries.entry(writer).or_insert(0) += 1;
    }

    /// Returns the counter recorded for `writer` (0 if absent).
    pub fn counter_of(&self, writer: WriterId) -> u64 {
        self.entries.get(&writer).copied().unwrap_or(0)
    }

    /// Number of distinct writers recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True for the clock of a never-written tuple.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Compares `self` against `other` under happens-before.
    pub fn compare(&self, other: &VectorClock) -> Occurred {
        let mut self_bigger = false;
        let mut other_bigger = false;
        let mut self_iter = self.entries.iter().peekable();
        let mut other_iter = other.entries.iter().peekable();
        loop {
            match (self_iter.peek(), other_iter.peek()) {
                (None, None) => break,
                (Some(_), None) => {
                    self_bigger = true;
                    break;
                }
                (None, Some(_)) => {
                    other_bigger = true;
                    break;
                }
                (Some((sk, sv)), Some((ok, ov))) => match sk.cmp(ok) {
                    std::cmp::Ordering::Less => {
                        self_bigger = true;
                        self_iter.next();
                    }
                    std::cmp::Ordering::Greater => {
                        other_bigger = true;
                        other_iter.next();
                    }
                    std::cmp::Ordering::Equal => {
                        match sv.cmp(ov) {
                            std::cmp::Ordering::Less => other_bigger = true,
                            std::cmp::Ordering::Greater => self_bigger = true,
                            std::cmp::Ordering::Equal => {}
                        }
                        self_iter.next();
                        other_iter.next();
                    }
                },
            }
            if self_bigger && other_bigger {
                return Occurred::Concurrent;
            }
        }
        match (self_bigger, other_bigger) {
            (true, true) => Occurred::Concurrent,
            (true, false) => Occurred::After,
            (false, true) => Occurred::Before,
            (false, false) => Occurred::Equal,
        }
    }

    /// True when `self` strictly or trivially dominates `other`
    /// (i.e. writing `self` over `other` loses nothing).
    pub fn descends_from(&self, other: &VectorClock) -> bool {
        matches!(self.compare(other), Occurred::After | Occurred::Equal)
    }

    /// Pointwise maximum of the two clocks — used to merge siblings after
    /// the application resolves a conflict, so the merged write dominates
    /// both inputs.
    #[must_use]
    pub fn merged(&self, other: &VectorClock) -> Self {
        let mut merged = self.clone();
        for (&writer, &counter) in &other.entries {
            let entry = merged.entries.entry(writer).or_insert(0);
            *entry = (*entry).max(counter);
        }
        merged
    }

    /// Serializes the clock to a compact canonical byte form.
    pub fn encode(&self, out: &mut Vec<u8>) {
        varint::write_u64(out, self.entries.len() as u64);
        for (&writer, &counter) in &self.entries {
            varint::write_u64(out, u64::from(writer));
            varint::write_u64(out, counter);
        }
    }

    /// Decodes a clock produced by [`VectorClock::encode`].
    pub fn decode(buf: &mut impl Buf) -> Result<Self, varint::VarintError> {
        let n = varint::read_u64(buf)? as usize;
        let mut entries = BTreeMap::new();
        for _ in 0..n {
            let writer = varint::read_u64(buf)? as WriterId;
            let counter = varint::read_u64(buf)?;
            entries.insert(writer, counter);
        }
        Ok(VectorClock { entries })
    }

    /// Iterates over `(writer, counter)` pairs in writer order.
    pub fn iter(&self) -> impl Iterator<Item = (WriterId, u64)> + '_ {
        self.entries.iter().map(|(&w, &c)| (w, c))
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (writer, counter)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{writer}:{counter}")?;
        }
        write!(f, "}}")
    }
}

/// A value tagged with the vector clock that versions it — the unit
/// Voldemort's client API traffics in (`VectorClock<V> get(K key)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Versioned<V> {
    /// The version of this value.
    pub clock: VectorClock,
    /// The value payload.
    pub value: V,
}

impl<V: Serialize> Serialize for Versioned<V> {
    fn to_json_value(&self) -> JsonValue {
        object(vec![
            ("clock", self.clock.to_json_value()),
            ("value", self.value.to_json_value()),
        ])
    }
}

impl<V: Deserialize> Deserialize for Versioned<V> {
    fn from_json_value(value: &JsonValue) -> Result<Self, DeError> {
        Ok(Versioned {
            clock: get_field(value, "clock")?,
            value: get_field(value, "value")?,
        })
    }
}

impl<V> Versioned<V> {
    /// Wraps `value` at version `clock`.
    pub fn new(clock: VectorClock, value: V) -> Self {
        Versioned { clock, value }
    }

    /// Wraps `value` at the zero version (first write of a tuple).
    pub fn initial(value: V) -> Self {
        Versioned {
            clock: VectorClock::new(),
            value,
        }
    }

    /// Maps the payload while preserving the version.
    pub fn map<U>(self, f: impl FnOnce(V) -> U) -> Versioned<U> {
        Versioned {
            clock: self.clock,
            value: f(self.value),
        }
    }
}

/// Inserts `candidate` into a sibling set, dropping any versions it
/// supersedes and rejecting it if an existing version supersedes *it*.
///
/// Returns `true` if the candidate was added (it was new or concurrent with
/// everything kept). This is the core maintenance routine for the multi-
/// version storage slots in Voldemort's engines.
pub fn resolve_siblings<V>(siblings: &mut Vec<Versioned<V>>, candidate: Versioned<V>) -> bool {
    let mut obsolete = false;
    siblings.retain(|existing| match existing.clock.compare(&candidate.clock) {
        Occurred::Before => false,
        Occurred::After | Occurred::Equal => {
            obsolete = true;
            true
        }
        Occurred::Concurrent => true,
    });
    if obsolete {
        return false;
    }
    siblings.push(candidate);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_clocks_are_equal() {
        assert_eq!(VectorClock::new().compare(&VectorClock::new()), Occurred::Equal);
    }

    #[test]
    fn increment_dominates_parent() {
        let parent = VectorClock::with(1, 3);
        let child = parent.incremented(1);
        assert_eq!(child.compare(&parent), Occurred::After);
        assert_eq!(parent.compare(&child), Occurred::Before);
        assert!(child.descends_from(&parent));
        assert!(!parent.descends_from(&child));
    }

    #[test]
    fn divergent_writers_are_concurrent() {
        let base = VectorClock::with(1, 1);
        let left = base.incremented(2);
        let right = base.incremented(3);
        assert_eq!(left.compare(&right), Occurred::Concurrent);
        assert_eq!(right.compare(&left), Occurred::Concurrent);
    }

    #[test]
    fn missing_entry_counts_as_zero() {
        let a = VectorClock::with(1, 1);
        let mut b = VectorClock::with(1, 1);
        b.increment(9);
        assert_eq!(a.compare(&b), Occurred::Before);
        assert_eq!(b.compare(&a), Occurred::After);
    }

    #[test]
    fn merge_dominates_both() {
        let base = VectorClock::with(1, 1);
        let left = base.incremented(2);
        let right = base.incremented(3);
        let merged = left.merged(&right);
        assert!(merged.descends_from(&left));
        assert!(merged.descends_from(&right));
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut clock = VectorClock::with(3, 7);
        clock.increment(1);
        clock.increment(65_535);
        let mut buf = Vec::new();
        clock.encode(&mut buf);
        let decoded = VectorClock::decode(&mut &buf[..]).unwrap();
        assert_eq!(decoded, clock);
    }

    #[test]
    fn sibling_resolution_keeps_concurrent_drops_stale() {
        let base = VectorClock::with(1, 1);
        let left = base.incremented(2);
        let right = base.incremented(3);

        let mut siblings = vec![Versioned::new(base.clone(), "base")];
        assert!(resolve_siblings(&mut siblings, Versioned::new(left.clone(), "left")));
        // base was superseded by left
        assert_eq!(siblings.len(), 1);
        assert!(resolve_siblings(&mut siblings, Versioned::new(right, "right")));
        // left and right are concurrent siblings
        assert_eq!(siblings.len(), 2);
        // re-putting something stale is rejected
        assert!(!resolve_siblings(&mut siblings, Versioned::new(base, "stale")));
        assert_eq!(siblings.len(), 2);
        // a clock descending from both replaces the whole set
        let winner = left.merged(&siblings[1].clock).incremented(1);
        assert!(resolve_siblings(&mut siblings, Versioned::new(winner, "resolved")));
        assert_eq!(siblings.len(), 1);
        assert_eq!(siblings[0].value, "resolved");
    }

    fn arb_clock() -> impl Strategy<Value = VectorClock> {
        proptest::collection::btree_map(0u16..8, 0u64..16, 0..6)
            .prop_map(|entries| VectorClock { entries })
    }

    proptest! {
        #[test]
        fn prop_compare_antisymmetric(a in arb_clock(), b in arb_clock()) {
            let ab = a.compare(&b);
            let ba = b.compare(&a);
            let expected = match ab {
                Occurred::Before => Occurred::After,
                Occurred::After => Occurred::Before,
                Occurred::Equal => Occurred::Equal,
                Occurred::Concurrent => Occurred::Concurrent,
            };
            prop_assert_eq!(ba, expected);
        }

        #[test]
        fn prop_equal_iff_same_entries(a in arb_clock(), b in arb_clock()) {
            prop_assert_eq!(a.compare(&b) == Occurred::Equal, a == b);
        }

        #[test]
        fn prop_merge_is_upper_bound(a in arb_clock(), b in arb_clock()) {
            let m = a.merged(&b);
            prop_assert!(m.descends_from(&a));
            prop_assert!(m.descends_from(&b));
        }

        #[test]
        fn prop_increment_strictly_after(a in arb_clock(), w in 0u16..8) {
            prop_assert_eq!(a.incremented(w).compare(&a), Occurred::After);
        }

        #[test]
        fn prop_codec_round_trip(a in arb_clock()) {
            let mut buf = Vec::new();
            a.encode(&mut buf);
            prop_assert_eq!(VectorClock::decode(&mut &buf[..]).unwrap(), a);
        }

        #[test]
        fn prop_transitivity_of_descends(a in arb_clock(), w1 in 0u16..8, w2 in 0u16..8) {
            let b = a.incremented(w1);
            let c = b.incremented(w2);
            prop_assert!(c.descends_from(&a));
        }

        // Merge is a join (least upper bound) on the version lattice: the
        // laws below are what quorum read-repair and apply_update lean on
        // when they fold sibling clocks into a single base clock.

        #[test]
        fn prop_merge_associative(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
            prop_assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
        }

        #[test]
        fn prop_merge_commutative(a in arb_clock(), b in arb_clock()) {
            prop_assert_eq!(a.merged(&b), b.merged(&a));
        }

        #[test]
        fn prop_merge_idempotent(a in arb_clock(), b in arb_clock()) {
            let m = a.merged(&b);
            prop_assert_eq!(m.merged(&b), m.clone());
            prop_assert_eq!(m.merged(&a), m);
        }

        #[test]
        fn prop_happens_before_antisymmetric(a in arb_clock(), b in arb_clock()) {
            // Mutual dominance collapses to equality: two distinct clocks
            // can never each descend from the other.
            if a.descends_from(&b) && b.descends_from(&a) {
                prop_assert_eq!(a, b);
            }
        }

        #[test]
        fn prop_concurrent_iff_neither_descends(a in arb_clock(), b in arb_clock()) {
            let concurrent = a.compare(&b) == Occurred::Concurrent;
            prop_assert_eq!(concurrent, !a.descends_from(&b) && !b.descends_from(&a));
        }

        #[test]
        fn prop_merge_of_concurrent_dominates_both_strictly(a in arb_clock(), b in arb_clock()) {
            if a.compare(&b) == Occurred::Concurrent {
                let m = a.merged(&b);
                prop_assert_eq!(m.compare(&a), Occurred::After);
                prop_assert_eq!(m.compare(&b), Occurred::After);
            }
        }
    }
}
