//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//!
//! Kafka frames every stored message as `[length][crc][attributes][payload]`
//! so a broker restart can detect a torn tail write and truncate the log to
//! the last valid message; `sqlstore`'s binlog uses the same framing. This
//! is the standard table-driven byte-at-a-time implementation.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// Computes the CRC-32 of `data` in one shot.
pub fn crc32(data: &[u8]) -> u32 {
    let mut hasher = Crc32::new();
    hasher.update(data);
    hasher.finalize()
}

/// Incremental CRC-32 hasher for multi-part frames.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let table = table();
        for &byte in data {
            let idx = ((self.state ^ u32::from(byte)) & 0xff) as usize;
            self.state = (self.state >> 8) ^ table[idx];
        }
    }

    /// Returns the final checksum value.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_vector() {
        // The canonical CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Crc32::new();
        h.update(&data[..10]);
        h.update(&data[10..]);
        assert_eq!(h.finalize(), crc32(data));
    }

    #[test]
    fn corruption_is_detected() {
        let mut frame = b"kafka message payload".to_vec();
        let good = crc32(&frame);
        frame[5] ^= 0x01;
        assert_ne!(crc32(&frame), good);
    }
}
