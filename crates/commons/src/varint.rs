//! Variable-length integer encoding (LEB128, unsigned + zig-zag signed).
//!
//! Databus and the schema codec frame record fields with varints, the same
//! choice Avro makes: most lengths and counters are small, so paying one
//! byte instead of eight keeps the relay's in-memory buffer dense — the
//! paper stresses that a relay holds "tens of GB of data with hundreds of
//! millions of Databus events" in memory.

use bytes::{Buf, BufMut};

/// Maximum encoded size of a u64 varint.
pub const MAX_VARINT_LEN: usize = 10;

/// Error returned when a varint cannot be decoded from the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarintError {
    /// The buffer ended in the middle of a varint.
    UnexpectedEof,
    /// More than [`MAX_VARINT_LEN`] continuation bytes were seen.
    Overflow,
}

impl std::fmt::Display for VarintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VarintError::UnexpectedEof => write!(f, "varint truncated"),
            VarintError::Overflow => write!(f, "varint longer than 10 bytes"),
        }
    }
}

impl std::error::Error for VarintError {}

/// Appends `value` to `buf` as an unsigned LEB128 varint.
pub fn write_u64<B: BufMut>(buf: &mut B, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint from `buf`.
pub fn read_u64<B: Buf>(buf: &mut B) -> Result<u64, VarintError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(VarintError::UnexpectedEof);
        }
        if shift >= 70 {
            return Err(VarintError::Overflow);
        }
        let byte = buf.get_u8();
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Appends `value` as a zig-zag-encoded signed varint (small magnitudes of
/// either sign stay short).
pub fn write_i64<B: BufMut>(buf: &mut B, value: i64) {
    write_u64(buf, zigzag_encode(value));
}

/// Reads a zig-zag-encoded signed varint.
pub fn read_i64<B: Buf>(buf: &mut B) -> Result<i64, VarintError> {
    read_u64(buf).map(zigzag_decode)
}

/// Maps a signed integer onto an unsigned one so small magnitudes encode
/// short: 0→0, -1→1, 1→2, -2→3, ...
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Number of bytes [`write_u64`] would produce for `value`.
pub fn encoded_len(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

/// Writes a length-prefixed byte slice.
pub fn write_bytes<B: BufMut>(buf: &mut B, data: &[u8]) {
    write_u64(buf, data.len() as u64);
    buf.put_slice(data);
}

/// Reads a length-prefixed byte slice.
pub fn read_bytes<B: Buf>(buf: &mut B) -> Result<Vec<u8>, VarintError> {
    let len = read_u64(buf)? as usize;
    if buf.remaining() < len {
        return Err(VarintError::UnexpectedEof);
    }
    let mut out = vec![0u8; len];
    buf.copy_to_slice(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trips_boundary_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(buf.len(), encoded_len(v), "len mismatch for {v}");
            let mut slice = &buf[..];
            assert_eq!(read_u64(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn signed_round_trips() {
        for v in [0i64, -1, 1, -64, 64, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut slice = &buf[..];
            assert_eq!(read_i64(&mut slice).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_keeps_small_magnitudes_short() {
        let mut buf = Vec::new();
        write_i64(&mut buf, -3);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        let mut slice = &buf[..buf.len() - 1];
        assert_eq!(read_u64(&mut slice), Err(VarintError::UnexpectedEof));
    }

    #[test]
    fn overlong_input_errors() {
        let buf = [0x80u8; 11];
        let mut slice = &buf[..];
        assert_eq!(read_u64(&mut slice), Err(VarintError::Overflow));
    }

    #[test]
    fn length_prefixed_bytes_round_trip() {
        let mut buf = Vec::new();
        write_bytes(&mut buf, b"espresso");
        write_bytes(&mut buf, b"");
        let mut slice = &buf[..];
        assert_eq!(read_bytes(&mut slice).unwrap(), b"espresso");
        assert_eq!(read_bytes(&mut slice).unwrap(), b"");
    }

    #[test]
    fn truncated_bytes_errors() {
        let mut buf = Vec::new();
        write_bytes(&mut buf, b"payload");
        let mut slice = &buf[..3];
        assert_eq!(read_bytes(&mut slice), Err(VarintError::UnexpectedEof));
    }

    proptest! {
        #[test]
        fn prop_u64_round_trip(v: u64) {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            prop_assert_eq!(buf.len(), encoded_len(v));
            let mut slice = &buf[..];
            prop_assert_eq!(read_u64(&mut slice).unwrap(), v);
        }

        #[test]
        fn prop_i64_round_trip(v: i64) {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let mut slice = &buf[..];
            prop_assert_eq!(read_i64(&mut slice).unwrap(), v);
        }

        #[test]
        fn prop_zigzag_bijective(v: i64) {
            prop_assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }
}
