//! Bounded fan-out executor for parallel quorum I/O.
//!
//! The paper's Voldemort section (§II.B) issues quorum reads and writes to
//! replicas *in parallel*, completing as soon as R (or W) acks arrive so a
//! slow replica is masked by the quorum instead of adding its full latency
//! to every request. This module provides the reusable machinery:
//!
//! * [`FanOutPool`] — a small bounded worker pool (plain threads, no async
//!   runtime) that quorum coordinators share.
//! * [`fan_out`] — launch a set of replica tasks, wait for the first
//!   `required` successes, replace failures with backup tasks, optionally
//!   *hedge* (issue one speculative backup after a delay) and enforce an
//!   overall deadline. Stragglers are demoted to a `late` callback instead
//!   of blocking the caller.
//!
//! # Determinism contract
//!
//! Thread scheduling is inherently nondeterministic, but the chaos harness
//! (`li_commons::chaos`) requires byte-identical replays. [`FanOutMode`]
//! therefore offers three execution strategies:
//!
//! * [`FanOutMode::Serial`] — the legacy walk: run tasks one at a time and
//!   stop at `required` successes. Exists as the comparison baseline.
//! * [`FanOutMode::Deterministic`] — run every launched task inline, in
//!   submission order, on the calling thread. Latencies are *accounted*
//!   (the caller sums simulated latencies as if the tasks had overlapped)
//!   rather than slept, so the observable sequence of side effects — and
//!   any RNG the tasks consume, e.g. [`crate::sim::SimNetwork`] drop rolls
//!   — is a pure function of the inputs. This is the default for
//!   simulation and the mode chaos replays use.
//! * [`FanOutMode::Parallel`] — real threads from the pool, wall-clock
//!   hedging and deadlines. Used by benchmarks and production-like runs
//!   where throughput matters more than replayability.
//!
//! Serial and Deterministic contact the same nodes in the same order and
//! produce the same result sets; Parallel contacts the same nodes but may
//! observe completions in any order (callers sort by preference-list
//! position before merging, so *results* still match when task outcomes
//! are themselves deterministic).

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
    active: usize,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signals workers (new job / shutdown) and `wait_idle` (job finished).
    cv: Condvar,
}

/// A small bounded worker pool shared by quorum coordinators.
///
/// Jobs are plain `FnOnce` closures; a panicking job is contained (the
/// worker survives). Dropping the pool drains the queue, then joins every
/// worker, so in-flight straggler tasks finish before teardown.
pub struct FanOutPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for FanOutPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanOutPool")
            .field("workers", &self.workers.len())
            .field("queued", &self.shared.state.lock().queue.len())
            .finish()
    }
}

impl FanOutPool {
    /// Creates a pool with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Self::named("fanout", workers)
    }

    /// [`Self::new`] with a thread-name prefix, so distinct pools (quorum
    /// fan-out vs driver scheduling) are tellable apart in a debugger or
    /// `/proc/<pid>/task`.
    pub fn named(prefix: &str, workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState::default()),
            cv: Condvar::new(),
        });
        let workers = workers.max(1);
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("{prefix}-{i}"))
                    .spawn(move || Self::worker_loop(&shared))
                    .expect("spawn fan-out worker")
            })
            .collect();
        FanOutPool {
            shared,
            workers: handles,
        }
    }

    fn worker_loop(shared: &PoolShared) {
        loop {
            let job = {
                let mut state = shared.state.lock();
                loop {
                    if let Some(job) = state.queue.pop_front() {
                        state.active += 1;
                        break Some(job);
                    }
                    if state.shutdown {
                        break None;
                    }
                    shared.cv.wait(&mut state);
                }
            };
            let Some(job) = job else { return };
            // Contain panics so one bad task can't kill a shared worker.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            let mut state = shared.state.lock();
            state.active -= 1;
            drop(state);
            shared.cv.notify_all();
        }
    }

    /// Enqueues a job.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        {
            let mut state = self.shared.state.lock();
            state.queue.push_back(Box::new(job));
        }
        self.shared.cv.notify_one();
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Blocks until the queue is empty and no job is executing. Used by
    /// tests that need straggler side effects (late hints, late repairs)
    /// flushed before asserting on cluster state.
    pub fn wait_idle(&self) {
        let mut state = self.shared.state.lock();
        while !state.queue.is_empty() || state.active > 0 {
            self.shared.cv.wait(&mut state);
        }
    }
}

impl Drop for FanOutPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock();
            state.shutdown = true;
        }
        self.shared.cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// How [`fan_out`] executes its tasks. See the module docs for the
/// determinism contract behind each mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FanOutMode {
    /// Legacy serial walk: stop launching once `required` successes arrive.
    Serial,
    /// Inline, submission-ordered execution of every launched task —
    /// replayable; simulated latencies overlap by accounting, not threads.
    #[default]
    Deterministic,
    /// Real threads, wall-clock hedging and deadlines.
    Parallel,
}

/// One replica task: `key` identifies the replica (it is carried through
/// to results, failures, and late callbacks), `run` performs the call.
pub struct FanOutTask<T, E> {
    /// Caller-chosen identity of the task (e.g. the node id).
    pub key: u64,
    /// The work. Must be `'static` because [`FanOutMode::Parallel`] may
    /// outlive the `fan_out` call with it.
    pub run: Box<dyn FnOnce() -> Result<T, E> + Send + 'static>,
}

impl<T, E> std::fmt::Debug for FanOutTask<T, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanOutTask").field("key", &self.key).finish()
    }
}

impl<T, E> FanOutTask<T, E> {
    /// Convenience constructor.
    pub fn new(key: u64, run: impl FnOnce() -> Result<T, E> + Send + 'static) -> Self {
        FanOutTask {
            key,
            run: Box::new(run),
        }
    }
}

/// Tuning for one [`fan_out`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct FanOutOptions {
    /// Execution mode.
    pub mode: FanOutMode,
    /// Successes needed before the call returns (the R or W of a quorum).
    pub required: usize,
    /// Parallel only: if the quorum is still unmet after this delay, launch
    /// one backup task speculatively (a hedged request).
    pub hedge_delay: Option<Duration>,
    /// Parallel only: give up waiting (not on the tasks — they keep
    /// running and report to `late`) after this much wall time.
    pub overall_deadline: Option<Duration>,
}

/// What [`fan_out`] observed.
#[derive(Debug)]
pub struct FanOutReport<T, E> {
    /// The first `required` successes, in completion order.
    pub quorum: Vec<(u64, T)>,
    /// Successes beyond the quorum that completed before the call
    /// returned (Deterministic runs every launched task, so extras are
    /// common there; Parallel only drains what already finished).
    pub extras: Vec<(u64, T)>,
    /// Non-fatal failures observed before the call returned.
    pub failures: Vec<(u64, E)>,
    /// A fatal failure (per the `is_fatal` predicate) aborts the fan-out.
    pub fatal: Option<(u64, E)>,
    /// Successes required for the quorum (copied from the options).
    pub required: usize,
    /// Total tasks launched (primaries + replacements + hedges).
    pub launched: usize,
    /// Hedge tasks launched.
    pub hedges: usize,
    /// Hedge tasks whose success was counted into the quorum.
    pub hedge_wins: usize,
}

impl<T, E> FanOutReport<T, E> {
    fn empty(required: usize) -> Self {
        FanOutReport {
            quorum: Vec::new(),
            extras: Vec::new(),
            failures: Vec::new(),
            fatal: None,
            required,
            launched: 0,
            hedges: 0,
            hedge_wins: 0,
        }
    }

    /// Did the quorum complete?
    pub fn satisfied(&self) -> bool {
        self.quorum.len() >= self.required
    }

    /// Successes (quorum then extras), by reference.
    pub fn successes(&self) -> impl Iterator<Item = &(u64, T)> {
        self.quorum.iter().chain(self.extras.iter())
    }
}

/// Callback for task outcomes that arrive *after* [`fan_out`] returned
/// (Parallel mode stragglers). Runs on a pool worker thread.
pub type LateHandler<T, E> = Arc<dyn Fn(u64, Result<T, E>) + Send + Sync>;

/// Fans `primary` tasks out, waits for `required` successes, and replaces
/// each observed failure with the next `backups` task (the sloppy-quorum
/// "try the next node in the preference list" move). `is_fatal` failures
/// abort immediately — no replacement, no further waiting. See
/// [`FanOutMode`] for how each mode trades parallelism for replayability.
pub fn fan_out<T, E>(
    pool: Option<&FanOutPool>,
    opts: &FanOutOptions,
    primary: Vec<FanOutTask<T, E>>,
    backups: Vec<FanOutTask<T, E>>,
    is_fatal: Option<&dyn Fn(&E) -> bool>,
    late: Option<LateHandler<T, E>>,
) -> FanOutReport<T, E>
where
    T: Send + 'static,
    E: Send + 'static,
{
    match opts.mode {
        FanOutMode::Serial => run_serial(opts, primary, backups, is_fatal, false),
        FanOutMode::Deterministic => run_serial(opts, primary, backups, is_fatal, true),
        FanOutMode::Parallel => match pool {
            Some(pool) => run_parallel(pool, opts, primary, backups, is_fatal, late),
            // No pool: degrade gracefully to the replayable inline mode.
            None => run_serial(opts, primary, backups, is_fatal, true),
        },
    }
}

/// Serial and Deterministic share one inline loop; `run_all` distinguishes
/// them (Deterministic keeps executing launched tasks past the quorum so
/// every contacted replica's side effects happen inline, matching what
/// Parallel would eventually do via stragglers).
fn run_serial<T, E>(
    opts: &FanOutOptions,
    primary: Vec<FanOutTask<T, E>>,
    backups: Vec<FanOutTask<T, E>>,
    is_fatal: Option<&dyn Fn(&E) -> bool>,
    run_all: bool,
) -> FanOutReport<T, E> {
    let mut report = FanOutReport::empty(opts.required);
    let mut backups = backups.into_iter();
    let mut work: VecDeque<FanOutTask<T, E>> = primary.into();
    while let Some(task) = work.pop_front() {
        if !run_all && report.satisfied() {
            break;
        }
        report.launched += 1;
        match (task.run)() {
            Ok(value) => {
                if report.quorum.len() < opts.required {
                    report.quorum.push((task.key, value));
                } else {
                    report.extras.push((task.key, value));
                }
            }
            Err(e) => {
                if is_fatal.is_some_and(|f| f(&e)) {
                    report.fatal = Some((task.key, e));
                    return report;
                }
                report.failures.push((task.key, e));
                // Replace the failure with the next backup replica, but
                // only while the quorum is still unmet.
                if !report.satisfied() {
                    if let Some(backup) = backups.next() {
                        work.push_back(backup);
                    }
                }
            }
        }
    }
    report
}

fn run_parallel<T, E>(
    pool: &FanOutPool,
    opts: &FanOutOptions,
    primary: Vec<FanOutTask<T, E>>,
    backups: Vec<FanOutTask<T, E>>,
    is_fatal: Option<&dyn Fn(&E) -> bool>,
    late: Option<LateHandler<T, E>>,
) -> FanOutReport<T, E>
where
    T: Send + 'static,
    E: Send + 'static,
{
    let mut report = FanOutReport::empty(opts.required);
    // `None` outcome = the task panicked (contained); it still counts
    // against `pending` so the collector can never hang on a lost task.
    let (tx, rx) = mpsc::channel::<(u64, Option<Result<T, E>>)>();
    // Once set, outcomes go to the `late` handler instead of the channel.
    let done = Arc::new(AtomicBool::new(false));

    let launch = |task: FanOutTask<T, E>| {
        let tx = tx.clone();
        let done = Arc::clone(&done);
        let late = late.clone();
        pool.submit(move || {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task.run)).ok();
            if done.load(Ordering::SeqCst) {
                if let (Some(late), Some(outcome)) = (&late, outcome) {
                    late(task.key, outcome);
                }
            } else if let Err(mpsc::SendError((key, outcome))) = tx.send((task.key, outcome)) {
                // Collector raced us to teardown; demote to the late path.
                if let (Some(late), Some(outcome)) = (&late, outcome) {
                    late(key, outcome);
                }
            }
        });
    };

    let mut backups = backups.into_iter();
    let mut pending = 0usize;
    for task in primary {
        launch(task);
        report.launched += 1;
        pending += 1;
    }

    let start = Instant::now();
    let mut hedged_keys: Vec<u64> = Vec::new();
    let mut hedge_armed = opts.hedge_delay.is_some();
    while !report.satisfied() && pending > 0 {
        let now = start.elapsed();
        // Wake at the next interesting instant: hedge fire or deadline.
        let mut wait = Duration::from_secs(3600);
        if hedge_armed {
            let hedge_at = opts.hedge_delay.unwrap_or_default();
            wait = wait.min(hedge_at.saturating_sub(now));
        }
        if let Some(deadline) = opts.overall_deadline {
            if now >= deadline {
                break;
            }
            wait = wait.min(deadline - now);
        }
        match rx.recv_timeout(wait) {
            Ok((key, Some(Ok(value)))) => {
                pending -= 1;
                if hedged_keys.contains(&key) {
                    report.hedge_wins += 1;
                }
                if report.quorum.len() < opts.required {
                    report.quorum.push((key, value));
                } else {
                    report.extras.push((key, value));
                }
            }
            Ok((key, Some(Err(e)))) => {
                pending -= 1;
                if is_fatal.is_some_and(|f| f(&e)) {
                    report.fatal = Some((key, e));
                    break;
                }
                report.failures.push((key, e));
                if !report.satisfied() {
                    if let Some(backup) = backups.next() {
                        launch(backup);
                        report.launched += 1;
                        pending += 1;
                    }
                }
            }
            Ok((_key, None)) => {
                // A contained panic: no result to record, but treat it
                // like a failure for replacement purposes.
                pending -= 1;
                if !report.satisfied() {
                    if let Some(backup) = backups.next() {
                        launch(backup);
                        report.launched += 1;
                        pending += 1;
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                let now = start.elapsed();
                if hedge_armed && now >= opts.hedge_delay.unwrap_or_default() {
                    hedge_armed = false;
                    if let Some(backup) = backups.next() {
                        hedged_keys.push(backup.key);
                        launch(backup);
                        report.launched += 1;
                        report.hedges += 1;
                        pending += 1;
                    }
                }
                if let Some(deadline) = opts.overall_deadline {
                    if now >= deadline {
                        break;
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    done.store(true, Ordering::SeqCst);
    // Drain whatever already finished; the rest reaches `late`. A task
    // finishing in this instant may slip to either side — both are
    // handled, so no outcome is lost.
    while let Ok((key, outcome)) = rx.try_recv() {
        match outcome {
            Some(Ok(value)) => {
                if hedged_keys.contains(&key) && report.quorum.len() < opts.required {
                    report.hedge_wins += 1;
                }
                if report.quorum.len() < opts.required {
                    report.quorum.push((key, value));
                } else {
                    report.extras.push((key, value));
                }
            }
            Some(Err(e)) => report.failures.push((key, e)),
            None => {}
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn ok_task(key: u64, log: &Arc<Mutex<Vec<u64>>>) -> FanOutTask<u64, String> {
        let log = Arc::clone(log);
        FanOutTask::new(key, move || {
            log.lock().push(key);
            Ok(key * 10)
        })
    }

    fn err_task(key: u64, log: &Arc<Mutex<Vec<u64>>>) -> FanOutTask<u64, String> {
        let log = Arc::clone(log);
        FanOutTask::new(key, move || {
            log.lock().push(key);
            Err(format!("fail-{key}"))
        })
    }

    #[test]
    fn serial_stops_at_quorum() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let primary = (0..4).map(|k| ok_task(k, &log)).collect();
        let opts = FanOutOptions {
            mode: FanOutMode::Serial,
            required: 2,
            ..Default::default()
        };
        let report = fan_out(None, &opts, primary, vec![], None, None);
        assert!(report.satisfied());
        assert_eq!(report.quorum, vec![(0, 0), (1, 10)]);
        assert_eq!(*log.lock(), vec![0, 1], "serial stops after R successes");
        assert!(report.extras.is_empty());
    }

    #[test]
    fn deterministic_runs_all_launched_in_order() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let primary = (0..4).map(|k| ok_task(k, &log)).collect();
        let opts = FanOutOptions {
            mode: FanOutMode::Deterministic,
            required: 2,
            ..Default::default()
        };
        let report = fan_out(None, &opts, primary, vec![], None, None);
        assert_eq!(report.quorum, vec![(0, 0), (1, 10)]);
        assert_eq!(report.extras, vec![(2, 20), (3, 30)]);
        assert_eq!(*log.lock(), vec![0, 1, 2, 3], "submission order, all run");
    }

    #[test]
    fn failures_pull_in_backups() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let primary = vec![err_task(0, &log), ok_task(1, &log)];
        let backups = vec![ok_task(9, &log), ok_task(8, &log)];
        let opts = FanOutOptions {
            mode: FanOutMode::Deterministic,
            required: 2,
            ..Default::default()
        };
        let report = fan_out(None, &opts, primary, backups, None, None);
        assert!(report.satisfied());
        assert_eq!(report.quorum, vec![(1, 10), (9, 90)]);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(*log.lock(), vec![0, 1, 9], "one backup per failure");
    }

    #[test]
    fn fatal_aborts_immediately() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let primary = vec![ok_task(0, &log), err_task(1, &log), ok_task(2, &log)];
        let opts = FanOutOptions {
            mode: FanOutMode::Deterministic,
            required: 3,
            ..Default::default()
        };
        let fatal = |e: &String| e.contains("fail");
        let report = fan_out(None, &opts, primary, vec![], Some(&fatal), None);
        assert!(report.fatal.is_some());
        assert_eq!(*log.lock(), vec![0, 1], "task 2 never launched");
    }

    #[test]
    fn parallel_reaches_quorum_and_reports_stragglers_late() {
        let pool = FanOutPool::new(4);
        let release = Arc::new((Mutex::new(false), Condvar::new()));
        let late_seen = Arc::new(AtomicU32::new(0));
        let mut primary: Vec<FanOutTask<u64, String>> = vec![
            FanOutTask::new(0, || Ok(1)),
            FanOutTask::new(1, || Ok(2)),
        ];
        {
            // A straggler that blocks until we let it go.
            let release = Arc::clone(&release);
            primary.push(FanOutTask::new(2, move || {
                let (lock, cv) = &*release;
                let mut go = lock.lock();
                while !*go {
                    cv.wait(&mut go);
                }
                Ok(3)
            }));
        }
        let opts = FanOutOptions {
            mode: FanOutMode::Parallel,
            required: 2,
            ..Default::default()
        };
        let late: LateHandler<u64, String> = {
            let late_seen = Arc::clone(&late_seen);
            Arc::new(move |key, outcome| {
                assert_eq!(key, 2);
                assert_eq!(outcome, Ok(3));
                late_seen.fetch_add(1, Ordering::SeqCst);
            })
        };
        let report = fan_out(Some(&pool), &opts, primary, vec![], None, Some(late));
        assert!(report.satisfied());
        assert_eq!(report.quorum.len(), 2);
        // Unblock the straggler; it must surface via the late handler.
        {
            let (lock, cv) = &*release;
            *lock.lock() = true;
            cv.notify_all();
        }
        pool.wait_idle();
        assert_eq!(late_seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn parallel_hedge_fires_and_wins() {
        let pool = FanOutPool::new(4);
        // Primary task stalls far longer than the hedge delay; the backup
        // answers instantly, so the hedge supplies the quorum success.
        let release = Arc::new((Mutex::new(false), Condvar::new()));
        let primary: Vec<FanOutTask<u64, String>> = vec![{
            let release = Arc::clone(&release);
            FanOutTask::new(0, move || {
                let (lock, cv) = &*release;
                let mut go = lock.lock();
                while !*go {
                    cv.wait(&mut go);
                }
                Ok(0)
            })
        }];
        let backups = vec![FanOutTask::new(7, || Ok(70))];
        let opts = FanOutOptions {
            mode: FanOutMode::Parallel,
            required: 1,
            hedge_delay: Some(Duration::from_millis(5)),
            ..Default::default()
        };
        let report = fan_out(Some(&pool), &opts, primary, backups, None, None);
        assert!(report.satisfied());
        assert_eq!(report.quorum, vec![(7, 70)]);
        assert_eq!(report.hedges, 1);
        assert_eq!(report.hedge_wins, 1);
        let (lock, cv) = &*release;
        *lock.lock() = true;
        cv.notify_all();
        pool.wait_idle();
    }

    #[test]
    fn parallel_deadline_returns_unsatisfied() {
        let pool = FanOutPool::new(2);
        let release = Arc::new((Mutex::new(false), Condvar::new()));
        let primary: Vec<FanOutTask<u64, String>> = vec![{
            let release = Arc::clone(&release);
            FanOutTask::new(0, move || {
                let (lock, cv) = &*release;
                let mut go = lock.lock();
                while !*go {
                    cv.wait(&mut go);
                }
                Ok(0)
            })
        }];
        let opts = FanOutOptions {
            mode: FanOutMode::Parallel,
            required: 1,
            overall_deadline: Some(Duration::from_millis(10)),
            ..Default::default()
        };
        let report = fan_out(Some(&pool), &opts, primary, vec![], None, None);
        assert!(!report.satisfied(), "deadline elapsed without a success");
        let (lock, cv) = &*release;
        *lock.lock() = true;
        cv.notify_all();
        pool.wait_idle();
    }

    #[test]
    fn pool_survives_panicking_job_and_wait_idle_flushes() {
        let pool = FanOutPool::new(2);
        let ran = Arc::new(AtomicU32::new(0));
        pool.submit(|| panic!("contained"));
        for _ in 0..8 {
            let ran = Arc::clone(&ran);
            pool.submit(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.wait_idle();
        assert_eq!(ran.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn parallel_without_pool_degrades_to_deterministic() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let primary = (0..3).map(|k| ok_task(k, &log)).collect();
        let opts = FanOutOptions {
            mode: FanOutMode::Parallel,
            required: 1,
            ..Default::default()
        };
        let report = fan_out(None, &opts, primary, vec![], None, None);
        assert_eq!(report.quorum.len(), 1);
        assert_eq!(*log.lock(), vec![0, 1, 2], "inline fallback runs all");
    }
}
