//! Striped locks for partitioned serving state.
//!
//! Every serving tier in the paper is built around partitioned state —
//! Espresso partitions databases, Kafka partitions topics, Voldemort
//! partitions the ring — yet a naive in-process reproduction funnels all
//! of it through one mutex per system. [`ShardedLock`] is the shared
//! substrate that fixes that: state is split over `N` independently
//! locked stripes, a key's stripe is chosen by hash, and multi-stripe
//! operations acquire their stripes in ascending index order so no two
//! transactions can deadlock no matter which keys they touch.
//!
//! Like [`crate::exec::FanOutMode`], every user of this primitive keeps a
//! deterministic twin: [`ShardMode::Deterministic`] degenerates to one
//! logical stripe, which makes the sharded code path byte-identical to
//! the old single-lock behavior — the property the seeded chaos harness
//! relies on for replayable traces.

use parking_lot::{Mutex, MutexGuard};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// How a sharded structure spreads its state over stripes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardMode {
    /// One logical stripe: every key contends on the same lock, exactly
    /// reproducing the pre-sharding serial behavior (chaos replays).
    Deterministic,
    /// The configured stripe count: disjoint keys proceed concurrently.
    #[default]
    Parallel,
}

/// `N` hash-striped instances of `S` behind independent mutexes.
///
/// Lock-ordering contract: any operation that holds more than one stripe
/// must acquire them in ascending stripe-index order ([`Self::lock_many`]
/// and [`Self::lock_all`] do this for you). Callers layering another lock
/// on top (e.g. a commit-point lock) must acquire it strictly *after*
/// all stripes, never before.
pub struct ShardedLock<S> {
    stripes: Vec<Mutex<S>>,
    mode: ShardMode,
}

impl<S: std::fmt::Debug> std::fmt::Debug for ShardedLock<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedLock")
            .field("stripes", &self.stripes.len())
            .finish()
    }
}

impl<S> ShardedLock<S> {
    /// Creates `stripes` stripes, each initialized by `init` (at least 1).
    pub fn new(stripes: usize, init: impl Fn() -> S) -> Self {
        ShardedLock {
            stripes: (0..stripes.max(1)).map(|_| Mutex::new(init())).collect(),
            mode: ShardMode::Parallel,
        }
    }

    /// [`Self::new`], but [`ShardMode::Deterministic`] collapses to one
    /// stripe regardless of `stripes`.
    pub fn with_mode(mode: ShardMode, stripes: usize, init: impl Fn() -> S) -> Self {
        let mut lock = match mode {
            ShardMode::Deterministic => Self::new(1, init),
            ShardMode::Parallel => Self::new(stripes, init),
        };
        lock.mode = mode;
        lock
    }

    /// Number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// The mode this lock was built with. Structures layering their own
    /// concurrency on top of the stripes (e.g. the Kafka ingest queues,
    /// which collapse drainer hand-off to inline execution in
    /// [`ShardMode::Deterministic`]) read this instead of threading the
    /// mode through a second channel.
    pub fn mode(&self) -> ShardMode {
        self.mode
    }

    /// The stripe a key hashes to. Stable for the lifetime of the value
    /// (`DefaultHasher` with default keys is deterministic), but callers
    /// must not persist stripe indices — they are an in-memory layout.
    pub fn stripe_of<K: Hash + ?Sized>(&self, key: &K) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() % self.stripes.len() as u64) as usize
    }

    /// Locks the stripe holding `key`.
    pub fn lock<K: Hash + ?Sized>(&self, key: &K) -> MutexGuard<'_, S> {
        self.lock_stripe(self.stripe_of(key))
    }

    /// Locks stripe `index` directly.
    pub fn lock_stripe(&self, index: usize) -> MutexGuard<'_, S> {
        self.stripes[index].lock()
    }

    /// The sorted, deduplicated stripe set covering `keys` — the exact
    /// acquisition order [`Self::lock_many`] will use.
    pub fn stripe_set<K: Hash>(&self, keys: impl IntoIterator<Item = K>) -> Vec<usize> {
        let mut ids: Vec<usize> = keys.into_iter().map(|k| self.stripe_of(&k)).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Locks the given stripes in ascending order (deadlock-free against
    /// any other multi-stripe holder). `indices` must be sorted and
    /// deduplicated — use [`Self::stripe_set`]. Guards are returned in the
    /// same order as `indices`.
    pub fn lock_many(&self, indices: &[usize]) -> Vec<MutexGuard<'_, S>> {
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
        indices.iter().map(|&i| self.stripes[i].lock()).collect()
    }

    /// Locks the two stripes covering `a` and `b` in ascending order — the
    /// two-row read-modify-write case (one guard when they collide).
    pub fn lock_pair<'l, A: Hash, B: Hash>(
        &'l self,
        a: &A,
        b: &B,
    ) -> (MutexGuard<'l, S>, Option<MutexGuard<'l, S>>) {
        let (ia, ib) = (self.stripe_of(a), self.stripe_of(b));
        if ia == ib {
            (self.lock_stripe(ia), None)
        } else {
            let (lo, hi) = (ia.min(ib), ia.max(ib));
            (self.lock_stripe(lo), Some(self.lock_stripe(hi)))
        }
    }

    /// Locks every stripe in ascending order (whole-structure operations:
    /// scans, fingerprints, recovery).
    pub fn lock_all(&self) -> Vec<MutexGuard<'_, S>> {
        self.stripes.iter().map(Mutex::lock).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn deterministic_mode_is_one_stripe() {
        let sharded: ShardedLock<u32> = ShardedLock::with_mode(ShardMode::Deterministic, 64, || 0);
        assert_eq!(sharded.stripe_count(), 1);
        let sharded: ShardedLock<u32> = ShardedLock::with_mode(ShardMode::Parallel, 64, || 0);
        assert_eq!(sharded.stripe_count(), 64);
    }

    #[test]
    fn mode_accessor_reports_construction_mode() {
        let det: ShardedLock<u32> = ShardedLock::with_mode(ShardMode::Deterministic, 64, || 0);
        assert_eq!(det.mode(), ShardMode::Deterministic);
        let par: ShardedLock<u32> = ShardedLock::with_mode(ShardMode::Parallel, 64, || 0);
        assert_eq!(par.mode(), ShardMode::Parallel);
        let plain: ShardedLock<u32> = ShardedLock::new(4, || 0);
        assert_eq!(plain.mode(), ShardMode::Parallel);
    }

    #[test]
    fn stripe_of_is_stable_and_in_range() {
        let sharded: ShardedLock<()> = ShardedLock::new(16, || ());
        for key in 0..1000u64 {
            let s = sharded.stripe_of(&key);
            assert!(s < 16);
            assert_eq!(s, sharded.stripe_of(&key));
        }
    }

    #[test]
    fn stripe_set_is_sorted_and_deduped() {
        let sharded: ShardedLock<()> = ShardedLock::new(8, || ());
        let set = sharded.stripe_set(0..100u64);
        assert!(set.windows(2).all(|w| w[0] < w[1]));
        let guards = sharded.lock_many(&set);
        assert_eq!(guards.len(), set.len());
    }

    #[test]
    fn lock_pair_collapses_colliding_keys() {
        let sharded: ShardedLock<()> = ShardedLock::new(1, || ());
        let (_a, b) = sharded.lock_pair(&1u64, &2u64);
        assert!(b.is_none(), "single stripe: one guard, no self-deadlock");
    }

    #[test]
    fn disjoint_keys_do_not_serialize() {
        // Hold key A's stripe; an operation on a key in a different stripe
        // must complete while A is held.
        let sharded: Arc<ShardedLock<u64>> = Arc::new(ShardedLock::new(8, || 0));
        let a = 0u64;
        let b = (1..100u64)
            .find(|k| sharded.stripe_of(k) != sharded.stripe_of(&a))
            .unwrap();
        let guard = sharded.lock(&a);
        let other = sharded.clone();
        let done = Arc::new(AtomicUsize::new(0));
        let done2 = done.clone();
        let h = std::thread::spawn(move || {
            *other.lock(&b) += 1;
            done2.store(1, Ordering::SeqCst);
        });
        h.join().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 1, "disjoint stripe not blocked");
        drop(guard);
    }

    #[test]
    fn ordered_acquisition_survives_crossing_transactions() {
        // Two threads repeatedly locking overlapping stripe pairs in
        // opposite key order must not deadlock (both go through the
        // sorted path).
        let sharded: Arc<ShardedLock<u64>> = Arc::new(ShardedLock::new(4, || 0));
        let mut handles = Vec::new();
        for t in 0..2 {
            let sharded = sharded.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let (x, y) = if t == 0 { (i, i + 1) } else { (i + 1, i) };
                    let set = sharded.stripe_set([x, y]);
                    let mut guards = sharded.lock_many(&set);
                    for g in &mut guards {
                        **g += 1;
                    }
                }
            }));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        for h in handles {
            assert!(std::time::Instant::now() < deadline, "deadlock tripwire");
            h.join().unwrap();
        }
    }
}
