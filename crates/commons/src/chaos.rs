//! Deterministic chaos harness: seeded fault schedules, replayable runs.
//!
//! The paper's systems are designed for datacenters where "frequent
//! transient and short-term failures ... are very prevalent" (§II.A). The
//! [`sim`](crate::sim) module provides the failure *surface* (lossy links,
//! partitions, crashed nodes, a virtual clock); this module provides the
//! failure *generator*: a [`ChaosScheduler`] that derives a whole fault
//! schedule — link drops, asymmetric partitions, crash/restart, clock-skew
//! bursts, slow links — from a single `u64` seed, interleaves it with a
//! workload, and records a compact event trace.
//!
//! The determinism contract (see DESIGN.md §"Determinism"): every run is a
//! pure function of `(seed, scenario, workload)`. The scheduler owns its
//! own [`SimClock`] and a [`SimNetwork`] seeded from the run seed; nothing
//! on the chaos path may consult the wall clock or the OS RNG. Running the
//! same seed twice therefore produces byte-identical traces, and any
//! invariant violation reproduces from the one-line repro the harness
//! prints (`CHAOS_SEED=<seed> cargo test ...`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

use crate::ring::NodeId;
use crate::sim::{Clock, SimClock, SimNetwork};

/// Crash/restart hooks a system under test exposes to the scheduler.
///
/// The network-level half of a fault (marking the node down in the
/// [`SimNetwork`]) is handled by the scheduler itself; these hooks are the
/// *system*-level half — expiring a Helix session, failing a broker,
/// halting a replica's apply loop. Systems that have no extra state to
/// tear down can leave the bodies empty.
pub trait FaultHooks {
    /// Take the node down (process death).
    fn crash(&self, node: NodeId);
    /// Bring a crashed node back (process restart + rejoin).
    fn restart(&self, node: NodeId);
    /// Pause background work on the node (GC pause / stalled thread).
    /// Default: no-op.
    fn pause(&self, node: NodeId) {
        let _ = node;
    }
    /// Resume a paused node. Default: no-op.
    fn resume(&self, node: NodeId) {
        let _ = node;
    }
}

/// No-op hooks for scenarios where the network model is the whole story.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetworkOnlyHooks;

impl FaultHooks for NetworkOnlyHooks {
    fn crash(&self, _node: NodeId) {}
    fn restart(&self, _node: NodeId) {}
}

/// Which fault classes a scenario enables and how aggressively.
///
/// Scenarios whose systems do not consult the [`SimNetwork`] (Kafka,
/// Espresso) should disable the network-only fault classes so every
/// scheduled fault is observable.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Per-step probability of injecting a new fault.
    pub fault_probability: f64,
    /// Per-step probability of healing one active fault.
    pub heal_probability: f64,
    /// Maximum nodes crashed at once (keep quorums viable).
    pub max_down: usize,
    /// Enable node crash/restart faults.
    pub crashes: bool,
    /// Enable symmetric two-group partitions.
    pub partitions: bool,
    /// Enable asymmetric (one-directional) link blocks.
    pub asym_links: bool,
    /// Enable probabilistic message-drop bursts.
    pub drops: bool,
    /// Enable slow-link latency injection.
    pub slow_links: bool,
    /// Enable clock-skew bursts (large forward jumps of the shared clock).
    pub clock_skew: bool,
    /// Enable pause/resume faults (delivered through the hooks only).
    pub pauses: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            fault_probability: 0.25,
            heal_probability: 0.35,
            max_down: 1,
            crashes: true,
            partitions: true,
            asym_links: true,
            drops: true,
            slow_links: true,
            clock_skew: true,
            pauses: false,
        }
    }
}

impl ChaosConfig {
    /// A config with every network-level fault disabled — for systems
    /// wired only to the crash/restart (and pause) hooks.
    pub fn hooks_only() -> Self {
        ChaosConfig {
            partitions: false,
            asym_links: false,
            drops: false,
            slow_links: false,
            ..Self::default()
        }
    }
}

/// The fault classes the scheduler draws from (internal tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    Crash,
    Partition,
    AsymLink,
    DropBurst,
    SlowLink,
    Pause,
}

/// An invariant violation plus everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct ChaosFailure {
    /// Seed of the failing run.
    pub seed: u64,
    /// Names and details of every violated invariant.
    pub violations: Vec<(String, String)>,
    /// The one-line repro command.
    pub repro: String,
    /// The full event trace of the failing run.
    pub trace: String,
}

impl std::fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (name, detail) in &self.violations {
            writeln!(f, "invariant `{name}` violated: {detail}")?;
        }
        writeln!(f, "repro: CHAOS_SEED={} {}", self.seed, self.repro)?;
        writeln!(f, "trace:")?;
        for line in self.trace.lines() {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ChaosFailure {}

/// A named invariant check: returns `Err(detail)` on violation.
pub type InvariantCheck<'a> = (&'a str, &'a dyn Fn() -> Result<(), String>);

/// Seeded fault scheduler. One instance drives one run.
///
/// The scheduler owns the run's [`SimClock`] and [`SimNetwork`] (seeded
/// from the run seed) so that the entire failure surface — fault choice,
/// fault timing, message loss — is a function of the seed. A scenario
/// builds its cluster on [`ChaosScheduler::network`] and
/// [`ChaosScheduler::clock`], then alternates workload operations with
/// [`ChaosScheduler::step`], and finally calls
/// [`ChaosScheduler::quiesce`] before checking invariants with
/// [`ChaosScheduler::check`].
pub struct ChaosScheduler {
    seed: u64,
    rng: StdRng,
    clock: SimClock,
    network: SimNetwork,
    nodes: Vec<NodeId>,
    config: ChaosConfig,
    step: u64,
    crashed: Vec<NodeId>,
    paused: Vec<NodeId>,
    partitioned: bool,
    blocked: Vec<(NodeId, NodeId)>,
    slowed: Vec<(NodeId, NodeId)>,
    dropping: bool,
    trace: Vec<String>,
}

impl ChaosScheduler {
    /// Creates a scheduler for a run over `nodes`, fully determined by
    /// `seed`.
    pub fn new(seed: u64, nodes: Vec<NodeId>, config: ChaosConfig) -> Self {
        assert!(!nodes.is_empty(), "chaos needs at least one node");
        ChaosScheduler {
            seed,
            rng: StdRng::seed_from_u64(seed),
            clock: SimClock::new(),
            // Distinct stream from the scheduler's own RNG so adding a
            // scheduler decision never shifts the network's drop pattern.
            network: SimNetwork::with_seed(seed ^ 0x9E37_79B9_7F4A_7C15),
            nodes,
            config,
            step: 0,
            crashed: Vec::new(),
            paused: Vec::new(),
            partitioned: false,
            blocked: Vec::new(),
            slowed: Vec::new(),
            dropping: false,
            trace: Vec::new(),
        }
    }

    /// The run seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The run's virtual clock (clones share time).
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// The run's network model (clones share state).
    pub fn network(&self) -> SimNetwork {
        self.network.clone()
    }

    /// Nodes currently crashed, in crash order.
    pub fn crashed_nodes(&self) -> &[NodeId] {
        &self.crashed
    }

    /// Appends a scenario-authored line to the event trace, stamped with
    /// the current step and virtual time. Trace content must itself be
    /// deterministic — never include wall-clock times or map-iteration
    /// output that has not been sorted.
    pub fn note(&mut self, message: impl AsRef<str>) {
        let line = format!(
            "[{:>4} t={}us] {}",
            self.step,
            self.clock.now_nanos() / 1_000,
            message.as_ref()
        );
        self.trace.push(line);
    }

    /// One scheduler step: advances the virtual clock by a seeded jitter
    /// (occasionally a skew burst), then maybe injects one fault and maybe
    /// heals one. Call between workload operations.
    pub fn step(&mut self, hooks: &dyn FaultHooks) {
        self.step += 1;
        let mut advance_ms = self.rng.random_range(1..=20u64);
        if self.config.clock_skew && self.rng.random::<f64>() < 0.03 {
            // Clock-skew burst: the kind of jump that expires sessions and
            // detector windows all at once.
            advance_ms = self.rng.random_range(5_000..=30_000u64);
            self.note(format!("clock-skew burst +{advance_ms}ms"));
        }
        self.clock.advance(Duration::from_millis(advance_ms));

        let inject = self.rng.random::<f64>() < self.config.fault_probability;
        if inject {
            self.inject_one(hooks);
        }
        let heal = self.rng.random::<f64>() < self.config.heal_probability;
        if heal {
            self.heal_one(hooks);
        }
    }

    fn enabled_kinds(&self) -> Vec<FaultKind> {
        let mut kinds = Vec::new();
        if self.config.crashes && self.crashed.len() < self.config.max_down {
            kinds.push(FaultKind::Crash);
        }
        if self.config.partitions && !self.partitioned {
            kinds.push(FaultKind::Partition);
        }
        if self.config.asym_links {
            kinds.push(FaultKind::AsymLink);
        }
        if self.config.drops && !self.dropping {
            kinds.push(FaultKind::DropBurst);
        }
        if self.config.slow_links {
            kinds.push(FaultKind::SlowLink);
        }
        if self.config.pauses && self.paused.len() + self.crashed.len() < self.config.max_down + 1 {
            kinds.push(FaultKind::Pause);
        }
        kinds
    }

    fn pick_node(&mut self, exclude_crashed: bool) -> Option<NodeId> {
        let candidates: Vec<NodeId> = self
            .nodes
            .iter()
            .copied()
            .filter(|n| !exclude_crashed || (!self.crashed.contains(n) && !self.paused.contains(n)))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let i = self.rng.random_range(0..candidates.len());
        Some(candidates[i])
    }

    fn inject_one(&mut self, hooks: &dyn FaultHooks) {
        let kinds = self.enabled_kinds();
        if kinds.is_empty() {
            return;
        }
        let kind = kinds[self.rng.random_range(0..kinds.len())];
        match kind {
            FaultKind::Crash => {
                if let Some(node) = self.pick_node(true) {
                    self.network.crash(node);
                    hooks.crash(node);
                    self.crashed.push(node);
                    self.note(format!("crash {node:?}"));
                }
            }
            FaultKind::Partition => {
                // Split off a seeded minority group.
                let mut shuffled = self.nodes.clone();
                for i in (1..shuffled.len()).rev() {
                    let j = self.rng.random_range(0..=i);
                    shuffled.swap(i, j);
                }
                let cut = 1 + self.rng.random_range(0..shuffled.len().div_ceil(2));
                let (minority, majority) = shuffled.split_at(cut.min(shuffled.len() - 1));
                self.network.partition(&[minority, majority]);
                self.partitioned = true;
                self.note(format!("partition minority={minority:?}"));
            }
            FaultKind::AsymLink => {
                if self.nodes.len() >= 2 {
                    let a = self.nodes[self.rng.random_range(0..self.nodes.len())];
                    let mut b = self.nodes[self.rng.random_range(0..self.nodes.len())];
                    if a == b {
                        b = self.nodes[(self.nodes.iter().position(|&n| n == a).unwrap() + 1)
                            % self.nodes.len()];
                    }
                    self.network.block_link(a, b);
                    self.blocked.push((a, b));
                    self.note(format!("block-link {a:?}->{b:?}"));
                }
            }
            FaultKind::DropBurst => {
                let p = self.rng.random_range(5..=30) as f64 / 100.0;
                self.network.set_drop_probability(p);
                self.dropping = true;
                self.note(format!("drop-burst p={p:.2}"));
            }
            FaultKind::SlowLink => {
                if self.nodes.len() >= 2 {
                    let a = self.nodes[self.rng.random_range(0..self.nodes.len())];
                    let b = self.nodes[self.rng.random_range(0..self.nodes.len())];
                    let ms = self.rng.random_range(50..=500u64);
                    self.network
                        .set_link_latency(a, b, Duration::from_millis(ms));
                    self.slowed.push((a, b));
                    self.note(format!("slow-link {a:?}->{b:?} +{ms}ms"));
                }
            }
            FaultKind::Pause => {
                if let Some(node) = self.pick_node(true) {
                    hooks.pause(node);
                    self.paused.push(node);
                    self.note(format!("pause {node:?}"));
                }
            }
        }
    }

    fn heal_one(&mut self, hooks: &dyn FaultHooks) {
        // Collect active fault categories, pick one, undo it.
        let mut active = Vec::new();
        if !self.crashed.is_empty() {
            active.push(FaultKind::Crash);
        }
        if self.partitioned {
            active.push(FaultKind::Partition);
        }
        if !self.blocked.is_empty() {
            active.push(FaultKind::AsymLink);
        }
        if self.dropping {
            active.push(FaultKind::DropBurst);
        }
        if !self.slowed.is_empty() {
            active.push(FaultKind::SlowLink);
        }
        if !self.paused.is_empty() {
            active.push(FaultKind::Pause);
        }
        if active.is_empty() {
            return;
        }
        match active[self.rng.random_range(0..active.len())] {
            FaultKind::Crash => {
                let node = self.crashed.remove(0);
                self.network.restart(node);
                hooks.restart(node);
                self.note(format!("restart {node:?}"));
            }
            FaultKind::Partition => {
                self.network.heal();
                self.partitioned = false;
                self.note("heal partition");
            }
            FaultKind::AsymLink => {
                let (a, b) = self.blocked.remove(0);
                self.network.unblock_link(a, b);
                self.note(format!("unblock-link {a:?}->{b:?}"));
            }
            FaultKind::DropBurst => {
                self.network.set_drop_probability(0.0);
                self.dropping = false;
                self.note("drop-burst over");
            }
            FaultKind::SlowLink => {
                let (a, b) = self.slowed.remove(0);
                self.network.set_link_latency(a, b, Duration::ZERO);
                self.note(format!("fast-link {a:?}->{b:?}"));
            }
            FaultKind::Pause => {
                let node = self.paused.remove(0);
                hooks.resume(node);
                self.note(format!("resume {node:?}"));
            }
        }
    }

    /// Ends the fault schedule: clears every network fault, resumes every
    /// paused node, and restarts every crashed node. After this the
    /// scenario drains its recovery machinery (probes, hints, replication
    /// pumps) and then checks invariants.
    pub fn quiesce(&mut self, hooks: &dyn FaultHooks) {
        self.network.heal_all();
        self.partitioned = false;
        self.blocked.clear();
        self.slowed.clear();
        self.dropping = false;
        for node in std::mem::take(&mut self.paused) {
            hooks.resume(node);
        }
        for node in std::mem::take(&mut self.crashed) {
            self.network.restart(node);
            hooks.restart(node);
        }
        self.note("quiesce: all faults healed");
    }

    /// The full event trace so far, one event per line. Byte-identical
    /// across runs with the same `(seed, scenario, workload)`.
    pub fn trace_text(&self) -> String {
        self.trace.join("\n")
    }

    /// Runs every invariant check; on any violation returns a
    /// [`ChaosFailure`] carrying the `CHAOS_SEED=…` repro line (pass the
    /// test's `cargo test` invocation as `repro`) and the event trace.
    pub fn check(&mut self, invariants: &[InvariantCheck<'_>], repro: &str) -> Result<(), ChaosFailure> {
        let mut violations = Vec::new();
        for (name, check) in invariants {
            match check() {
                Ok(()) => self.note(format!("invariant `{name}` ok")),
                Err(detail) => {
                    self.note(format!("invariant `{name}` VIOLATED: {detail}"));
                    violations.push((name.to_string(), detail));
                }
            }
        }
        if violations.is_empty() {
            return Ok(());
        }
        Err(ChaosFailure {
            seed: self.seed,
            violations,
            repro: repro.to_string(),
            trace: self.trace_text(),
        })
    }
}

/// Seeds for a sweep. `CHAOS_SEED=<n>` pins a single seed (the repro
/// path); otherwise `CHAOS_SEEDS=<k>` widens the sweep to `k` seeds (CI
/// runs 20); otherwise `default_count` seeds. Seeds are `1..=k` — the
/// diversity comes from the splitmix64 seeding inside `StdRng`.
pub fn sweep_seeds(default_count: u64) -> Vec<u64> {
    if let Ok(s) = std::env::var("CHAOS_SEED") {
        if let Ok(seed) = s.trim().parse::<u64>() {
            return vec![seed];
        }
    }
    let count = std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(default_count)
        .max(1);
    (1..=count).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u16) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    /// Hooks that record calls, proving the scheduler drives them.
    #[derive(Default)]
    struct RecordingHooks {
        calls: parking_lot::Mutex<Vec<String>>,
    }

    impl FaultHooks for RecordingHooks {
        fn crash(&self, node: NodeId) {
            self.calls.lock().push(format!("crash {}", node.0));
        }
        fn restart(&self, node: NodeId) {
            self.calls.lock().push(format!("restart {}", node.0));
        }
        fn pause(&self, node: NodeId) {
            self.calls.lock().push(format!("pause {}", node.0));
        }
        fn resume(&self, node: NodeId) {
            self.calls.lock().push(format!("resume {}", node.0));
        }
    }

    fn run_schedule(seed: u64) -> (String, Vec<String>) {
        let hooks = RecordingHooks::default();
        let mut sched = ChaosScheduler::new(
            seed,
            nodes(5),
            ChaosConfig {
                pauses: true,
                ..ChaosConfig::default()
            },
        );
        for i in 0..200 {
            sched.step(&hooks);
            if i % 10 == 0 {
                sched.note(format!("workload tick {i}"));
            }
        }
        sched.quiesce(&hooks);
        (sched.trace_text(), hooks.calls.into_inner())
    }

    #[test]
    fn same_seed_same_trace_and_hook_calls() {
        let (trace_a, calls_a) = run_schedule(7);
        let (trace_b, calls_b) = run_schedule(7);
        assert_eq!(trace_a, trace_b, "trace must be byte-identical");
        assert_eq!(calls_a, calls_b);
        assert!(!trace_a.is_empty());
    }

    #[test]
    fn different_seeds_diverge() {
        let (trace_a, _) = run_schedule(1);
        let (trace_b, _) = run_schedule(2);
        assert_ne!(trace_a, trace_b);
    }

    #[test]
    fn quiesce_restarts_every_crashed_node() {
        let hooks = RecordingHooks::default();
        let mut sched = ChaosScheduler::new(3, nodes(4), ChaosConfig::default());
        for _ in 0..300 {
            sched.step(&hooks);
        }
        sched.quiesce(&hooks);
        assert!(sched.crashed_nodes().is_empty());
        let calls = hooks.calls.into_inner();
        let crashes = calls.iter().filter(|c| c.starts_with("crash")).count();
        let restarts = calls.iter().filter(|c| c.starts_with("restart")).count();
        assert!(crashes > 0, "300 steps at p=0.25 must crash something");
        assert_eq!(crashes, restarts, "every crash matched by a restart");
        // And the network agrees: every node reachable again.
        let net = sched.network();
        for n in nodes(4) {
            assert!(net.deliver(NodeId(99), n).is_ok());
        }
    }

    #[test]
    fn max_down_respected() {
        let hooks = RecordingHooks::default();
        let mut sched = ChaosScheduler::new(
            11,
            nodes(3),
            ChaosConfig {
                max_down: 1,
                heal_probability: 0.0,
                ..ChaosConfig::default()
            },
        );
        for _ in 0..200 {
            sched.step(&hooks);
            assert!(sched.crashed_nodes().len() <= 1);
        }
    }

    #[test]
    fn check_reports_seed_and_trace() {
        let mut sched = ChaosScheduler::new(42, nodes(3), ChaosConfig::default());
        sched.note("something happened");
        let fail_check: &dyn Fn() -> Result<(), String> =
            &|| Err("key k1 lost".to_string());
        let ok_check: &dyn Fn() -> Result<(), String> = &|| Ok(());
        let err = sched
            .check(
                &[("durability", fail_check), ("order", ok_check)],
                "cargo test --test chaos some_scenario",
            )
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("CHAOS_SEED=42 cargo test --test chaos some_scenario"));
        assert!(msg.contains("invariant `durability` violated: key k1 lost"));
        assert!(msg.contains("something happened"));
        assert!(!msg.contains("`order` violated"));
    }

    #[test]
    fn sweep_seed_env_override() {
        // Not set in the test environment: default count applies.
        if std::env::var("CHAOS_SEED").is_err() && std::env::var("CHAOS_SEEDS").is_err() {
            assert_eq!(sweep_seeds(3), vec![1, 2, 3]);
        }
    }
}
