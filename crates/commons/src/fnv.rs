//! FNV-1a hashing.
//!
//! Voldemort's router and Espresso's partitioner both need a fast,
//! well-distributed, *stable* hash of arbitrary keys — stability matters
//! because the partition a key maps to must be identical across every node
//! and every process restart (the paper's routing table is static metadata
//! replicated to all nodes). Rust's `DefaultHasher` is randomly seeded per
//! process, so we implement FNV-1a explicitly.

/// 64-bit FNV-1a offset basis.
const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `data` with 64-bit FNV-1a.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = OFFSET_BASIS;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Hashes `data` then folds to a 32-bit value (xor-fold keeps distribution).
pub fn fnv1a_32(data: &[u8]) -> u32 {
    let h = fnv1a(data);
    ((h >> 32) ^ (h & 0xffff_ffff)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values for 64-bit FNV-1a.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        assert_ne!(fnv1a(b"member:1"), fnv1a(b"member:2"));
        assert_ne!(fnv1a_32(b"member:1"), fnv1a_32(b"member:2"));
    }

    #[test]
    fn distribution_over_partitions_is_roughly_uniform() {
        // 32 partitions, 32k keys: every partition should land within 2x of
        // the mean. This is the property the ring relies on to avoid the
        // hot spots the paper attributes to order-preserving schemes.
        const PARTS: usize = 32;
        let mut counts = [0usize; PARTS];
        for i in 0..32_000 {
            let key = format!("member:{i}");
            counts[(fnv1a(key.as_bytes()) % PARTS as u64) as usize] += 1;
        }
        let mean = 32_000 / PARTS;
        for (p, &c) in counts.iter().enumerate() {
            assert!(c > mean / 2 && c < mean * 2, "partition {p} count {c}");
        }
    }
}
