//! Unified metrics layer shared by every system in the reproduction.
//!
//! The paper's systems each shipped with their own ad-hoc monitoring; this
//! module gives the reproduction one registry of named **counters**,
//! **gauges**, and **histograms** (backed by [`crate::hist::Histogram`]
//! for bounded-error percentiles), so Voldemort, Kafka, Databus, Espresso,
//! the sqlstore, Helix, and ZooKeeper all report through the same pipe.
//!
//! # Naming
//!
//! Metric names are dot-separated paths:
//! `<system>.<node-or-component>.<metric>`, e.g.
//! `voldemort.node3.get.latency_ns` or `kafka.consumer.lag`. The
//! [`MetricsScope`] helper appends segments so a component only ever names
//! its own leaf metrics.
//!
//! # Hot-path cost
//!
//! [`Counter`] and [`Gauge`] are single atomics: fetch the handle once
//! (registry lookup takes a lock), then every update is one atomic RMW.
//! [`Histo`] takes a short mutex per record. Handles are cheap clones of
//! `Arc`s, so components cache them at construction time.
//!
//! # Snapshots
//!
//! [`MetricsRegistry::snapshot`] captures a point-in-time
//! [`MetricsSnapshot`]: counters and gauges exactly, histograms as a
//! [`HistogramSummary`] (count/mean/min/max/p50/p99/p999). Snapshots
//! subtract ([`MetricsSnapshot::delta`]) for per-interval views, print as
//! an aligned text table, and round-trip through JSON.

use parking_lot::Mutex;
use serde::{get_field, object, DeError, Deserialize, JsonValue, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::hist::Histogram;

/// A monotonically increasing event count (one atomic on the hot path).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level (queue depth, lag, offset).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the level.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Moves the level up by `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Moves the level down by `delta`.
    pub fn sub(&self, delta: i64) {
        self.0.fetch_sub(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A latency/size distribution with bounded-relative-error percentiles.
#[derive(Debug, Clone, Default)]
pub struct Histo(Arc<Mutex<Histogram>>);

impl Histo {
    /// Records one observation (nanoseconds by convention for latencies).
    pub fn record(&self, value: u64) {
        self.0.lock().record(value);
    }

    /// Records a [`Duration`] in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.0.lock().record_duration(d);
    }

    /// Starts a timer that records its elapsed wall time on drop.
    pub fn start_timer(&self) -> HistoTimer {
        HistoTimer {
            histo: self.clone(),
            start: Instant::now(),
        }
    }

    /// Merges a pre-recorded histogram into this one (bulk import — e.g.
    /// a workload driver publishing its offline latency report).
    pub fn merge_from(&self, other: &Histogram) {
        self.0.lock().merge(other);
    }

    /// A point-in-time copy of the underlying histogram.
    pub fn snapshot(&self) -> Histogram {
        self.0.lock().clone()
    }

    /// Summarizes the current distribution.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary::of(&self.0.lock())
    }
}

/// Guard returned by [`Histo::start_timer`]; records elapsed nanoseconds
/// into the histogram when dropped.
#[derive(Debug)]
pub struct HistoTimer {
    histo: Histo,
    start: Instant,
}

impl Drop for HistoTimer {
    fn drop(&mut self) {
        self.histo.record_duration(self.start.elapsed());
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histo(Histo),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histo(_) => "histogram",
        }
    }
}

/// The shared registry: name → metric, scoped via [`MetricsScope`].
///
/// Clusters own one `Arc<MetricsRegistry>` and hand scoped views to their
/// nodes and clients; `snapshot()` then sees the whole system at once.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(MetricsRegistry::default())
    }

    fn get_or_insert<T: Clone>(
        &self,
        name: &str,
        make: impl FnOnce() -> Metric,
        pick: impl Fn(&Metric) -> Option<T>,
    ) -> T {
        let mut metrics = self.metrics.lock();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(make);
        pick(metric).unwrap_or_else(|| {
            panic!(
                "metric `{name}` already registered as a {}",
                metric.kind()
            )
        })
    }

    /// The counter named `name`, creating it at zero on first use.
    ///
    /// Panics if `name` is already a gauge or histogram — one name, one
    /// metric kind, across the whole process.
    pub fn counter(&self, name: &str) -> Counter {
        self.get_or_insert(
            name,
            || Metric::Counter(Counter::default()),
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// The gauge named `name`, creating it at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.get_or_insert(
            name,
            || Metric::Gauge(Gauge::default()),
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// The histogram named `name`, creating it empty on first use.
    pub fn histogram(&self, name: &str) -> Histo {
        self.get_or_insert(
            name,
            || Metric::Histo(Histo::default()),
            |m| match m {
                Metric::Histo(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// A view that prefixes every metric name with `prefix` + `.`.
    pub fn scope(self: &Arc<Self>, prefix: impl Into<String>) -> MetricsScope {
        MetricsScope {
            registry: Arc::clone(self),
            prefix: prefix.into(),
        }
    }

    /// Captures every registered metric at this instant.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock();
        MetricsSnapshot {
            metrics: metrics
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.value()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.value()),
                        Metric::Histo(h) => MetricValue::Histogram(h.summary()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

/// A dotted-prefix view over a [`MetricsRegistry`].
#[derive(Debug, Clone)]
pub struct MetricsScope {
    registry: Arc<MetricsRegistry>,
    prefix: String,
}

impl MetricsScope {
    fn full(&self, name: &str) -> String {
        format!("{}.{name}", self.prefix)
    }

    /// The counter `<prefix>.<name>`.
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(&self.full(name))
    }

    /// The gauge `<prefix>.<name>`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry.gauge(&self.full(name))
    }

    /// The histogram `<prefix>.<name>`.
    pub fn histogram(&self, name: &str) -> Histo {
        self.registry.histogram(&self.full(name))
    }

    /// A deeper scope `<prefix>.<segment>`.
    pub fn scope(&self, segment: &str) -> MetricsScope {
        MetricsScope {
            registry: Arc::clone(&self.registry),
            prefix: self.full(segment),
        }
    }

    /// The registry this scope writes into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }
}

/// Distribution summary exported in snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl HistogramSummary {
    /// Summarizes a histogram.
    pub fn of(h: &Histogram) -> Self {
        HistogramSummary {
            count: h.count(),
            mean: h.mean(),
            min: h.min(),
            max: h.max(),
            p50: h.quantile(0.5),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
        }
    }
}

impl Serialize for HistogramSummary {
    fn to_json_value(&self) -> JsonValue {
        object(vec![
            ("count", self.count.to_json_value()),
            ("mean", self.mean.to_json_value()),
            ("min", self.min.to_json_value()),
            ("max", self.max.to_json_value()),
            ("p50", self.p50.to_json_value()),
            ("p99", self.p99.to_json_value()),
            ("p999", self.p999.to_json_value()),
        ])
    }
}

impl Deserialize for HistogramSummary {
    fn from_json_value(value: &JsonValue) -> Result<Self, DeError> {
        Ok(HistogramSummary {
            count: get_field(value, "count")?,
            mean: get_field(value, "mean")?,
            min: get_field(value, "min")?,
            max: get_field(value, "max")?,
            p50: get_field(value, "p50")?,
            p99: get_field(value, "p99")?,
            p999: get_field(value, "p999")?,
        })
    }
}

/// One metric's value inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(i64),
    /// A histogram summary.
    Histogram(HistogramSummary),
}

/// JSON form: a one-entry object tagged by kind, e.g. `{"counter": 17}`,
/// so readings stay unambiguous across export/import.
impl Serialize for MetricValue {
    fn to_json_value(&self) -> JsonValue {
        match self {
            MetricValue::Counter(v) => object(vec![("counter", v.to_json_value())]),
            MetricValue::Gauge(v) => object(vec![("gauge", v.to_json_value())]),
            MetricValue::Histogram(s) => object(vec![("histogram", s.to_json_value())]),
        }
    }
}

impl Deserialize for MetricValue {
    fn from_json_value(value: &JsonValue) -> Result<Self, DeError> {
        let entries = value
            .as_object()
            .filter(|e| e.len() == 1)
            .ok_or_else(|| DeError::expected("one-entry metric object", value))?;
        let (tag, payload) = &entries[0];
        match tag.as_str() {
            "counter" => u64::from_json_value(payload).map(MetricValue::Counter),
            "gauge" => i64::from_json_value(payload).map(MetricValue::Gauge),
            "histogram" => {
                HistogramSummary::from_json_value(payload).map(MetricValue::Histogram)
            }
            other => Err(DeError(format!("unknown metric kind `{other}`"))),
        }
    }
}

/// A point-in-time capture of every metric in a registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    metrics: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Builds a snapshot from explicit readings (mostly for tests and for
    /// JSON import).
    pub fn from_readings(readings: impl IntoIterator<Item = (String, MetricValue)>) -> Self {
        MetricsSnapshot {
            metrics: readings.into_iter().collect(),
        }
    }

    /// All readings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics captured.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The reading named `name`.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.get(name)
    }

    /// Counter reading, if `name` is a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge reading, if `name` is a gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram summary, if `name` is a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(s)) => Some(s),
            _ => None,
        }
    }

    /// Sums all counter readings whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .filter_map(|(_, v)| match v {
                MetricValue::Counter(c) => Some(*c),
                _ => None,
            })
            .sum()
    }

    /// The interval view `self - earlier`: counters and histogram counts
    /// subtract (saturating); gauges and histogram statistics keep this
    /// snapshot's (current) readings; metrics absent from `earlier` pass
    /// through unchanged.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let metrics = self
            .metrics
            .iter()
            .map(|(name, value)| {
                let delta = match (value, earlier.metrics.get(name)) {
                    (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                        MetricValue::Counter(now.saturating_sub(*then))
                    }
                    (MetricValue::Histogram(now), Some(MetricValue::Histogram(then))) => {
                        MetricValue::Histogram(HistogramSummary {
                            count: now.count.saturating_sub(then.count),
                            ..now.clone()
                        })
                    }
                    (value, _) => value.clone(),
                };
                (name.clone(), delta)
            })
            .collect();
        MetricsSnapshot { metrics }
    }

    /// Renders an aligned `name  value` table, histograms as one-line
    /// summaries — the per-run report the workload driver prints.
    pub fn to_text_table(&self) -> String {
        let width = self
            .metrics
            .keys()
            .map(String::len)
            .max()
            .unwrap_or(0)
            .max("metric".len());
        let mut out = format!("{:<width$}  value\n", "metric");
        for (name, value) in &self.metrics {
            let rendered = match value {
                MetricValue::Counter(v) => format!("{v}"),
                MetricValue::Gauge(v) => format!("{v}"),
                MetricValue::Histogram(s) => format!(
                    "n={} mean={:.0} p50={} p99={} max={}",
                    s.count, s.mean, s.p50, s.p99, s.max
                ),
            };
            out.push_str(&format!("{name:<width$}  {rendered}\n"));
        }
        out
    }

    /// Exports as JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Imports from JSON produced by [`MetricsSnapshot::to_json`].
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

impl Serialize for MetricsSnapshot {
    fn to_json_value(&self) -> JsonValue {
        self.metrics.to_json_value()
    }
}

impl Deserialize for MetricsSnapshot {
    fn from_json_value(value: &JsonValue) -> Result<Self, DeError> {
        Ok(MetricsSnapshot {
            metrics: BTreeMap::from_json_value(value)?,
        })
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_gauge_histogram_basics() {
        let registry = MetricsRegistry::new();
        let hits = registry.counter("web.hits");
        hits.inc();
        hits.add(4);
        assert_eq!(hits.value(), 5);

        let depth = registry.gauge("queue.depth");
        depth.set(7);
        depth.sub(2);
        assert_eq!(depth.value(), 5);

        let lat = registry.histogram("lat_ns");
        lat.record(1000);
        lat.record(3000);
        assert_eq!(lat.summary().count, 2);
        assert_eq!(lat.summary().mean, 2000.0);
    }

    #[test]
    fn same_name_returns_same_metric() {
        let registry = MetricsRegistry::new();
        registry.counter("a").inc();
        registry.counter("a").inc();
        assert_eq!(registry.counter("a").value(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_collision_panics() {
        let registry = MetricsRegistry::new();
        registry.counter("x");
        registry.gauge("x");
    }

    #[test]
    fn scopes_prefix_names() {
        let registry = MetricsRegistry::new();
        let node = registry.scope("voldemort").scope("node3");
        node.counter("get.ok").inc();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("voldemort.node3.get.ok"), Some(1));
    }

    #[test]
    fn concurrent_increments_sum_exactly() {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("contended");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let counter = counter.clone();
                thread::spawn(move || {
                    for _ in 0..10_000 {
                        counter.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counter.value(), 80_000);
    }

    #[test]
    fn snapshot_is_isolated_from_later_updates() {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("c");
        counter.add(3);
        let snap = registry.snapshot();
        counter.add(100);
        registry.gauge("late").set(9);
        assert_eq!(snap.counter("c"), Some(3));
        assert!(snap.get("late").is_none());
        assert_eq!(registry.snapshot().counter("c"), Some(103));
    }

    #[test]
    fn delta_subtracts_counters_keeps_gauges() {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("events");
        let gauge = registry.gauge("level");
        let histo = registry.histogram("lat");
        counter.add(10);
        gauge.set(5);
        histo.record(100);
        let before = registry.snapshot();
        counter.add(7);
        gauge.set(-3);
        histo.record(200);
        let delta = registry.snapshot().delta(&before);
        assert_eq!(delta.counter("events"), Some(7));
        assert_eq!(delta.gauge("level"), Some(-3));
        assert_eq!(delta.histogram("lat").unwrap().count, 1);
    }

    #[test]
    fn timer_records_elapsed() {
        let registry = MetricsRegistry::new();
        let lat = registry.histogram("t");
        {
            let _timer = lat.start_timer();
        }
        assert_eq!(lat.summary().count, 1);
    }

    #[test]
    fn json_round_trip() {
        let registry = MetricsRegistry::new();
        registry.counter("c").add(42);
        registry.gauge("g").set(-7);
        let histo = registry.histogram("h");
        histo.record(1_000);
        histo.record(2_000);
        let snap = registry.snapshot();
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn text_table_lists_every_metric() {
        let registry = MetricsRegistry::new();
        registry.counter("kafka.bytes_in").add(1024);
        registry.gauge("kafka.consumer.lag").set(0);
        let table = registry.snapshot().to_text_table();
        assert!(table.contains("kafka.bytes_in"));
        assert!(table.contains("1024"));
        assert!(table.contains("kafka.consumer.lag"));
    }

    #[test]
    fn counter_sum_by_prefix() {
        let registry = MetricsRegistry::new();
        registry.counter("v.node0.put.ok").add(2);
        registry.counter("v.node1.put.ok").add(3);
        registry.counter("v.node1.get.ok").add(9);
        registry.gauge("v.node1.put.weird").set(1);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_sum("v.node0.put"), 2);
        assert_eq!(snap.counter_sum("v.node"), 14);
    }
}
