//! Phased online partition migration (ROADMAP item 4).
//!
//! The paper's serving systems all assume static partition maps; real
//! deployments move partitions *live*. This module is the system-agnostic
//! coordinator for that move: a step-driven state machine walking the
//! phases
//!
//! ```text
//!   Snapshot ──► DeltaCatchup ──► DualWrite ──► Done
//!   (bulk copy)  (journal/binlog   (writes land │
//!                 replay rounds)    on both      └ atomic cutover flip,
//!                                   sides;         executed only after
//!                                   shadow-read    clean verification)
//!                                   verification)
//! ```
//!
//! with a terminal `Refused` state when shadow verification finds a
//! persistent divergence — the cutover flip is *never* executed from a
//! mismatched state, so a corrupted target can't be promoted.
//!
//! The coordinator owns phase bookkeeping, per-phase metrics, and the
//! refusal policy; everything system-specific (what a snapshot is, where
//! the delta journal lives, how ownership flips) hides behind
//! [`MigrationDriver`], implemented by the Voldemort cluster (partition
//! move with a write journal) and the Espresso cluster (partition move via
//! binlog/relay delta plus a Helix external-view flip).
//!
//! # Determinism
//!
//! Like the rest of the chaos substrate, the coordinator has no threads,
//! no wall clock, and no RNG: [`MigrationCoordinator::step`] performs
//! exactly one phase-advancing unit of work and returns. Seeded tests
//! interleave `step` calls with client traffic and fault injection to get
//! byte-identical replays; production callers just loop
//! [`MigrationCoordinator::run`]. A driver error (e.g. the donor is
//! unreachable mid-crash) leaves the phase unchanged, so the same step can
//! be retried after the fault heals.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::metrics::{Counter, Gauge, MetricsRegistry};

/// Where a migration currently is. Phases only ever advance (or jump to
/// the terminal [`MigrationPhase::Refused`]); there is no backward motion,
/// which is what makes "reads were never blocked, acked writes never
/// dropped" provable per phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPhase {
    /// Bulk-copying a point-in-time image of the partition to the target.
    /// Live traffic keeps hitting the source; acked writes are journaled.
    Snapshot,
    /// Replaying journal/binlog deltas that accumulated behind the
    /// snapshot, round by round, until a round finds nothing to replay.
    DeltaCatchup,
    /// Writes land synchronously on both source and target; shadow reads
    /// compare the two until the verifier sees clean rounds.
    DualWrite,
    /// Ownership flipped atomically; the migration is over.
    Done,
    /// Shadow verification found a persistent divergence: the flip was
    /// refused and the source remains authoritative.
    Refused,
}

impl MigrationPhase {
    fn gauge_value(self) -> i64 {
        match self {
            MigrationPhase::Snapshot => 1,
            MigrationPhase::DeltaCatchup => 2,
            MigrationPhase::DualWrite => 3,
            MigrationPhase::Done => 4,
            MigrationPhase::Refused => -1,
        }
    }
}

impl std::fmt::Display for MigrationPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            MigrationPhase::Snapshot => "snapshot",
            MigrationPhase::DeltaCatchup => "delta_catchup",
            MigrationPhase::DualWrite => "dual_write",
            MigrationPhase::Done => "done",
            MigrationPhase::Refused => "refused",
        };
        f.write_str(name)
    }
}

/// One shadow-verification round's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VerifyReport {
    /// Keys (or rows) compared between source and target this round.
    pub compared: u64,
    /// Keys whose source and target images diverged.
    pub mismatches: u64,
}

/// Errors surfaced by [`MigrationCoordinator::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrationError {
    /// The driver couldn't perform the phase's work (node unreachable,
    /// storage error, ...). The phase is unchanged; retry after healing.
    Driver(String),
    /// Shadow verification kept finding divergence after every allowed
    /// retry: the cutover flip was refused and the migration is terminal.
    ShadowMismatch {
        /// Keys compared in the refusing round.
        compared: u64,
        /// Keys still diverging in the refusing round.
        mismatches: u64,
    },
    /// `step` was called on a migration already in a terminal phase.
    Terminal(MigrationPhase),
}

impl std::fmt::Display for MigrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrationError::Driver(e) => write!(f, "migration driver error: {e}"),
            MigrationError::ShadowMismatch {
                compared,
                mismatches,
            } => write!(
                f,
                "cutover refused: shadow verification found {mismatches} \
                 divergent keys out of {compared} compared"
            ),
            MigrationError::Terminal(phase) => {
                write!(f, "migration already terminal in phase {phase}")
            }
        }
    }
}

impl std::error::Error for MigrationError {}

/// The system-specific half of a migration. Every method is a *bounded*
/// unit of work (one copy pass, one journal drain, one comparison round) —
/// the coordinator provides the looping, so drivers stay deterministic and
/// interruptible.
pub trait MigrationDriver {
    /// Bulk-copies the partition's current image to the target. Returns
    /// the number of items copied. Must be idempotent: a retry after a
    /// partial copy re-copies (the versioned/at-least-once stores make
    /// replay safe).
    fn snapshot(&self) -> Result<u64, String>;

    /// Replays one round of deltas (journal entries / binlog events) that
    /// accumulated since the snapshot. Returns how many were replayed; `0`
    /// means the target has caught up with everything acked so far.
    fn delta_round(&self) -> Result<u64, String>;

    /// Turns on dual-write: from this moment, acked writes land on both
    /// source and target synchronously.
    fn begin_dual_write(&self) -> Result<(), String>;

    /// One shadow-read verification round: drain any remaining delta,
    /// then compare source and target images.
    fn verify_round(&self) -> Result<VerifyReport, String>;

    /// Atomically flips ownership to the target. Only called after
    /// verification came back clean — a driver never needs to re-check.
    fn cutover(&self) -> Result<(), String>;

    /// Tears the migration down without flipping (refusal path): release
    /// routing state and drop the journal. The source stays authoritative.
    fn abort(&self);
}

/// Tuning for [`MigrationCoordinator`]. Defaults suit the in-process
/// clusters: a handful of delta rounds (dual-write catches the tail) and
/// enough verify retries to absorb writes that race a comparison round.
#[derive(Debug, Clone)]
pub struct MigrationConfig {
    /// Delta rounds before advancing to dual-write even if the journal
    /// keeps refilling (dual-write + verification drain the remainder).
    pub max_delta_rounds: u32,
    /// Consecutive clean verification rounds required before cutover.
    pub clean_rounds_to_cut: u32,
    /// Mismatched verification rounds tolerated (writes racing the
    /// comparator look divergent for one round) before the flip is
    /// refused for good.
    pub verify_retries: u32,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            max_delta_rounds: 8,
            clean_rounds_to_cut: 1,
            verify_retries: 8,
        }
    }
}

/// Per-phase observability, shared by name across every migration on the
/// same registry (scope `migration.`).
#[derive(Debug, Clone)]
struct MigrationMetrics {
    snapshot_items: Counter,
    delta_items: Counter,
    delta_rounds: Counter,
    shadow_reads: Counter,
    shadow_mismatch: Counter,
    cutover_flips: Counter,
    cutover_refusals: Counter,
    phase: Gauge,
}

impl MigrationMetrics {
    fn new(registry: &Arc<MetricsRegistry>) -> Self {
        let scope = registry.scope("migration");
        MigrationMetrics {
            snapshot_items: scope.counter("snapshot_items"),
            delta_items: scope.counter("delta_items"),
            delta_rounds: scope.counter("delta_rounds"),
            shadow_reads: scope.counter("shadow_reads"),
            shadow_mismatch: scope.counter("shadow_mismatch"),
            cutover_flips: scope.counter("cutover_flips"),
            cutover_refusals: scope.counter("cutover_refusals"),
            phase: scope.gauge("phase"),
        }
    }
}

/// Progress counters private to one migration run.
#[derive(Debug, Default)]
struct Progress {
    delta_rounds: u32,
    clean_rounds: u32,
    mismatch_rounds: u32,
}

/// The phased state machine. One coordinator drives one partition move;
/// construct a fresh one per move (the metrics accumulate across moves by
/// design — they're the cluster-lifetime migration counters).
pub struct MigrationCoordinator {
    config: MigrationConfig,
    state: Mutex<(MigrationPhase, Progress)>,
    metrics: MigrationMetrics,
}

impl MigrationCoordinator {
    /// A coordinator in the initial [`MigrationPhase::Snapshot`] phase,
    /// reporting under `migration.` in `registry`.
    pub fn new(registry: &Arc<MetricsRegistry>, config: MigrationConfig) -> Self {
        let metrics = MigrationMetrics::new(registry);
        metrics.phase.set(MigrationPhase::Snapshot.gauge_value());
        MigrationCoordinator {
            config,
            state: Mutex::new((MigrationPhase::Snapshot, Progress::default())),
            metrics,
        }
    }

    /// The current phase.
    pub fn phase(&self) -> MigrationPhase {
        self.state.lock().0
    }

    /// Performs one unit of migration work and returns the phase the
    /// migration is in afterwards. Driver errors leave the phase unchanged
    /// (retry later); a persistent shadow mismatch moves to
    /// [`MigrationPhase::Refused`], aborts the driver, and reports
    /// [`MigrationError::ShadowMismatch`].
    pub fn step(&self, driver: &dyn MigrationDriver) -> Result<MigrationPhase, MigrationError> {
        let mut state = self.state.lock();
        let (phase, progress) = &mut *state;
        let next = match *phase {
            MigrationPhase::Snapshot => {
                let copied = driver.snapshot().map_err(MigrationError::Driver)?;
                self.metrics.snapshot_items.add(copied);
                MigrationPhase::DeltaCatchup
            }
            MigrationPhase::DeltaCatchup => {
                let replayed = driver.delta_round().map_err(MigrationError::Driver)?;
                self.metrics.delta_items.add(replayed);
                self.metrics.delta_rounds.inc();
                progress.delta_rounds += 1;
                if replayed == 0 || progress.delta_rounds >= self.config.max_delta_rounds {
                    driver.begin_dual_write().map_err(MigrationError::Driver)?;
                    MigrationPhase::DualWrite
                } else {
                    MigrationPhase::DeltaCatchup
                }
            }
            MigrationPhase::DualWrite => {
                let report = driver.verify_round().map_err(MigrationError::Driver)?;
                self.metrics.shadow_reads.add(report.compared);
                if report.mismatches > 0 {
                    self.metrics.shadow_mismatch.add(report.mismatches);
                    progress.clean_rounds = 0;
                    progress.mismatch_rounds += 1;
                    if progress.mismatch_rounds > self.config.verify_retries {
                        // The divergence survived every allowed re-check:
                        // this is corruption, not a racing write. Refuse
                        // the flip and stand down.
                        self.metrics.cutover_refusals.inc();
                        driver.abort();
                        *phase = MigrationPhase::Refused;
                        self.metrics.phase.set(phase.gauge_value());
                        return Err(MigrationError::ShadowMismatch {
                            compared: report.compared,
                            mismatches: report.mismatches,
                        });
                    }
                    MigrationPhase::DualWrite
                } else {
                    progress.clean_rounds += 1;
                    if progress.clean_rounds >= self.config.clean_rounds_to_cut {
                        driver.cutover().map_err(MigrationError::Driver)?;
                        self.metrics.cutover_flips.inc();
                        MigrationPhase::Done
                    } else {
                        MigrationPhase::DualWrite
                    }
                }
            }
            terminal @ (MigrationPhase::Done | MigrationPhase::Refused) => {
                return Err(MigrationError::Terminal(terminal));
            }
        };
        *phase = next;
        self.metrics.phase.set(next.gauge_value());
        Ok(next)
    }

    /// Drives [`Self::step`] until the migration completes. `max_steps`
    /// bounds retry loops (a driver erroring forever — e.g. a target that
    /// never comes back — surfaces the last driver error instead of
    /// spinning).
    pub fn run(
        &self,
        driver: &dyn MigrationDriver,
        max_steps: u32,
    ) -> Result<(), MigrationError> {
        let mut last_err: Option<MigrationError> = None;
        for _ in 0..max_steps {
            match self.step(driver) {
                Ok(MigrationPhase::Done) => return Ok(()),
                Ok(_) => last_err = None,
                Err(e @ MigrationError::ShadowMismatch { .. }) => return Err(e),
                Err(MigrationError::Terminal(MigrationPhase::Done)) => return Ok(()),
                Err(e @ MigrationError::Terminal(_)) => return Err(e),
                Err(e @ MigrationError::Driver(_)) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            MigrationError::Driver(format!("migration did not complete in {max_steps} steps"))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A scripted driver: `deltas` is the journal size observed per delta
    /// round; `mismatch_rounds` is how many verify rounds diverge before
    /// going clean (u32::MAX = diverge forever).
    struct ScriptedDriver {
        deltas: Vec<u64>,
        mismatch_rounds: u32,
        delta_calls: AtomicU64,
        verify_calls: AtomicU64,
        dual_write: AtomicU64,
        cutovers: AtomicU64,
        aborts: AtomicU64,
        fail_snapshots: AtomicU64,
    }

    impl ScriptedDriver {
        fn new(deltas: Vec<u64>, mismatch_rounds: u32) -> Self {
            ScriptedDriver {
                deltas,
                mismatch_rounds,
                delta_calls: AtomicU64::new(0),
                verify_calls: AtomicU64::new(0),
                dual_write: AtomicU64::new(0),
                cutovers: AtomicU64::new(0),
                aborts: AtomicU64::new(0),
                fail_snapshots: AtomicU64::new(0),
            }
        }
    }

    impl MigrationDriver for ScriptedDriver {
        fn snapshot(&self) -> Result<u64, String> {
            if self.fail_snapshots.load(Ordering::SeqCst) > 0 {
                self.fail_snapshots.fetch_sub(1, Ordering::SeqCst);
                return Err("donor unreachable".into());
            }
            Ok(100)
        }
        fn delta_round(&self) -> Result<u64, String> {
            let i = self.delta_calls.fetch_add(1, Ordering::SeqCst) as usize;
            Ok(self.deltas.get(i).copied().unwrap_or(0))
        }
        fn begin_dual_write(&self) -> Result<(), String> {
            self.dual_write.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
        fn verify_round(&self) -> Result<VerifyReport, String> {
            let i = self.verify_calls.fetch_add(1, Ordering::SeqCst) as u32;
            Ok(VerifyReport {
                compared: 10,
                mismatches: u64::from(i < self.mismatch_rounds),
            })
        }
        fn cutover(&self) -> Result<(), String> {
            self.cutovers.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
        fn abort(&self) {
            self.aborts.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn coordinator(config: MigrationConfig) -> (Arc<MetricsRegistry>, MigrationCoordinator) {
        let registry = MetricsRegistry::new();
        let coordinator = MigrationCoordinator::new(&registry, config);
        (registry, coordinator)
    }

    #[test]
    fn walks_all_phases_in_order() {
        let (registry, c) = coordinator(MigrationConfig::default());
        let driver = ScriptedDriver::new(vec![5, 2, 0], 0);
        assert_eq!(c.phase(), MigrationPhase::Snapshot);
        assert_eq!(c.step(&driver).unwrap(), MigrationPhase::DeltaCatchup);
        assert_eq!(c.step(&driver).unwrap(), MigrationPhase::DeltaCatchup);
        assert_eq!(c.step(&driver).unwrap(), MigrationPhase::DeltaCatchup);
        // Third delta round returns 0 -> dual-write begins.
        assert_eq!(c.step(&driver).unwrap(), MigrationPhase::DualWrite);
        assert_eq!(driver.dual_write.load(Ordering::SeqCst), 1);
        assert_eq!(c.step(&driver).unwrap(), MigrationPhase::Done);
        assert_eq!(driver.cutovers.load(Ordering::SeqCst), 1);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("migration.snapshot_items"), Some(100));
        assert_eq!(snapshot.counter("migration.delta_items"), Some(7));
        assert_eq!(snapshot.counter("migration.cutover_flips"), Some(1));
        assert_eq!(snapshot.counter("migration.shadow_mismatch"), Some(0));
        assert_eq!(snapshot.gauge("migration.phase"), Some(4));
    }

    #[test]
    fn driver_error_keeps_phase_for_retry() {
        let (_registry, c) = coordinator(MigrationConfig::default());
        let driver = ScriptedDriver::new(vec![0], 0);
        driver.fail_snapshots.store(2, Ordering::SeqCst);
        assert!(matches!(c.step(&driver), Err(MigrationError::Driver(_))));
        assert_eq!(c.phase(), MigrationPhase::Snapshot);
        assert!(matches!(c.step(&driver), Err(MigrationError::Driver(_))));
        // Third attempt succeeds; the run completes.
        c.run(&driver, 16).unwrap();
        assert_eq!(c.phase(), MigrationPhase::Done);
    }

    #[test]
    fn transient_mismatch_is_retried_then_cut() {
        let (registry, c) = coordinator(MigrationConfig::default());
        let driver = ScriptedDriver::new(vec![0], 2);
        c.run(&driver, 32).unwrap();
        assert_eq!(c.phase(), MigrationPhase::Done);
        let snapshot = registry.snapshot();
        // Both transient rounds were counted, but the flip still happened.
        assert_eq!(snapshot.counter("migration.shadow_mismatch"), Some(2));
        assert_eq!(snapshot.counter("migration.cutover_refusals"), Some(0));
        assert_eq!(snapshot.counter("migration.cutover_flips"), Some(1));
    }

    #[test]
    fn persistent_mismatch_refuses_cutover_and_aborts() {
        let (registry, c) = coordinator(MigrationConfig {
            verify_retries: 3,
            ..MigrationConfig::default()
        });
        let driver = ScriptedDriver::new(vec![0], u32::MAX);
        let err = c.run(&driver, 64).unwrap_err();
        assert!(matches!(err, MigrationError::ShadowMismatch { .. }));
        assert_eq!(c.phase(), MigrationPhase::Refused);
        assert_eq!(driver.cutovers.load(Ordering::SeqCst), 0, "flip refused");
        assert_eq!(driver.aborts.load(Ordering::SeqCst), 1);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("migration.cutover_refusals"), Some(1));
        assert!(snapshot.counter("migration.shadow_mismatch").unwrap() >= 4);
        assert_eq!(snapshot.gauge("migration.phase"), Some(-1));
        // Terminal: further steps are rejected.
        assert!(matches!(
            c.step(&driver),
            Err(MigrationError::Terminal(MigrationPhase::Refused))
        ));
    }

    #[test]
    fn bounded_delta_rounds_advance_under_sustained_traffic() {
        let (_registry, c) = coordinator(MigrationConfig {
            max_delta_rounds: 3,
            ..MigrationConfig::default()
        });
        // Journal never drains (live traffic keeps refilling it)...
        let driver = ScriptedDriver::new(vec![9; 64], 0);
        c.run(&driver, 32).unwrap();
        // ...but after max_delta_rounds the coordinator advances anyway and
        // dual-write + verification absorb the tail.
        assert_eq!(driver.delta_calls.load(Ordering::SeqCst), 3);
        assert_eq!(c.phase(), MigrationPhase::Done);
    }
}
