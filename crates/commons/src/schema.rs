//! Self-describing, evolvable binary record serialization (Avro analog).
//!
//! Databus "chose Avro because it is an open format with multiple language
//! bindings \[and\] allows serialization in the relay without generation of
//! source-schema specific code" (§III.C); Espresso stores "a binary
//! serialized version of the document along with the schema version needed
//! to deserialize the stored document", with schemas "freely evolvable ...
//! according to the Avro schema resolution rules" (§IV.A).
//!
//! This module reproduces those semantics rather than the Avro wire format:
//!
//! * [`RecordSchema`] — a named, versioned list of typed fields with
//!   optional defaults, definable in JSON (like the paper's schemas).
//! * [`encode`]/[`decode`] — compact binary codec driven entirely by the
//!   schema value at runtime (no generated code).
//! * [`RecordSchema::check_evolution`] — the compatibility rules: a new
//!   version may add fields *with defaults*, drop fields, widen `Long` to
//!   `Double`, and make required fields optional. Incompatible changes are
//!   rejected at registration time.
//! * [`resolve`] — reads a record written with an older (or newer) writer
//!   schema into the shape of the reader schema, filling defaults.
//! * [`SchemaRegistry`] — per-source version history, the piece the Databus
//!   relay and Espresso storage nodes share.

use serde::{get_field, get_field_or_default, object, DeError, Deserialize, JsonValue, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::varint;
use bytes::Buf;

/// Version number of a schema within its source's history (1-based).
pub type SchemaVersion = u16;

/// The type of a record field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer (covers the paper's int/long/bigint columns).
    Long,
    /// 64-bit float.
    Double,
    /// UTF-8 string.
    Str,
    /// Raw bytes (serialized documents, blobs).
    Bytes,
    /// Nullable wrapper.
    Optional(Box<FieldType>),
    /// Homogeneous list.
    Array(Box<FieldType>),
}

/// JSON form (serde's externally-tagged enum with lowercase names): unit
/// variants are bare strings (`"long"`), wrapping variants are one-entry
/// objects (`{"optional": "str"}`).
impl Serialize for FieldType {
    fn to_json_value(&self) -> JsonValue {
        match self {
            FieldType::Bool => JsonValue::Str("bool".into()),
            FieldType::Long => JsonValue::Str("long".into()),
            FieldType::Double => JsonValue::Str("double".into()),
            FieldType::Str => JsonValue::Str("str".into()),
            FieldType::Bytes => JsonValue::Str("bytes".into()),
            FieldType::Optional(inner) => object(vec![("optional", inner.to_json_value())]),
            FieldType::Array(inner) => object(vec![("array", inner.to_json_value())]),
        }
    }
}

impl Deserialize for FieldType {
    fn from_json_value(value: &JsonValue) -> Result<Self, DeError> {
        match value {
            JsonValue::Str(tag) => match tag.as_str() {
                "bool" => Ok(FieldType::Bool),
                "long" => Ok(FieldType::Long),
                "double" => Ok(FieldType::Double),
                "str" => Ok(FieldType::Str),
                "bytes" => Ok(FieldType::Bytes),
                other => Err(DeError(format!("unknown field type `{other}`"))),
            },
            JsonValue::Object(entries) if entries.len() == 1 => {
                let (tag, inner) = &entries[0];
                let inner = Box::new(FieldType::from_json_value(inner)?);
                match tag.as_str() {
                    "optional" => Ok(FieldType::Optional(inner)),
                    "array" => Ok(FieldType::Array(inner)),
                    other => Err(DeError(format!("unknown field type `{other}`"))),
                }
            }
            other => Err(DeError::expected("field type", other)),
        }
    }
}

impl FieldType {
    /// True when a value written as `writer` may be read as `self`,
    /// possibly via promotion (Long → Double) or optional-widening.
    fn accepts(&self, writer: &FieldType) -> bool {
        if self == writer {
            return true;
        }
        match (self, writer) {
            (FieldType::Double, FieldType::Long) => true,
            (FieldType::Optional(r), FieldType::Optional(w)) => r.accepts(w),
            (FieldType::Optional(inner), w) => inner.accepts(w),
            (FieldType::Array(r), FieldType::Array(w)) => r.accepts(w),
            _ => false,
        }
    }
}

/// A dynamically-typed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null (only valid for `Optional` fields).
    Null,
    /// Boolean value.
    Bool(bool),
    /// Integer value.
    Long(i64),
    /// Float value.
    Double(f64),
    /// String value.
    Str(String),
    /// Byte-array value.
    Bytes(Vec<u8>),
    /// Array value.
    Array(Vec<Value>),
}

/// JSON form (serde's untagged representation): the payload alone, with
/// deserialization trying variants in declaration order — so an array of
/// byte-sized integers parses as `Bytes`, any other array as `Array`.
impl Serialize for Value {
    fn to_json_value(&self) -> JsonValue {
        match self {
            Value::Null => JsonValue::Null,
            Value::Bool(v) => JsonValue::Bool(*v),
            Value::Long(v) => JsonValue::Int(*v),
            Value::Double(v) => JsonValue::Float(*v),
            Value::Str(v) => JsonValue::Str(v.clone()),
            Value::Bytes(v) => {
                JsonValue::Array(v.iter().map(|b| JsonValue::Int(*b as i64)).collect())
            }
            Value::Array(items) => {
                JsonValue::Array(items.iter().map(Serialize::to_json_value).collect())
            }
        }
    }
}

impl Deserialize for Value {
    fn from_json_value(value: &JsonValue) -> Result<Self, DeError> {
        match value {
            JsonValue::Null => Ok(Value::Null),
            JsonValue::Bool(v) => Ok(Value::Bool(*v)),
            JsonValue::Int(_) | JsonValue::UInt(_) => value
                .as_i64()
                .map(Value::Long)
                .ok_or_else(|| DeError::expected("i64 value", value)),
            JsonValue::Float(v) => Ok(Value::Double(*v)),
            JsonValue::Str(v) => Ok(Value::Str(v.clone())),
            JsonValue::Array(items) => {
                let bytes: Option<Vec<u8>> = items
                    .iter()
                    .map(|item| item.as_u64().and_then(|v| u8::try_from(v).ok()))
                    .collect();
                match bytes {
                    Some(bytes) => Ok(Value::Bytes(bytes)),
                    None => items
                        .iter()
                        .map(Value::from_json_value)
                        .collect::<Result<Vec<_>, _>>()
                        .map(Value::Array),
                }
            }
            other => Err(DeError::expected("value", other)),
        }
    }
}

impl Value {
    fn conforms_to(&self, ty: &FieldType) -> bool {
        match (self, ty) {
            (Value::Null, FieldType::Optional(_)) => true,
            (v, FieldType::Optional(inner)) => v.conforms_to(inner),
            (Value::Bool(_), FieldType::Bool) => true,
            (Value::Long(_), FieldType::Long) => true,
            (Value::Double(_), FieldType::Double) => true,
            (Value::Long(_), FieldType::Double) => true, // promotable literal
            (Value::Str(_), FieldType::Str) => true,
            (Value::Bytes(_), FieldType::Bytes) => true,
            (Value::Array(items), FieldType::Array(inner)) => {
                items.iter().all(|v| v.conforms_to(inner))
            }
            _ => false,
        }
    }

    /// Widens a Long into a Double when the target field type requires it.
    fn promote(self, ty: &FieldType) -> Value {
        match (self, ty) {
            (Value::Long(v), FieldType::Double) => Value::Double(v as f64),
            (v, FieldType::Optional(inner)) if v != Value::Null => v.promote(inner),
            (v, _) => v,
        }
    }
}

/// One field of a record schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name (unique within the schema).
    pub name: String,
    /// Field type (serialized under the key `type`).
    pub ty: FieldType,
    /// Default used when a reader's field is absent from the writer schema.
    pub default: Option<Value>,
    /// Whether this field carries a secondary-index annotation (Espresso's
    /// "fields ... annotated with indexing constraints").
    pub indexed: bool,
}

/// JSON form: `ty` is renamed to `type`; `default` and `indexed` are
/// omitted when `None`/`false` and default-filled when absent.
impl Serialize for Field {
    fn to_json_value(&self) -> JsonValue {
        let mut entries = vec![
            ("name", self.name.to_json_value()),
            ("type", self.ty.to_json_value()),
        ];
        if self.default.is_some() {
            entries.push(("default", self.default.to_json_value()));
        }
        if self.indexed {
            entries.push(("indexed", self.indexed.to_json_value()));
        }
        object(entries)
    }
}

impl Deserialize for Field {
    fn from_json_value(value: &JsonValue) -> Result<Self, DeError> {
        Ok(Field {
            name: get_field(value, "name")?,
            ty: get_field(value, "type")?,
            default: get_field_or_default(value, "default")?,
            indexed: get_field_or_default(value, "indexed")?,
        })
    }
}

impl Field {
    /// A plain required field.
    pub fn new(name: impl Into<String>, ty: FieldType) -> Self {
        Field {
            name: name.into(),
            ty,
            default: None,
            indexed: false,
        }
    }

    /// Adds a default value (required for evolution-added fields).
    pub fn with_default(mut self, default: Value) -> Self {
        self.default = Some(default);
        self
    }

    /// Marks the field as secondary-indexed.
    pub fn indexed(mut self) -> Self {
        self.indexed = true;
        self
    }
}

/// Errors from schema definition, encoding, decoding, or evolution.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaError {
    /// A record value doesn't match the schema.
    TypeMismatch {
        /// Field (or value description) that failed.
        field: String,
        /// The type the schema expected.
        expected: String,
    },
    /// A required field is missing from a record (and has no default).
    MissingField(String),
    /// Binary data can't be decoded.
    Decode(String),
    /// An evolution rule was violated.
    Incompatible(String),
    /// Schema/version lookup failed.
    UnknownSchema(String),
    /// The schema definition itself is invalid.
    Invalid(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::TypeMismatch { field, expected } => {
                write!(f, "field `{field}` does not conform to type {expected}")
            }
            SchemaError::MissingField(name) => write!(f, "missing field `{name}`"),
            SchemaError::Decode(msg) => write!(f, "decode error: {msg}"),
            SchemaError::Incompatible(msg) => write!(f, "incompatible evolution: {msg}"),
            SchemaError::UnknownSchema(msg) => write!(f, "unknown schema: {msg}"),
            SchemaError::Invalid(msg) => write!(f, "invalid schema: {msg}"),
        }
    }
}

impl std::error::Error for SchemaError {}

impl From<varint::VarintError> for SchemaError {
    fn from(e: varint::VarintError) -> Self {
        SchemaError::Decode(e.to_string())
    }
}

/// A named, versioned record schema.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordSchema {
    /// Record name, e.g. `"member_profile"`.
    pub name: String,
    /// Version within the source's history.
    pub version: SchemaVersion,
    /// Ordered field list; binary encoding follows this order.
    pub fields: Vec<Field>,
}

impl Serialize for RecordSchema {
    fn to_json_value(&self) -> JsonValue {
        object(vec![
            ("name", self.name.to_json_value()),
            ("version", self.version.to_json_value()),
            ("fields", self.fields.to_json_value()),
        ])
    }
}

impl Deserialize for RecordSchema {
    fn from_json_value(value: &JsonValue) -> Result<Self, DeError> {
        Ok(RecordSchema {
            name: get_field(value, "name")?,
            version: get_field(value, "version")?,
            fields: get_field(value, "fields")?,
        })
    }
}

impl RecordSchema {
    /// Creates a schema, validating field-name uniqueness and that defaults
    /// conform to their field types.
    pub fn new(
        name: impl Into<String>,
        version: SchemaVersion,
        fields: Vec<Field>,
    ) -> Result<Self, SchemaError> {
        let schema = RecordSchema {
            name: name.into(),
            version,
            fields,
        };
        let mut seen = std::collections::HashSet::new();
        for field in &schema.fields {
            if !seen.insert(&field.name) {
                return Err(SchemaError::Invalid(format!(
                    "duplicate field `{}`",
                    field.name
                )));
            }
            if let Some(default) = &field.default {
                if !default.conforms_to(&field.ty) {
                    return Err(SchemaError::Invalid(format!(
                        "default for `{}` does not conform to its type",
                        field.name
                    )));
                }
            }
        }
        Ok(schema)
    }

    /// Parses a schema from its JSON definition (the representation the
    /// paper specifies for Espresso schemas).
    pub fn from_json(json: &str) -> Result<Self, SchemaError> {
        let schema: RecordSchema =
            serde_json::from_str(json).map_err(|e| SchemaError::Invalid(e.to_string()))?;
        RecordSchema::new(schema.name, schema.version, schema.fields)
    }

    /// Serializes the schema definition to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("schema serializes")
    }

    /// Returns the field named `name`.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Names of fields annotated as indexed.
    pub fn indexed_fields(&self) -> impl Iterator<Item = &Field> {
        self.fields.iter().filter(|f| f.indexed)
    }

    /// Checks that `next` is a compatible evolution of `self`:
    /// * fields present in both must have accepting types (same, widened,
    ///   or made optional);
    /// * fields added in `next` must carry defaults;
    /// * fields dropped from `self` are always fine (readers of old data
    ///   use [`resolve`]);
    /// * versions must increase by exactly one.
    pub fn check_evolution(&self, next: &RecordSchema) -> Result<(), SchemaError> {
        if next.name != self.name {
            return Err(SchemaError::Incompatible(format!(
                "schema name changed from `{}` to `{}`",
                self.name, next.name
            )));
        }
        if next.version != self.version + 1 {
            return Err(SchemaError::Incompatible(format!(
                "version must advance from {} to {}, got {}",
                self.version,
                self.version + 1,
                next.version
            )));
        }
        for field in &next.fields {
            match self.field(&field.name) {
                Some(old) => {
                    if !field.ty.accepts(&old.ty) {
                        return Err(SchemaError::Incompatible(format!(
                            "field `{}` narrowed or changed type",
                            field.name
                        )));
                    }
                }
                None => {
                    if field.default.is_none() && !matches!(field.ty, FieldType::Optional(_)) {
                        return Err(SchemaError::Incompatible(format!(
                            "new field `{}` has no default",
                            field.name
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// A record instance: field name → value.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Record {
    /// Field values by name.
    pub fields: BTreeMap<String, Value>,
}

impl Record {
    /// Creates an empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style field setter.
    #[must_use]
    pub fn with(mut self, name: impl Into<String>, value: Value) -> Self {
        self.fields.insert(name.into(), value);
        self
    }

    /// Sets a field value.
    pub fn set(&mut self, name: impl Into<String>, value: Value) {
        self.fields.insert(name.into(), value);
    }

    /// Gets a field value.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields.get(name)
    }
}

fn encode_value(out: &mut Vec<u8>, value: &Value, ty: &FieldType) -> Result<(), SchemaError> {
    match ty {
        FieldType::Optional(inner) => match value {
            Value::Null => out.push(0),
            v => {
                out.push(1);
                encode_value(out, v, inner)?;
            }
        },
        FieldType::Bool => match value {
            Value::Bool(b) => out.push(u8::from(*b)),
            _ => return type_err(value, ty),
        },
        FieldType::Long => match value {
            Value::Long(v) => varint::write_i64(out, *v),
            _ => return type_err(value, ty),
        },
        FieldType::Double => match value {
            Value::Double(v) => out.extend_from_slice(&v.to_le_bytes()),
            Value::Long(v) => out.extend_from_slice(&(*v as f64).to_le_bytes()),
            _ => return type_err(value, ty),
        },
        FieldType::Str => match value {
            Value::Str(s) => varint::write_bytes(out, s.as_bytes()),
            _ => return type_err(value, ty),
        },
        FieldType::Bytes => match value {
            Value::Bytes(b) => varint::write_bytes(out, b),
            _ => return type_err(value, ty),
        },
        FieldType::Array(inner) => match value {
            Value::Array(items) => {
                varint::write_u64(out, items.len() as u64);
                for item in items {
                    encode_value(out, item, inner)?;
                }
            }
            _ => return type_err(value, ty),
        },
    }
    Ok(())
}

fn type_err(value: &Value, ty: &FieldType) -> Result<(), SchemaError> {
    Err(SchemaError::TypeMismatch {
        field: format!("{value:?}"),
        expected: format!("{ty:?}"),
    })
}

fn decode_value(buf: &mut &[u8], ty: &FieldType) -> Result<Value, SchemaError> {
    Ok(match ty {
        FieldType::Optional(inner) => {
            if !buf.has_remaining() {
                return Err(SchemaError::Decode("truncated optional".into()));
            }
            let tag = buf.get_u8();
            match tag {
                0 => Value::Null,
                1 => decode_value(buf, inner)?,
                other => return Err(SchemaError::Decode(format!("bad optional tag {other}"))),
            }
        }
        FieldType::Bool => {
            if !buf.has_remaining() {
                return Err(SchemaError::Decode("truncated bool".into()));
            }
            Value::Bool(buf.get_u8() != 0)
        }
        FieldType::Long => Value::Long(varint::read_i64(buf)?),
        FieldType::Double => {
            if buf.remaining() < 8 {
                return Err(SchemaError::Decode("truncated double".into()));
            }
            let mut raw = [0u8; 8];
            buf.copy_to_slice(&mut raw);
            Value::Double(f64::from_le_bytes(raw))
        }
        FieldType::Str => {
            let raw = varint::read_bytes(buf)?;
            Value::Str(
                String::from_utf8(raw).map_err(|e| SchemaError::Decode(e.to_string()))?,
            )
        }
        FieldType::Bytes => Value::Bytes(varint::read_bytes(buf)?),
        FieldType::Array(inner) => {
            let n = varint::read_u64(buf)? as usize;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(decode_value(buf, inner)?);
            }
            Value::Array(items)
        }
    })
}

/// Encodes `record` under `schema`. Missing fields fall back to the
/// schema default (or `Null` for optionals); a missing required field
/// without a default is an error.
pub fn encode(schema: &RecordSchema, record: &Record) -> Result<Vec<u8>, SchemaError> {
    let mut out = Vec::with_capacity(64);
    for field in &schema.fields {
        let owned;
        let value = match record.get(&field.name) {
            Some(v) => v,
            None => match (&field.default, &field.ty) {
                (Some(default), _) => default,
                (None, FieldType::Optional(_)) => {
                    owned = Value::Null;
                    &owned
                }
                (None, _) => return Err(SchemaError::MissingField(field.name.clone())),
            },
        };
        if !value.conforms_to(&field.ty) {
            return Err(SchemaError::TypeMismatch {
                field: field.name.clone(),
                expected: format!("{:?}", field.ty),
            });
        }
        encode_value(&mut out, value, &field.ty)?;
    }
    Ok(out)
}

/// Decodes bytes produced by [`encode`] under the same (writer) schema.
pub fn decode(schema: &RecordSchema, mut data: &[u8]) -> Result<Record, SchemaError> {
    let mut record = Record::new();
    for field in &schema.fields {
        let value = decode_value(&mut data, &field.ty)?;
        record.set(field.name.clone(), value);
    }
    if !data.is_empty() {
        return Err(SchemaError::Decode(format!(
            "{} trailing bytes",
            data.len()
        )));
    }
    Ok(record)
}

/// Reads binary data written under `writer` into the shape of `reader`:
/// fields the reader lacks are dropped, fields the writer lacks take the
/// reader's default, and Long→Double promotion is applied.
pub fn resolve(
    writer: &RecordSchema,
    reader: &RecordSchema,
    data: &[u8],
) -> Result<Record, SchemaError> {
    let raw = decode(writer, data)?;
    let mut record = Record::new();
    for field in &reader.fields {
        let value = match raw.fields.get(&field.name) {
            Some(v) => v.clone().promote(&field.ty),
            None => match (&field.default, &field.ty) {
                (Some(d), _) => d.clone(),
                (None, FieldType::Optional(_)) => Value::Null,
                (None, _) => return Err(SchemaError::MissingField(field.name.clone())),
            },
        };
        if !value.conforms_to(&field.ty) {
            return Err(SchemaError::TypeMismatch {
                field: field.name.clone(),
                expected: format!("{:?}", field.ty),
            });
        }
        record.set(field.name.clone(), value);
    }
    Ok(record)
}

/// Versioned schema history for a set of named sources. Thread-safe via
/// external locking (callers wrap in a lock or use one per thread).
#[derive(Debug, Default, Clone)]
pub struct SchemaRegistry {
    sources: BTreeMap<String, Vec<Arc<RecordSchema>>>,
}

impl SchemaRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a schema. The first version for a source must be version
    /// 1; later versions must pass [`RecordSchema::check_evolution`]
    /// against the latest registered version.
    pub fn register(&mut self, schema: RecordSchema) -> Result<SchemaVersion, SchemaError> {
        let history = self.sources.entry(schema.name.clone()).or_default();
        match history.last() {
            None => {
                if schema.version != 1 {
                    return Err(SchemaError::Incompatible(format!(
                        "first version of `{}` must be 1, got {}",
                        schema.name, schema.version
                    )));
                }
            }
            Some(latest) => latest.check_evolution(&schema)?,
        }
        let version = schema.version;
        history.push(Arc::new(schema));
        Ok(version)
    }

    /// Latest schema for `source`.
    pub fn latest(&self, source: &str) -> Result<Arc<RecordSchema>, SchemaError> {
        self.sources
            .get(source)
            .and_then(|h| h.last())
            .cloned()
            .ok_or_else(|| SchemaError::UnknownSchema(source.into()))
    }

    /// Specific version of `source`'s schema.
    pub fn get(&self, source: &str, version: SchemaVersion) -> Result<Arc<RecordSchema>, SchemaError> {
        self.sources
            .get(source)
            .and_then(|h| h.iter().find(|s| s.version == version))
            .cloned()
            .ok_or_else(|| {
                SchemaError::UnknownSchema(format!("{source} v{version}"))
            })
    }

    /// All registered source names.
    pub fn sources(&self) -> impl Iterator<Item = &str> {
        self.sources.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_v1() -> RecordSchema {
        RecordSchema::new(
            "member_profile",
            1,
            vec![
                Field::new("member_id", FieldType::Long),
                Field::new("name", FieldType::Str).indexed(),
                Field::new("score", FieldType::Double),
                Field::new(
                    "headline",
                    FieldType::Optional(Box::new(FieldType::Str)),
                ),
                Field::new(
                    "company_ids",
                    FieldType::Array(Box::new(FieldType::Long)),
                ),
            ],
        )
        .unwrap()
    }

    fn sample() -> Record {
        Record::new()
            .with("member_id", Value::Long(12345))
            .with("name", Value::Str("Jay".into()))
            .with("score", Value::Double(0.75))
            .with("headline", Value::Str("Infrastructure".into()))
            .with(
                "company_ids",
                Value::Array(vec![Value::Long(1), Value::Long(9)]),
            )
    }

    #[test]
    fn encode_decode_round_trip() {
        let schema = profile_v1();
        let record = sample();
        let bytes = encode(&schema, &record).unwrap();
        assert_eq!(decode(&schema, &bytes).unwrap(), record);
    }

    #[test]
    fn optional_null_and_missing_fields() {
        let schema = profile_v1();
        let mut record = sample();
        record.fields.remove("headline"); // omitted optional → Null
        let bytes = encode(&schema, &record).unwrap();
        let decoded = decode(&schema, &bytes).unwrap();
        assert_eq!(decoded.get("headline"), Some(&Value::Null));
    }

    #[test]
    fn missing_required_field_errors() {
        let schema = profile_v1();
        let mut record = sample();
        record.fields.remove("member_id");
        assert!(matches!(
            encode(&schema, &record),
            Err(SchemaError::MissingField(f)) if f == "member_id"
        ));
    }

    #[test]
    fn type_mismatch_rejected() {
        let schema = profile_v1();
        let record = sample().with("member_id", Value::Str("oops".into()));
        assert!(matches!(
            encode(&schema, &record),
            Err(SchemaError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn truncated_data_rejected() {
        let schema = profile_v1();
        let bytes = encode(&schema, &sample()).unwrap();
        assert!(decode(&schema, &bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let schema = profile_v1();
        let mut bytes = encode(&schema, &sample()).unwrap();
        bytes.push(0xAA);
        assert!(matches!(
            decode(&schema, &bytes),
            Err(SchemaError::Decode(_))
        ));
    }

    #[test]
    fn json_definition_round_trip() {
        let schema = profile_v1();
        let json = schema.to_json();
        let parsed = RecordSchema::from_json(&json).unwrap();
        assert_eq!(parsed, schema);
        assert_eq!(
            parsed.indexed_fields().map(|f| f.name.as_str()).collect::<Vec<_>>(),
            vec!["name"]
        );
    }

    #[test]
    fn evolution_add_field_with_default_ok() {
        let v1 = profile_v1();
        let mut fields = v1.fields.clone();
        fields.push(Field::new("connections", FieldType::Long).with_default(Value::Long(0)));
        let v2 = RecordSchema::new("member_profile", 2, fields).unwrap();
        v1.check_evolution(&v2).unwrap();

        // Old bytes resolve under the new schema with the default filled in.
        let bytes = encode(&v1, &sample()).unwrap();
        let resolved = resolve(&v1, &v2, &bytes).unwrap();
        assert_eq!(resolved.get("connections"), Some(&Value::Long(0)));
        assert_eq!(resolved.get("member_id"), Some(&Value::Long(12345)));
    }

    #[test]
    fn evolution_add_field_without_default_rejected() {
        let v1 = profile_v1();
        let mut fields = v1.fields.clone();
        fields.push(Field::new("connections", FieldType::Long));
        let v2 = RecordSchema::new("member_profile", 2, fields).unwrap();
        assert!(matches!(
            v1.check_evolution(&v2),
            Err(SchemaError::Incompatible(_))
        ));
    }

    #[test]
    fn evolution_drop_field_ok_and_resolve_drops_value() {
        let v1 = profile_v1();
        let fields: Vec<Field> = v1
            .fields
            .iter()
            .filter(|f| f.name != "score")
            .cloned()
            .collect();
        let v2 = RecordSchema::new("member_profile", 2, fields).unwrap();
        v1.check_evolution(&v2).unwrap();
        let bytes = encode(&v1, &sample()).unwrap();
        let resolved = resolve(&v1, &v2, &bytes).unwrap();
        assert!(resolved.get("score").is_none());
    }

    #[test]
    fn evolution_long_to_double_promotion() {
        let v1 = RecordSchema::new("counts", 1, vec![Field::new("n", FieldType::Long)]).unwrap();
        let v2 = RecordSchema::new("counts", 2, vec![Field::new("n", FieldType::Double)]).unwrap();
        v1.check_evolution(&v2).unwrap();
        let bytes = encode(&v1, &Record::new().with("n", Value::Long(42))).unwrap();
        let resolved = resolve(&v1, &v2, &bytes).unwrap();
        assert_eq!(resolved.get("n"), Some(&Value::Double(42.0)));
    }

    #[test]
    fn evolution_narrowing_rejected() {
        let v1 = RecordSchema::new("counts", 1, vec![Field::new("n", FieldType::Double)]).unwrap();
        let v2 = RecordSchema::new("counts", 2, vec![Field::new("n", FieldType::Long)]).unwrap();
        assert!(v1.check_evolution(&v2).is_err());
    }

    #[test]
    fn evolution_version_must_step_by_one() {
        let v1 = profile_v1();
        let v3 = RecordSchema::new("member_profile", 3, v1.fields.clone()).unwrap();
        assert!(v1.check_evolution(&v3).is_err());
    }

    #[test]
    fn registry_enforces_history() {
        let mut registry = SchemaRegistry::new();
        registry.register(profile_v1()).unwrap();
        // re-registering version 1 fails (evolution check vs latest)
        assert!(registry.register(profile_v1()).is_err());
        let mut fields = profile_v1().fields;
        fields.push(Field::new("connections", FieldType::Long).with_default(Value::Long(0)));
        let v2 = RecordSchema::new("member_profile", 2, fields).unwrap();
        registry.register(v2).unwrap();
        assert_eq!(registry.latest("member_profile").unwrap().version, 2);
        assert_eq!(registry.get("member_profile", 1).unwrap().version, 1);
        assert!(registry.get("member_profile", 9).is_err());
        assert!(registry.latest("nope").is_err());
    }

    #[test]
    fn duplicate_field_rejected() {
        assert!(RecordSchema::new(
            "bad",
            1,
            vec![
                Field::new("x", FieldType::Long),
                Field::new("x", FieldType::Str),
            ],
        )
        .is_err());
    }

    #[test]
    fn bad_default_rejected() {
        assert!(RecordSchema::new(
            "bad",
            1,
            vec![Field::new("x", FieldType::Long).with_default(Value::Str("no".into()))],
        )
        .is_err());
    }
}
