//! Success-ratio failure detector.
//!
//! Paper §II.B (Failure Detector): "the most commonly used one marks a node
//! as down when its 'success ratio' i.e. ratio of successful operations to
//! total, falls below a pre-configured threshold. Once marked down the node
//! is considered online only when an asynchronous thread is able to contact
//! it again."
//!
//! The detector therefore has two halves: a per-node windowed success-ratio
//! accumulator fed by every routed request, and a ban list drained only by
//! recovery probes. Marking down on ratio (not on a single failure) rides
//! out the "frequent transient errors" the paper designs for, while the
//! async-probe-only recovery prevents a flapping node from oscillating in
//! and out of the preference list.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use crate::ring::NodeId;
use crate::sim::Clock;

/// Tuning for [`FailureDetector`].
#[derive(Debug, Clone)]
pub struct FailureDetectorConfig {
    /// A node is banned when its windowed success ratio drops below this.
    pub threshold: f64,
    /// Observations are aggregated over windows of this length.
    pub window: Duration,
    /// Minimum observations in a window before the ratio is trusted.
    pub min_samples: u64,
    /// How long after banning before a recovery probe is attempted.
    pub probe_interval: Duration,
}

impl Default for FailureDetectorConfig {
    fn default() -> Self {
        FailureDetectorConfig {
            threshold: 0.8,
            window: Duration::from_secs(10),
            min_samples: 10,
            probe_interval: Duration::from_secs(5),
        }
    }
}

#[derive(Debug, Default, Clone)]
struct WindowCounts {
    window_start: Duration,
    successes: u64,
    failures: u64,
}

#[derive(Debug, Clone)]
enum NodeState {
    Available(WindowCounts),
    Banned { since: Duration, last_probe: Duration },
}

/// Thread-safe failure detector keyed by [`NodeId`]. Cloning shares state —
/// the routing pipeline and the async recovery thread hold the same view.
#[derive(Clone)]
pub struct FailureDetector {
    inner: Arc<Mutex<HashMap<NodeId, NodeState>>>,
    config: FailureDetectorConfig,
    clock: Arc<dyn Clock>,
}

impl std::fmt::Debug for FailureDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailureDetector")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl FailureDetector {
    /// Creates a detector over the given clock.
    pub fn new(config: FailureDetectorConfig, clock: Arc<dyn Clock>) -> Self {
        FailureDetector {
            inner: Arc::new(Mutex::new(HashMap::new())),
            config,
            clock,
        }
    }

    /// Records a successful operation against `node`.
    pub fn record_success(&self, node: NodeId) {
        self.record(node, true);
    }

    /// Records a failed operation against `node`; may ban it.
    pub fn record_failure(&self, node: NodeId) {
        self.record(node, false);
    }

    fn record(&self, node: NodeId, success: bool) {
        let now = self.clock.now();
        let mut inner = self.inner.lock();
        let state = inner
            .entry(node)
            .or_insert_with(|| NodeState::Available(WindowCounts::default()));
        let NodeState::Available(counts) = state else {
            // Operations against a banned node don't change its state;
            // only a probe can restore it.
            return;
        };
        if now.saturating_sub(counts.window_start) > self.config.window {
            counts.window_start = now;
            counts.successes = 0;
            counts.failures = 0;
        }
        if success {
            counts.successes += 1;
        } else {
            counts.failures += 1;
        }
        let total = counts.successes + counts.failures;
        if total >= self.config.min_samples {
            let ratio = counts.successes as f64 / total as f64;
            if ratio < self.config.threshold {
                *state = NodeState::Banned {
                    since: now,
                    last_probe: now,
                };
            }
        }
    }

    /// True when `node` may be routed to. Unknown nodes are available.
    pub fn is_available(&self, node: NodeId) -> bool {
        !matches!(self.inner.lock().get(&node), Some(NodeState::Banned { .. }))
    }

    /// Nodes that are banned and due for a recovery probe, in [`NodeId`]
    /// order (sorted so probe order — and anything downstream of it, like
    /// a seeded network's drop sequence — is deterministic). Calling this
    /// also stamps the probe time so the same node isn't probed in a tight
    /// loop — this is the method the async recovery thread polls.
    pub fn nodes_due_for_probe(&self) -> Vec<NodeId> {
        let now = self.clock.now();
        let mut due = Vec::new();
        let mut inner = self.inner.lock();
        for (&node, state) in inner.iter_mut() {
            if let NodeState::Banned { last_probe, .. } = state {
                if now.saturating_sub(*last_probe) >= self.config.probe_interval {
                    *last_probe = now;
                    due.push(node);
                }
            }
        }
        due.sort_unstable();
        due
    }

    /// Reports the outcome of a recovery probe. A success restores the node
    /// to the available pool with a fresh window.
    pub fn probe_result(&self, node: NodeId, success: bool) {
        if !success {
            return;
        }
        let now = self.clock.now();
        self.inner.lock().insert(
            node,
            NodeState::Available(WindowCounts {
                window_start: now,
                ..Default::default()
            }),
        );
    }

    /// When `node` was banned, if it is currently banned.
    pub fn banned_since(&self, node: NodeId) -> Option<Duration> {
        match self.inner.lock().get(&node) {
            Some(NodeState::Banned { since, .. }) => Some(*since),
            _ => None,
        }
    }

    /// All currently banned nodes, in [`NodeId`] order.
    pub fn banned_nodes(&self) -> Vec<NodeId> {
        let mut banned: Vec<NodeId> = self
            .inner
            .lock()
            .iter()
            .filter_map(|(&n, s)| matches!(s, NodeState::Banned { .. }).then_some(n))
            .collect();
        banned.sort_unstable();
        banned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimClock;

    const N1: NodeId = NodeId(1);

    fn detector(clock: &SimClock) -> FailureDetector {
        FailureDetector::new(
            FailureDetectorConfig {
                threshold: 0.8,
                window: Duration::from_secs(10),
                min_samples: 10,
                probe_interval: Duration::from_secs(5),
            },
            Arc::new(clock.clone()),
        )
    }

    #[test]
    fn unknown_node_is_available() {
        let clock = SimClock::new();
        assert!(detector(&clock).is_available(N1));
    }

    #[test]
    fn few_failures_do_not_ban() {
        let clock = SimClock::new();
        let fd = detector(&clock);
        // 9 failures < min_samples: ratio not yet trusted.
        for _ in 0..9 {
            fd.record_failure(N1);
        }
        assert!(fd.is_available(N1));
    }

    #[test]
    fn low_success_ratio_bans() {
        let clock = SimClock::new();
        let fd = detector(&clock);
        for _ in 0..7 {
            fd.record_success(N1);
        }
        for _ in 0..3 {
            fd.record_failure(N1);
        }
        // 7/10 = 0.7 < 0.8 → banned.
        assert!(!fd.is_available(N1));
        assert_eq!(fd.banned_nodes(), vec![N1]);
    }

    #[test]
    fn high_success_ratio_survives_transient_failures() {
        let clock = SimClock::new();
        let fd = detector(&clock);
        for i in 0..100 {
            if i % 10 == 0 {
                fd.record_failure(N1); // 10% transient errors
            } else {
                fd.record_success(N1);
            }
        }
        assert!(fd.is_available(N1));
    }

    #[test]
    fn window_expiry_resets_counts() {
        let clock = SimClock::new();
        let fd = detector(&clock);
        for _ in 0..5 {
            fd.record_failure(N1);
        }
        clock.advance(Duration::from_secs(11));
        // Old failures fell out of the window; these 9 successes + 1 failure
        // stay above threshold.
        for _ in 0..9 {
            fd.record_success(N1);
        }
        fd.record_failure(N1);
        assert!(fd.is_available(N1));
    }

    #[test]
    fn banned_node_only_restored_by_probe() {
        let clock = SimClock::new();
        let fd = detector(&clock);
        for _ in 0..10 {
            fd.record_failure(N1);
        }
        assert!(!fd.is_available(N1));
        // Successful operations while banned don't restore it (the paper's
        // "considered online only when an asynchronous thread is able to
        // contact it again").
        for _ in 0..100 {
            fd.record_success(N1);
        }
        assert!(!fd.is_available(N1));
        fd.probe_result(N1, true);
        assert!(fd.is_available(N1));
    }

    #[test]
    fn flapping_node_stays_banned_until_probe_succeeds() {
        // A node oscillating around the success-ratio threshold: once
        // banned, windows of perfect successes must NOT readmit it — only
        // an asynchronous probe can ("once marked down the node is
        // considered online only when an asynchronous thread is able to
        // contact it again"). Ratio alone never re-enters the preference
        // list.
        let clock = SimClock::new();
        let fd = detector(&clock);
        // Flap below threshold: 7/10 = 0.7 < 0.8 → banned.
        for _ in 0..7 {
            fd.record_success(N1);
        }
        for _ in 0..3 {
            fd.record_failure(N1);
        }
        assert!(!fd.is_available(N1));
        let banned_at = fd.banned_since(N1).unwrap();

        // The node "recovers" and flaps healthy for many windows: floods
        // of successes, window expiries, failed probes in between.
        for window in 0..5 {
            clock.advance(Duration::from_secs(11)); // window expiry
            for _ in 0..50 {
                fd.record_success(N1); // would be 100% ratio if trusted
            }
            assert!(
                !fd.is_available(N1),
                "window {window}: ratio alone readmitted a banned node"
            );
            assert_eq!(
                fd.banned_since(N1),
                Some(banned_at),
                "ban epoch must be stable across windows"
            );
            // The async prober fires but the node answers sick.
            for node in fd.nodes_due_for_probe() {
                fd.probe_result(node, false);
            }
            assert!(!fd.is_available(N1), "failed probe keeps the ban");
        }

        // Only a successful async probe restores it.
        clock.advance(Duration::from_secs(5));
        assert_eq!(fd.nodes_due_for_probe(), vec![N1]);
        fd.probe_result(N1, true);
        assert!(fd.is_available(N1));
        assert!(fd.banned_since(N1).is_none());

        // And the restored window is fresh: it takes min_samples new
        // observations to re-ban the still-flapping node.
        for _ in 0..9 {
            fd.record_failure(N1);
        }
        assert!(fd.is_available(N1), "fresh window, ratio not yet trusted");
        fd.record_failure(N1);
        assert!(!fd.is_available(N1), "flapped straight back out");
    }

    #[test]
    fn probe_and_ban_listings_are_sorted() {
        let clock = SimClock::new();
        let fd = detector(&clock);
        // Ban a spread of nodes in scrambled insertion order.
        for id in [9u16, 3, 7, 1, 5] {
            for _ in 0..10 {
                fd.record_failure(NodeId(id));
            }
        }
        assert_eq!(
            fd.banned_nodes(),
            vec![NodeId(1), NodeId(3), NodeId(5), NodeId(7), NodeId(9)]
        );
        clock.advance(Duration::from_secs(5));
        assert_eq!(
            fd.nodes_due_for_probe(),
            vec![NodeId(1), NodeId(3), NodeId(5), NodeId(7), NodeId(9)]
        );
    }

    #[test]
    fn probes_rate_limited_by_interval() {
        let clock = SimClock::new();
        let fd = detector(&clock);
        for _ in 0..10 {
            fd.record_failure(N1);
        }
        assert!(fd.nodes_due_for_probe().is_empty(), "too soon");
        clock.advance(Duration::from_secs(5));
        assert_eq!(fd.nodes_due_for_probe(), vec![N1]);
        assert!(fd.nodes_due_for_probe().is_empty(), "stamped, not due again");
        clock.advance(Duration::from_secs(5));
        assert_eq!(fd.nodes_due_for_probe(), vec![N1]);
        fd.probe_result(N1, false);
        assert!(!fd.is_available(N1), "failed probe keeps the ban");
        clock.advance(Duration::from_secs(5));
        fd.probe_result(N1, true);
        assert!(fd.is_available(N1));
    }
}
