//! Benchmark harness support (targets live in benches/).
