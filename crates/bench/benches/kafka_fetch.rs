//! Experiment C-21 (DESIGN.md / EXPERIMENTS.md): the zero-copy fetch path.
//!
//! Paper §V.B: Kafka "avoids byte copying" on the consumer path — segment
//! bytes go from the page cache to the socket via `sendfile`, untouched.
//! Our in-process analog hands consumers `Bytes` views of the broker's own
//! segment chunks. This bench drains one pre-filled partition two ways:
//!
//! * **copy path** — the legacy per-message decode (`Message::decode_at`):
//!   CRC-validate every frame and copy every payload into a fresh
//!   allocation, exactly what `PartitionLog::read` did before the chunk
//!   API existed.
//! * **zero-copy path** — `Broker::fetch_chunks` + the lazy `FetchChunk`
//!   iterator: structural frame walk, payloads alias segment memory; plus
//!   the full `SimpleConsumer::poll` consumer stack on the same path.
//!
//! Both run at two fetch budgets (64 KiB and 512 KiB — the paper's
//! "hundreds of kilobytes" pull size). Throughput is payload MB/s.
//! Acceptance: zero-copy ≥ 2x the copy path at 512 KiB fetches; snapshot
//! lives in BENCH_kafka_fetch.json.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use li_kafka::broker::Broker;
use li_kafka::{KafkaCluster, Message, Producer, SimpleConsumer};
use li_workload::events::activity_batch;
use li_workload::zipf::Zipfian;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;

const MESSAGES: usize = 20_000;

/// Builds a cluster with one pre-filled, flushed partition and returns it
/// with the total payload bytes stored.
fn filled_cluster() -> (Arc<KafkaCluster>, usize) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let zipf = Zipfian::ycsb(100_000);
    let payloads = activity_batch(&mut rng, &zipf, MESSAGES);
    let total: usize = payloads.iter().map(String::len).sum();
    let cluster = KafkaCluster::new(1).unwrap();
    cluster.create_topic("t", 1).unwrap();
    let producer = Producer::new(cluster.clone()).with_batch_size(256);
    for p in payloads {
        producer.send("t", p).unwrap();
    }
    producer.flush().unwrap();
    (cluster, total)
}

/// The pre-chunk-API consumer drain: every frame CRC-validated, every
/// payload copied into its own allocation.
fn copy_drain(broker: &Broker, max_bytes: usize) -> usize {
    let mut offset = 0u64;
    let mut bytes = 0usize;
    loop {
        let (chunks, next) = broker.fetch_chunks("t", 0, offset, max_bytes).unwrap();
        if chunks.is_empty() {
            break;
        }
        for chunk in &chunks {
            let mut pos = 0usize;
            while let Some((message, p)) = Message::decode_at(&chunk.data, pos).unwrap() {
                bytes += message.payload.len();
                black_box(&message.payload);
                pos = p;
            }
        }
        offset = next;
    }
    bytes
}

/// The zero-copy drain: lazy iteration, payloads alias segment memory.
fn zero_copy_drain(broker: &Broker, max_bytes: usize) -> usize {
    let mut offset = 0u64;
    let mut bytes = 0usize;
    loop {
        let (chunks, next) = broker.fetch_chunks("t", 0, offset, max_bytes).unwrap();
        if chunks.is_empty() {
            break;
        }
        for chunk in &chunks {
            for item in chunk {
                let (_, message) = item.unwrap();
                bytes += message.payload.len();
                black_box(&message.payload);
            }
        }
        offset = next;
    }
    bytes
}

/// The full consumer stack (`SimpleConsumer::poll`) on the zero-copy path.
fn consumer_drain(consumer: &mut SimpleConsumer) -> usize {
    consumer.seek(0);
    let mut bytes = 0usize;
    loop {
        let batch = consumer.poll().unwrap();
        if batch.is_empty() {
            break;
        }
        for (_, message) in &batch {
            bytes += message.payload.len();
            black_box(&message.payload);
        }
    }
    bytes
}

fn bench_fetch_paths(c: &mut Criterion) {
    println!("\n=== C-21: consumer drain, copy vs zero-copy fetch path (§V.B) ===");
    let (cluster, total) = filled_cluster();
    let broker = cluster.broker_for("t", 0).unwrap();
    println!(
        "{MESSAGES} messages, {total} payload bytes ({:.1} MiB) in one partition\n",
        total as f64 / (1024.0 * 1024.0)
    );

    let mut group = c.benchmark_group("kafka_fetch");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(total as u64));
    for &(label, max_bytes) in &[("64KiB", 64 * 1024), ("512KiB", 512 * 1024)] {
        group.bench_with_input(
            BenchmarkId::new("copy_drain", label),
            &max_bytes,
            |b, &max_bytes| {
                b.iter(|| {
                    let bytes = copy_drain(&broker, max_bytes);
                    assert_eq!(bytes, total);
                    black_box(bytes)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("zero_copy_drain", label),
            &max_bytes,
            |b, &max_bytes| {
                b.iter(|| {
                    let bytes = zero_copy_drain(&broker, max_bytes);
                    assert_eq!(bytes, total);
                    black_box(bytes)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("consumer_drain", label),
            &max_bytes,
            |b, &max_bytes| {
                let mut consumer = SimpleConsumer::new(cluster.clone(), "t", 0)
                    .unwrap()
                    .with_max_bytes(max_bytes);
                b.iter(|| {
                    let bytes = consumer_drain(&mut consumer);
                    assert_eq!(bytes, total);
                    black_box(bytes)
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_fetch_paths
}
criterion_main!(benches);
