//! Experiments C-1, C-2, C-3, F-II.3 (DESIGN.md): Voldemort serving.
//!
//! Paper numbers (§II.C):
//! * C-1 — read-write cluster: "about 60% reads and 40% writes ... around
//!   10K queries per second at peak with average latency of 3 ms".
//! * C-2 — read-only cluster: "about 9K reads per second with an average
//!   latency of less than 1 ms" (RO reads must beat RW reads).
//! * C-3 — Company Follow: Zipfian value sizes, "average latency of 4 ms"
//!   for large values.
//! * F-II.3 — the build → pull → swap cycle itself.
//!
//! Absolute numbers here are in-process (no real network), so they are far
//! faster than the paper's testbed; the *shape* to check is RO < RW reads,
//! and throughput well above the paper's per-node rates.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use li_voldemort::readonly::{ReadOnlyBuilder, ScratchDir};
use li_voldemort::{StoreDef, VoldemortCluster};
use li_workload::datasets::company_follow_dataset;
use li_workload::keys::{member_key, KeyDistribution};
use li_workload::{MixedWorkload, Operation};
use rand::SeedableRng;
use std::hint::black_box;

const KEYS: u64 = 10_000;

fn bench_mixed_rw(c: &mut Criterion) {
    println!("\n=== C-1: read-write cluster, 60/40 mix (paper: ~10K qps, 3 ms avg) ===");
    let cluster = VoldemortCluster::new(32, 3).unwrap();
    cluster
        .add_store(StoreDef::read_write("rw").with_quorum(2, 1, 1))
        .unwrap();
    let client = cluster.client("rw").unwrap();
    // Preload.
    for i in 0..KEYS {
        client
            .put_initial(&member_key(i), Bytes::from(vec![b'x'; 256]))
            .unwrap();
    }
    let workload = MixedWorkload::sixty_forty(KeyDistribution::zipfian(KEYS), 256);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let ops = workload.ops(&mut rng, 100_000);

    let mut group = c.benchmark_group("voldemort_mixed");
    group.throughput(Throughput::Elements(1));
    let mut i = 0usize;
    group.bench_function("sixty_forty", |b| {
        b.iter(|| {
            let op = &ops[i % ops.len()];
            i += 1;
            match op {
                Operation::Read(key) => {
                    black_box(client.get(key).unwrap());
                }
                Operation::Write(key, size) => {
                    let _ = client.apply_update(key, 3, &|_| Some(Bytes::from(vec![b'y'; *size])));
                }
            }
        })
    });
    group.finish();
}

fn bench_readonly_vs_readwrite_reads(c: &mut Criterion) {
    println!("\n=== C-2: read-only store reads vs BDB-like reads (paper: RO <1 ms beats RW 3 ms) ===");
    // Read-write side.
    let cluster = VoldemortCluster::new(16, 2).unwrap();
    cluster
        .add_store(StoreDef::read_write("rw").with_quorum(2, 1, 1))
        .unwrap();
    let rw_client = cluster.client("rw").unwrap();
    for i in 0..KEYS {
        rw_client
            .put_initial(&member_key(i), Bytes::from(format!("recs:{i}")))
            .unwrap();
    }
    // Read-only side: full build/pull/swap (F-II.3), timed once.
    let scratch = ScratchDir::new("bench-ro").unwrap();
    let hdfs = ScratchDir::new("bench-hdfs").unwrap();
    let ro_stores = cluster
        .add_read_only_store(StoreDef::read_only("ro").with_quorum(2, 1, 1), scratch.path())
        .unwrap();
    let records: Vec<(Bytes, Bytes)> = (0..KEYS)
        .map(|i| (Bytes::from(member_key(i)), Bytes::from(format!("recs:{i}"))))
        .collect();
    let builder = ReadOnlyBuilder::new(cluster.ring(), 2, 4);
    let t = std::time::Instant::now();
    let out = builder.build(records, 1, hdfs.path()).unwrap();
    let build = t.elapsed();
    let t = std::time::Instant::now();
    for store in &ro_stores {
        store.pull(&out.node_dir(store.node()), 1, None).unwrap();
    }
    let pull = t.elapsed();
    let t = std::time::Instant::now();
    for store in &ro_stores {
        store.swap(1).unwrap();
    }
    let swap = t.elapsed();
    println!("F-II.3 data cycle over {KEYS} records x2 replicas: build {build:?}, pull {pull:?}, swap {swap:?}");
    let ro_client = cluster.client("ro").unwrap();

    let mut group = c.benchmark_group("voldemort_readonly");
    group.throughput(Throughput::Elements(1));
    let mut i = 0u64;
    group.bench_function("rw_bdb_read", |b| {
        b.iter(|| {
            let key = member_key(i % KEYS);
            i += 1;
            black_box(rw_client.get(&key).unwrap())
        })
    });
    let mut j = 0u64;
    group.bench_function("ro_binary_search_read", |b| {
        b.iter(|| {
            let key = member_key(j % KEYS);
            j += 1;
            black_box(ro_client.get(&key).unwrap())
        })
    });
    group.finish();
}

fn bench_company_follow(c: &mut Criterion) {
    println!("\n=== C-3: Company Follow — Zipfian value sizes (paper: 4 ms avg for large values) ===");
    let cluster = VoldemortCluster::new(16, 2).unwrap();
    cluster
        .add_store(StoreDef::read_write("company-followers").with_quorum(2, 1, 1))
        .unwrap();
    let client = cluster.client("company-followers").unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let (_, companies) = company_follow_dataset(&mut rng, 2_000, 500, 2_000);
    let mut sizes: Vec<usize> = companies.iter().map(|c| c.value.len()).collect();
    sizes.sort_unstable();
    println!(
        "value sizes: min {}B, median {}B, max {}B (Zipfian)",
        sizes[0],
        sizes[sizes.len() / 2],
        sizes[sizes.len() - 1]
    );
    for row in &companies {
        client
            .put_initial(&row.key, Bytes::copy_from_slice(&row.value))
            .unwrap();
    }
    let keys: Vec<Vec<u8>> = companies.iter().map(|r| r.key.clone()).collect();

    let mut group = c.benchmark_group("company_follow");
    group.throughput(Throughput::Elements(1));
    let mut i = 0usize;
    group.bench_function("zipfian_value_reads", |b| {
        b.iter(|| {
            let key = &keys[i % keys.len()];
            i += 1;
            black_box(client.get(key).unwrap())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mixed_rw, bench_readonly_vs_readwrite_reads, bench_company_follow
}
criterion_main!(benches);
