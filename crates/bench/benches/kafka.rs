//! Experiments C-12..C-15, C-18 (DESIGN.md): Kafka's design choices.
//!
//! Paper claims (§V):
//! * C-12 — offset-addressed logs with stateless brokers beat per-message
//!   ids + broker-side ack state.
//! * C-13 — producer batching ("a set of messages in a single publish
//!   request") raises throughput.
//! * C-14 — "we save about 2/3 of the network bandwidth with compression".
//! * C-15 — sendfile zero-copy vs the 4-copy send path.
//! * C-18 — live -> mirror -> warehouse end-to-end latency is dominated by
//!   the batch load period (~10 s in production, scaled here).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use li_commons::compress::Codec;
use li_commons::sim::{Clock, SimClock};
use li_kafka::baseline::TraditionalMq;
use li_kafka::log::LogConfig;
use li_kafka::mirror::{MirrorMaker, WarehouseLoader};
use li_kafka::net::{transfer, TransferMode};
use li_kafka::{KafkaCluster, MessageSet, Producer, SimpleConsumer};
use li_workload::events::activity_batch;
use li_workload::zipf::Zipfian;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn event_payloads(n: usize) -> Vec<String> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let zipf = Zipfian::ycsb(100_000);
    activity_batch(&mut rng, &zipf, n)
}

fn bench_vs_traditional_mq(c: &mut Criterion) {
    println!("\n=== C-12: offset-addressed log vs traditional MQ (ids + broker acks) ===");
    println!("5K messages, 3 subscribers each (pub/sub): the MQ pays per-message id");
    println!("indexing plus per-(consumer,message) ack bookkeeping; Kafka pays nothing.");
    println!("(Both sides checksum what they store; wall times in-process are close —");
    println!("the paper's structural win is the broker STATE, quantified below.)\n");
    {
        // Broker-state comparison at the half-consumed point.
        let mq = TraditionalMq::new();
        for s in 0..3 {
            mq.register_consumer(&format!("c{s}"));
        }
        let probe = event_payloads(5_000);
        for p in &probe {
            mq.publish(Bytes::from(p.clone()));
        }
        // Consumer 0 read everything but acked nothing yet; 1 and 2 idle.
        let _ = mq.deliver("c0", usize::MAX);
        println!(
            "traditional MQ broker state mid-flight: {} retained messages + id index + per-consumer ack sets",
            mq.retained()
        );
        println!("kafka broker state for the same point: segment bytes + ZERO per-consumer entries\n");
    }
    const MSGS: usize = 5_000;
    const SUBSCRIBERS: usize = 3;
    let payloads = event_payloads(MSGS);
    let set = MessageSet::from_payloads(payloads.clone());
    // Shared, pre-built cluster: the work measured is produce+consume only.
    let cluster = KafkaCluster::new(1).unwrap();
    let mut next_topic = 0u32;

    let mut group = c.benchmark_group("kafka_vs_traditional_mq");
    group.sample_size(10);
    group.throughput(Throughput::Elements((MSGS * SUBSCRIBERS) as u64));

    group.bench_function("kafka_produce_consume_5k_x3", |b| {
        b.iter(|| {
            let topic = format!("t{next_topic}");
            next_topic += 1;
            cluster.create_topic(&topic, 1).unwrap();
            let broker = cluster.broker_for(&topic, 0).unwrap();
            broker.produce(&topic, 0, &set).unwrap();
            // 3 independent subscribers: zero broker-side state, each just
            // reads the log.
            let mut seen = 0;
            for _ in 0..SUBSCRIBERS {
                let mut consumer = SimpleConsumer::new(cluster.clone(), &topic, 0).unwrap();
                loop {
                    let batch = consumer.poll().unwrap();
                    if batch.is_empty() {
                        break;
                    }
                    seen += batch.len();
                }
            }
            black_box(seen)
        })
    });

    group.bench_function("traditional_mq_5k_x3", |b| {
        b.iter(|| {
            let mq = TraditionalMq::new();
            for s in 0..SUBSCRIBERS {
                mq.register_consumer(&format!("c{s}"));
            }
            for p in &payloads {
                mq.publish(Bytes::from(p.clone()));
            }
            // Each subscriber must individually ack every message before
            // the broker can forget it.
            let mut seen = 0;
            for s in 0..SUBSCRIBERS {
                let name = format!("c{s}");
                loop {
                    let batch = mq.deliver(&name, 500);
                    if batch.is_empty() {
                        break;
                    }
                    for (id, _) in batch {
                        mq.ack(&name, id);
                        seen += 1;
                    }
                }
            }
            black_box((seen, mq.retained()))
        })
    });
    group.finish();
}

fn bench_batching(c: &mut Criterion) {
    println!("\n=== C-13: producer batch-size sweep ===");
    let payloads = event_payloads(2_000);
    let mut group = c.benchmark_group("kafka_batching");
    group.throughput(Throughput::Elements(payloads.len() as u64));
    for &batch in &[1usize, 10, 100, 1000] {
        group.bench_with_input(BenchmarkId::new("produce_2k", batch), &batch, |b, &batch| {
            b.iter(|| {
                let cluster = KafkaCluster::new(1).unwrap();
                cluster.create_topic("t", 1).unwrap();
                let producer = Producer::new(cluster.clone()).with_batch_size(batch);
                for p in &payloads {
                    producer.send("t", p.clone()).unwrap();
                }
                producer.flush().unwrap();
                black_box(producer.stats().requests)
            })
        });
    }
    group.finish();
}

fn bench_compression(c: &mut Criterion) {
    println!("\n=== C-14: batch compression bandwidth (paper: ~2/3 saved) ===");
    let payloads = event_payloads(2_000);
    // One-shot bandwidth report.
    {
        let cluster = KafkaCluster::new(1).unwrap();
        cluster.create_topic("t", 1).unwrap();
        let plain = Producer::new(cluster.clone()).with_batch_size(200);
        let packed = Producer::new(cluster.clone())
            .with_batch_size(200)
            .with_codec(Codec::Lz);
        for p in &payloads {
            plain.send("t", p.clone()).unwrap();
            packed.send("t", p.clone()).unwrap();
        }
        plain.flush().unwrap();
        packed.flush().unwrap();
        let (pw, cw) = (plain.stats().wire_bytes, packed.stats().wire_bytes);
        println!(
            "wire bytes: plain {pw}, compressed {cw} -> saved {:.1}% (paper: ~66%)",
            100.0 * (1.0 - cw as f64 / pw as f64)
        );
    }
    let mut group = c.benchmark_group("kafka_compression");
    group.throughput(Throughput::Elements(payloads.len() as u64));
    for (name, codec) in [("plain", Codec::None), ("lz", Codec::Lz)] {
        group.bench_with_input(BenchmarkId::new("produce_2k", name), &codec, |b, &codec| {
            b.iter(|| {
                let cluster = KafkaCluster::new(1).unwrap();
                cluster.create_topic("t", 1).unwrap();
                let producer = Producer::new(cluster.clone())
                    .with_batch_size(200)
                    .with_codec(codec);
                for p in &payloads {
                    producer.send("t", p.clone()).unwrap();
                }
                producer.flush().unwrap();
                black_box(producer.stats().wire_bytes)
            })
        });
    }
    group.finish();
}

fn bench_zero_copy(c: &mut Criterion) {
    println!("\n=== C-15: sendfile zero-copy vs 4-copy send path ===");
    let segment = Bytes::from(event_payloads(20_000).join("\n").into_bytes());
    println!("segment: {} MB served in 256 KiB chunks", segment.len() >> 20);
    let chunk = 256 * 1024;
    let mut group = c.benchmark_group("kafka_zerocopy");
    group.throughput(Throughput::Bytes(segment.len() as u64));
    for (name, mode) in [
        ("sendfile_zero_copy", TransferMode::ZeroCopy),
        ("four_copy", TransferMode::FourCopy),
    ] {
        group.bench_with_input(BenchmarkId::new("serve_segment", name), &mode, |b, &mode| {
            b.iter(|| {
                let mut copied = 0u64;
                let mut offset = 0usize;
                while offset < segment.len() {
                    let (bytes, stats) = transfer(&segment, offset, chunk, mode);
                    copied += stats.bytes_copied;
                    offset += bytes.len();
                    black_box(&bytes);
                }
                black_box(copied)
            })
        });
    }
    group.finish();
}

fn bench_pipeline_e2e(c: &mut Criterion) {
    println!("\n=== C-18: end-to-end pipeline latency (produce -> mirror -> warehouse) ===");
    println!("paper: ~10 s dominated by the batch load period; we scale the period and show");
    println!("latency ~= load period / 2 + transport (transport itself is microseconds)\n");
    // One-shot experiment with a virtual clock: event timestamps vs load
    // times under a 10 s load period, events arriving each second.
    {
        let clock = SimClock::new();
        let live = KafkaCluster::with_parts(1, LogConfig::default(), Arc::new(clock.clone())).unwrap();
        let offline = KafkaCluster::with_parts(1, LogConfig::default(), Arc::new(clock.clone())).unwrap();
        live.create_topic("t", 1).unwrap();
        offline.create_topic("t", 1).unwrap();
        let producer = Producer::new(live.clone());
        let mirror = MirrorMaker::new(live.clone(), offline.clone(), ["t"]).unwrap();
        let loader = WarehouseLoader::new(offline.clone(), ["t"], Duration::from_secs(10));

        let mut latencies = Vec::new();
        for second in 0..60u64 {
            producer.send("t", format!("{}", clock.now_nanos())).unwrap();
            producer.flush().unwrap();
            mirror.pump().unwrap();
            loader.tick().unwrap();
            clock.advance(Duration::from_secs(1));
            let _ = second;
        }
        loader.run_load().unwrap();
        for row in loader.rows() {
            let produced: u64 = String::from_utf8_lossy(&row.payload).parse().unwrap();
            latencies.push((row.loaded_at - produced) as f64 / 1e9);
        }
        let avg = latencies.iter().sum::<f64>() / latencies.len() as f64;
        println!(
            "60 events over 60 s, 10 s load period -> avg e2e latency {avg:.1} s (paper: ~10 s)"
        );
    }
    // Criterion-measured transport-only hop (everything but the batch wait).
    let mut group = c.benchmark_group("kafka_pipeline_e2e");
    group.sample_size(10);
    group.bench_function("transport_hop_produce_mirror_load", |b| {
        b.iter(|| {
            let live = KafkaCluster::new(1).unwrap();
            let offline = KafkaCluster::new(1).unwrap();
            live.create_topic("t", 1).unwrap();
            offline.create_topic("t", 1).unwrap();
            let producer = Producer::new(live.clone());
            let mirror = MirrorMaker::new(live, offline.clone(), ["t"]).unwrap();
            let loader = WarehouseLoader::new(offline, ["t"], Duration::ZERO);
            for i in 0..50 {
                producer.send("t", format!("e{i}")).unwrap();
            }
            producer.flush().unwrap();
            mirror.pump().unwrap();
            black_box(loader.run_load().unwrap())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_vs_traditional_mq, bench_batching, bench_compression, bench_zero_copy, bench_pipeline_e2e
}
criterion_main!(benches);
