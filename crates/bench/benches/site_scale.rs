//! Experiment C-24 (DESIGN.md / EXPERIMENTS.md): site-scale closed-loop
//! throughput/latency knee under SLO gates, now at site scale.
//!
//! The paper's systems are specified tier by tier, but the site runs them
//! *together*: profile reads against Espresso, PYMK against Voldemort
//! read-only stores, follows through the primary → Databus → the Company
//! Follow caches, activity events through Kafka into the warehouse. This
//! bench drives that whole assembly with the closed-loop member
//! population of `li_workload::site` (Zipfian follower counts, power-law
//! write skew) and records two sweeps:
//!
//! * **driver sweep** — fixed population, driver count swept far past the
//!   old thread-per-driver ceiling (hundreds of logical drivers
//!   multiplexed onto 8 scheduler workers by the M:N scheduler) to find
//!   the throughput/latency knee;
//! * **population sweep** — fixed load, population swept from 2K members
//!   toward a million, each point seeded by the *streaming* prepare
//!   (generator thread pipelined against the tier loader) with the
//!   generate/load wall split recorded — `generate + load > wall` is the
//!   direct evidence the two phases overlapped.
//!
//! Every load point re-runs the full SLO gate set of `site_bench`
//! (per-tier p99, Databus/Kafka lag drained to zero, cross-tier write
//! conservation), so a "fast" point that loses writes or leaves lag
//! behind does not count. The knee is the highest-throughput point that
//! still clears every gate. Snapshot lives in BENCH_site_scale.json.

use criterion::{criterion_group, criterion_main, Criterion};
use li_workload::SiteGraph;
use linkedin_data_infra::{
    PlatformConfig, PrepareStats, ShardMode, SiteBench, SiteBenchConfig, SiteBenchReport,
    SloThresholds,
};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const MEMBERS: u64 = 2000;
// Every load point performs the same total work; the driver count only
// changes how concurrently it is offered. This keeps throughput figures
// comparable across points and each point long enough to measure.
const OPS_TOTAL: usize = 12800;
const SEED: u64 = 42;
// Past 32 the old harness would have needed an OS thread per driver; the
// M:N scheduler runs every point on SCHED_WORKERS pool threads.
const DRIVER_SWEEP: [usize; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 512];
const SCHED_WORKERS: usize = 8;

// Population sweep: fixed offered load, member count swept toward the
// paper's site scale. Every point is seeded by the streaming prepare.
// `SITE_BENCH_MAX_MEMBERS` caps the sweep for quick local runs.
const POPULATION_SWEEP: [u64; 4] = [2_000, 20_000, 100_000, 1_000_000];
const POPULATION_DRIVERS: usize = 128;

/// The sweep's serving budgets — far tighter than the CI smoke budgets:
/// reads must stay in single-digit milliseconds at p99 and the primary's
/// serialized follow write under 25ms. The knee is where offered load
/// can no longer grow without blowing one of these.
fn sweep_slo() -> SloThresholds {
    SloThresholds {
        profile_read_p99: Duration::from_millis(10),
        pymk_read_p99: Duration::from_millis(10),
        follow_write_p99: Duration::from_millis(25),
        activity_p99: Duration::from_millis(10),
    }
}

fn platform_shape(mode: ShardMode) -> PlatformConfig {
    PlatformConfig {
        voldemort_nodes: 3,
        kafka_brokers: 2,
        espresso_nodes: 3,
        espresso_partitions: 8,
        activity_partitions: 4,
        shard_mode: mode,
    }
}

fn point_config(
    members: u64,
    drivers: usize,
    ops_per_driver: usize,
    mode: ShardMode,
) -> SiteBenchConfig {
    let mut config = SiteBenchConfig::smoke(members, drivers, ops_per_driver, SEED);
    config.platform = platform_shape(mode);
    config.slo = sweep_slo();
    config.workers = SCHED_WORKERS;
    config
}

fn run_point(graph: &Arc<SiteGraph>, drivers: usize, mode: ShardMode) -> SiteBenchReport {
    let bench = SiteBench::prepare_with_graph(
        point_config(MEMBERS, drivers, OPS_TOTAL / drivers, mode),
        graph.clone(),
    )
    .expect("prepare load point");
    bench.run().expect("run load point")
}

fn p99_ms(report: &SiteBenchReport, tier: &str) -> f64 {
    report
        .tier_latency
        .get(tier)
        .map(|h| h.p99 as f64 / 1e6)
        .unwrap_or(0.0)
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// Drivers at which the sharded runtime is compared against its
/// serialized (single-stripe, `ShardMode::Deterministic`) twin: the same
/// concurrency offered to a platform that takes one global stripe per
/// tier, i.e. the pre-sharding serving runtime.
const BASELINE_DRIVERS: usize = 8;

fn sweep_drivers() -> String {
    // One population for every point: the knee must come from load, not
    // from a different graph shape per point.
    let graph = Arc::new(SiteGraph::generate(
        &point_config(MEMBERS, 1, OPS_TOTAL, ShardMode::Parallel).graph,
    ));

    println!(
        "\n=== C-24a: driver knee (population {MEMBERS}, {OPS_TOTAL} ops/point, \
         {SCHED_WORKERS} scheduler workers) ==="
    );
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "drivers",
        "ops",
        "ops/s",
        "profile p99",
        "pymk p99",
        "follow p99",
        "activity p99",
        "slo_ok"
    );
    let mut points = Vec::new();
    for drivers in DRIVER_SWEEP {
        let report = run_point(&graph, drivers, ShardMode::Parallel);
        let slo_ok = report.all_gates_pass();
        println!(
            "{:>8} {:>10} {:>12.0} {:>9.3}ms {:>9.3}ms {:>9.3}ms {:>9.3}ms {:>8}",
            drivers,
            report.ops_acked,
            report.throughput_ops_per_sec,
            p99_ms(&report, "profile_read"),
            p99_ms(&report, "pymk_read"),
            p99_ms(&report, "follow_write"),
            p99_ms(&report, "activity"),
            slo_ok
        );
        if !slo_ok {
            for failure in report.gate_failures() {
                println!("         gate {}: {}", failure.name, failure.detail);
            }
        }
        points.push((drivers, report, slo_ok));
    }

    // The knee: the highest-throughput point that still clears every SLO
    // gate. Past it, offered load only buys latency (or gate failures).
    let knee = points
        .iter()
        .filter(|(_, _, ok)| *ok)
        .max_by(|a, b| {
            a.1.throughput_ops_per_sec
                .total_cmp(&b.1.throughput_ops_per_sec)
        })
        .map(|(drivers, _, _)| *drivers)
        .expect("at least one load point must clear the gates");
    println!("knee: {knee} drivers (highest-throughput SLO-clean point)");

    // Serialized baseline: the deterministic twin (every striped lock
    // collapsed to one stripe, scheduler collapsed to the serial twin)
    // offered the same concurrency. This is the pre-sharding runtime —
    // the speedup of the sharded platform at the same driver count is
    // the figure of merit.
    let baseline = run_point(&graph, BASELINE_DRIVERS, ShardMode::Deterministic);
    let sharded_at_baseline = points
        .iter()
        .find(|(d, _, _)| *d == BASELINE_DRIVERS)
        .map(|(_, r, _)| r)
        .expect("sweep covers the baseline driver count");
    let speedup =
        sharded_at_baseline.throughput_ops_per_sec / baseline.throughput_ops_per_sec.max(1e-9);
    println!(
        "serialized baseline (Deterministic, {BASELINE_DRIVERS} drivers): {:.0} ops/s, follow p99 {:.3}ms",
        baseline.throughput_ops_per_sec,
        p99_ms(&baseline, "follow_write"),
    );
    println!(
        "sharded vs serialized at {BASELINE_DRIVERS} drivers: {:.2}x ({:.0} vs {:.0} ops/s)",
        speedup,
        sharded_at_baseline.throughput_ops_per_sec,
        baseline.throughput_ops_per_sec
    );

    let throughput_at = |drivers: usize| {
        points
            .iter()
            .find(|(d, _, _)| *d == drivers)
            .map(|(_, r, _)| r.throughput_ops_per_sec)
            .unwrap_or(0.0)
    };
    let scaling_1_to_8 = throughput_at(8) / throughput_at(1).max(1e-9);
    println!(
        "scaling 1->8 drivers: {:.2}x ({:.0} -> {:.0} ops/s)",
        scaling_1_to_8,
        throughput_at(1),
        throughput_at(8)
    );

    let results: Vec<String> = points
        .iter()
        .map(|(drivers, report, slo_ok)| {
            format!(
                "{{ \"drivers\": {drivers}, \"ops_acked\": {}, \"throughput_ops_per_sec\": {:.1}, \
                 \"profile_read_p99_ms\": {:.3}, \"pymk_read_p99_ms\": {:.3}, \
                 \"follow_write_p99_ms\": {:.3}, \"activity_p99_ms\": {:.3}, \
                 \"slo_ok\": {slo_ok}, \"knee\": {} }}",
                report.ops_acked,
                report.throughput_ops_per_sec,
                p99_ms(report, "profile_read"),
                p99_ms(report, "pymk_read"),
                p99_ms(report, "follow_write"),
                p99_ms(report, "activity"),
                *drivers == knee
            )
        })
        .collect();
    format!(
        "\"driver_sweep\": {{ \"members\": {MEMBERS}, \"ops_total\": {OPS_TOTAL}, \"seed\": {SEED}, \
         \"scheduler_workers\": {SCHED_WORKERS}, \"knee_drivers\": {knee}, \
         \"serialized_baseline\": {{ \"mode\": \"deterministic\", \"drivers\": {BASELINE_DRIVERS}, \
         \"throughput_ops_per_sec\": {:.1}, \"follow_write_p99_ms\": {:.3}, \"slo_ok\": {} }}, \
         \"speedup_vs_serialized\": {speedup:.2}, \"scaling_1_to_8\": {scaling_1_to_8:.2}, \
         \"results\": [{}] }}",
        baseline.throughput_ops_per_sec,
        p99_ms(&baseline, "follow_write"),
        baseline.all_gates_pass(),
        results.join(", ")
    )
}

fn prepare_json(stats: &PrepareStats) -> String {
    let overlap = secs(stats.generate_wall) + secs(stats.load_wall) - secs(stats.wall);
    format!(
        "{{ \"wall_s\": {:.3}, \"generate_wall_s\": {:.3}, \"load_wall_s\": {:.3}, \
         \"overlap_s\": {:.3}, \"chunks\": {}, \"chunk_members\": {}, \"overlapped\": {} }}",
        secs(stats.wall),
        secs(stats.generate_wall),
        secs(stats.load_wall),
        overlap,
        stats.chunks,
        stats.chunk_members,
        stats.overlapped
    )
}

fn sweep_population() -> String {
    let max_members: u64 = std::env::var("SITE_BENCH_MAX_MEMBERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(u64::MAX);
    println!(
        "\n=== C-24b: population sweep ({POPULATION_DRIVERS} drivers on {SCHED_WORKERS} workers, \
         {OPS_TOTAL} ops/point, streaming prepare) ==="
    );
    println!(
        "{:>10} {:>11} {:>11} {:>11} {:>11} {:>12} {:>12} {:>8}",
        "members", "prepare", "generate", "load", "overlap", "ops/s", "profile p99", "slo_ok"
    );
    let mut results = Vec::new();
    for members in POPULATION_SWEEP {
        if members > max_members {
            println!("{members:>10} skipped (SITE_BENCH_MAX_MEMBERS={max_members})");
            continue;
        }
        let mut config = point_config(
            members,
            POPULATION_DRIVERS,
            OPS_TOTAL / POPULATION_DRIVERS,
            ShardMode::Parallel,
        );
        // Population points gate on conservation and drain, not the
        // driver sweep's single-digit-ms knee budgets: one core serving
        // 128 concurrent closed-loop drivers runs tens-of-ms write p99s
        // at 10^5+ members (company inverted lists grow with the
        // population), and that latency is the honest reading. The smoke
        // budgets still trip on pathological serialization.
        config.slo = SloThresholds::smoke();
        let bench = SiteBench::prepare(config).expect("streaming prepare");
        let stats = bench.prepare_stats();
        // Progress marker between the phases: a stalled point is then
        // attributable to prepare vs run from the log alone.
        println!(
            "{members:>10} prepared in {:.2}s ({} chunks), running...",
            secs(stats.wall),
            stats.chunks
        );
        let report = bench.run().expect("run population point");
        let slo_ok = report.all_gates_pass();
        let overlap = secs(stats.generate_wall) + secs(stats.load_wall) - secs(stats.wall);
        println!(
            "{:>10} {:>10.2}s {:>10.2}s {:>10.2}s {:>10.2}s {:>12.0} {:>9.3}ms {:>8}",
            members,
            secs(stats.wall),
            secs(stats.generate_wall),
            secs(stats.load_wall),
            overlap,
            report.throughput_ops_per_sec,
            p99_ms(&report, "profile_read"),
            slo_ok
        );
        if !slo_ok {
            for failure in report.gate_failures() {
                println!("         gate {}: {}", failure.name, failure.detail);
            }
        }
        results.push(format!(
            "{{ \"members\": {members}, \"prepare\": {}, \"run_wall_s\": {:.3}, \
             \"ops_acked\": {}, \"throughput_ops_per_sec\": {:.1}, \
             \"profile_read_p99_ms\": {:.3}, \"pymk_read_p99_ms\": {:.3}, \
             \"follow_write_p99_ms\": {:.3}, \"activity_p99_ms\": {:.3}, \"slo_ok\": {slo_ok} }}",
            prepare_json(&stats),
            secs(report.load_wall),
            report.ops_acked,
            report.throughput_ops_per_sec,
            p99_ms(&report, "profile_read"),
            p99_ms(&report, "pymk_read"),
            p99_ms(&report, "follow_write"),
            p99_ms(&report, "activity"),
        ));
    }
    format!(
        "\"population_sweep\": {{ \"drivers\": {POPULATION_DRIVERS}, \
         \"scheduler_workers\": {SCHED_WORKERS}, \"ops_total\": {OPS_TOTAL}, \"seed\": {SEED}, \
         \"results\": [{}] }}",
        results.join(", ")
    )
}

fn bench_site_scale(c: &mut Criterion) {
    let driver_json = sweep_drivers();
    let population_json = sweep_population();
    println!("JSON: {{ {driver_json}, {population_json} }}");

    // Standard criterion report: one small end-to-end closed-loop run
    // (prepare + drive + gate evaluation) as a regression canary.
    let config = point_config(400, 2, 100, ShardMode::Parallel);
    let graph = Arc::new(SiteGraph::generate(&config.graph));
    let mut group = c.benchmark_group("site_scale");
    group.sample_size(10);
    group.bench_function("smoke_run", |b| {
        b.iter(|| {
            let bench = SiteBench::prepare_with_graph(config.clone(), graph.clone()).unwrap();
            black_box(bench.run().unwrap())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_site_scale
}
criterion_main!(benches);
