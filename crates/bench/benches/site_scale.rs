//! Experiment C-24 (DESIGN.md / EXPERIMENTS.md): site-scale closed-loop
//! throughput/latency knee under SLO gates.
//!
//! The paper's systems are specified tier by tier, but the site runs them
//! *together*: profile reads against Espresso, PYMK against Voldemort
//! read-only stores, follows through the primary → Databus → the Company
//! Follow caches, activity events through Kafka into the warehouse. This
//! bench drives that whole assembly with the closed-loop member
//! population of `li_workload::site` (Zipfian follower counts, power-law
//! write skew) and sweeps the driver count at a fixed population to find
//! the throughput/latency knee — the offered load past which adding
//! drivers buys little throughput while tier p99s inflate.
//!
//! Every load point re-runs the full SLO gate set of `site_bench`
//! (per-tier p99, Databus/Kafka lag drained to zero, cross-tier write
//! conservation), so a "fast" point that loses writes or leaves lag
//! behind does not count. The knee is the highest-throughput point that
//! still clears every gate. Snapshot lives in BENCH_site_scale.json.

use criterion::{criterion_group, criterion_main, Criterion};
use li_workload::SiteGraph;
use linkedin_data_infra::{
    PlatformConfig, ShardMode, SiteBench, SiteBenchConfig, SiteBenchReport, SloThresholds,
};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const MEMBERS: u64 = 2000;
// Every load point performs the same total work; the driver count only
// changes how concurrently it is offered. This keeps throughput figures
// comparable across points and each point long enough to measure.
const OPS_TOTAL: usize = 12800;
const SEED: u64 = 42;
const DRIVER_SWEEP: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// The sweep's serving budgets — far tighter than the CI smoke budgets:
/// reads must stay in single-digit milliseconds at p99 and the primary's
/// serialized follow write under 25ms. The knee is where offered load
/// can no longer grow without blowing one of these.
fn sweep_slo() -> SloThresholds {
    SloThresholds {
        profile_read_p99: Duration::from_millis(10),
        pymk_read_p99: Duration::from_millis(10),
        follow_write_p99: Duration::from_millis(25),
        activity_p99: Duration::from_millis(10),
    }
}

fn platform_shape(mode: ShardMode) -> PlatformConfig {
    PlatformConfig {
        voldemort_nodes: 3,
        kafka_brokers: 2,
        espresso_nodes: 3,
        espresso_partitions: 8,
        activity_partitions: 4,
        shard_mode: mode,
    }
}

fn point_config(drivers: usize, ops_per_driver: usize, mode: ShardMode) -> SiteBenchConfig {
    let mut config = SiteBenchConfig::smoke(MEMBERS, drivers, ops_per_driver, SEED);
    config.platform = platform_shape(mode);
    config.slo = sweep_slo();
    config
}

fn run_point(graph: &Arc<SiteGraph>, drivers: usize, mode: ShardMode) -> SiteBenchReport {
    let bench = SiteBench::prepare_with_graph(
        point_config(drivers, OPS_TOTAL / drivers, mode),
        graph.clone(),
    )
    .expect("prepare load point");
    bench.run().expect("run load point")
}

fn p99_ms(report: &SiteBenchReport, tier: &str) -> f64 {
    report
        .tier_latency
        .get(tier)
        .map(|h| h.p99 as f64 / 1e6)
        .unwrap_or(0.0)
}

/// Drivers at which the sharded runtime is compared against its
/// serialized (single-stripe, `ShardMode::Deterministic`) twin: the same
/// concurrency offered to a platform that takes one global stripe per
/// tier, i.e. the pre-sharding serving runtime.
const BASELINE_DRIVERS: usize = 8;

fn sweep() {
    // One population for every point: the knee must come from load, not
    // from a different graph shape per point.
    let graph = Arc::new(SiteGraph::generate(
        &point_config(1, OPS_TOTAL, ShardMode::Parallel).graph,
    ));

    println!("\n=== C-24: site closed-loop knee (population {MEMBERS}, {OPS_TOTAL} ops/point) ===");
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "drivers",
        "ops",
        "ops/s",
        "profile p99",
        "pymk p99",
        "follow p99",
        "activity p99",
        "slo_ok"
    );
    let mut points = Vec::new();
    for drivers in DRIVER_SWEEP {
        let report = run_point(&graph, drivers, ShardMode::Parallel);
        let slo_ok = report.all_gates_pass();
        println!(
            "{:>8} {:>10} {:>12.0} {:>9.3}ms {:>9.3}ms {:>9.3}ms {:>9.3}ms {:>8}",
            drivers,
            report.ops_acked,
            report.throughput_ops_per_sec,
            p99_ms(&report, "profile_read"),
            p99_ms(&report, "pymk_read"),
            p99_ms(&report, "follow_write"),
            p99_ms(&report, "activity"),
            slo_ok
        );
        if !slo_ok {
            for failure in report.gate_failures() {
                println!("         gate {}: {}", failure.name, failure.detail);
            }
        }
        points.push((drivers, report, slo_ok));
    }

    // The knee: the highest-throughput point that still clears every SLO
    // gate. Past it, offered load only buys latency (or gate failures).
    let knee = points
        .iter()
        .filter(|(_, _, ok)| *ok)
        .max_by(|a, b| {
            a.1.throughput_ops_per_sec
                .total_cmp(&b.1.throughput_ops_per_sec)
        })
        .map(|(drivers, _, _)| *drivers)
        .expect("at least one load point must clear the gates");
    println!("knee: {knee} drivers (highest-throughput SLO-clean point)");

    // Serialized baseline: the deterministic twin (every striped lock
    // collapsed to one stripe) offered the same concurrency. This is the
    // pre-sharding runtime — the speedup of the sharded platform at the
    // same driver count is the figure of merit.
    let baseline = run_point(&graph, BASELINE_DRIVERS, ShardMode::Deterministic);
    let sharded_at_baseline = points
        .iter()
        .find(|(d, _, _)| *d == BASELINE_DRIVERS)
        .map(|(_, r, _)| r)
        .expect("sweep covers the baseline driver count");
    let speedup =
        sharded_at_baseline.throughput_ops_per_sec / baseline.throughput_ops_per_sec.max(1e-9);
    println!(
        "serialized baseline (Deterministic, {BASELINE_DRIVERS} drivers): {:.0} ops/s, follow p99 {:.3}ms",
        baseline.throughput_ops_per_sec,
        p99_ms(&baseline, "follow_write"),
    );
    println!(
        "sharded vs serialized at {BASELINE_DRIVERS} drivers: {:.2}x ({:.0} vs {:.0} ops/s)",
        speedup,
        sharded_at_baseline.throughput_ops_per_sec,
        baseline.throughput_ops_per_sec
    );

    // Cores-vs-throughput scaling across the sweep's lower points.
    let throughput_at = |drivers: usize| {
        points
            .iter()
            .find(|(d, _, _)| *d == drivers)
            .map(|(_, r, _)| r.throughput_ops_per_sec)
            .unwrap_or(0.0)
    };
    let scaling_1_to_8 = throughput_at(8) / throughput_at(1).max(1e-9);
    println!(
        "scaling 1->8 drivers: {:.2}x ({:.0} -> {:.0} ops/s)",
        scaling_1_to_8,
        throughput_at(1),
        throughput_at(8)
    );

    // Machine-readable snapshot (recorded into BENCH_site_scale.json).
    let results: Vec<String> = points
        .iter()
        .map(|(drivers, report, slo_ok)| {
            format!(
                "{{ \"drivers\": {drivers}, \"ops_acked\": {}, \"throughput_ops_per_sec\": {:.1}, \
                 \"profile_read_p99_ms\": {:.3}, \"pymk_read_p99_ms\": {:.3}, \
                 \"follow_write_p99_ms\": {:.3}, \"activity_p99_ms\": {:.3}, \
                 \"slo_ok\": {slo_ok}, \"knee\": {} }}",
                report.ops_acked,
                report.throughput_ops_per_sec,
                p99_ms(report, "profile_read"),
                p99_ms(report, "pymk_read"),
                p99_ms(report, "follow_write"),
                p99_ms(report, "activity"),
                *drivers == knee
            )
        })
        .collect();
    println!(
        "JSON: {{ \"members\": {MEMBERS}, \"ops_total\": {OPS_TOTAL}, \"seed\": {SEED}, \
         \"knee_drivers\": {knee}, \
         \"serialized_baseline\": {{ \"mode\": \"deterministic\", \"drivers\": {BASELINE_DRIVERS}, \
         \"throughput_ops_per_sec\": {:.1}, \"follow_write_p99_ms\": {:.3}, \"slo_ok\": {} }}, \
         \"speedup_vs_serialized\": {speedup:.2}, \"scaling_1_to_8\": {scaling_1_to_8:.2}, \
         \"results\": [{}] }}",
        baseline.throughput_ops_per_sec,
        p99_ms(&baseline, "follow_write"),
        baseline.all_gates_pass(),
        results.join(", ")
    );
}

fn bench_site_scale(c: &mut Criterion) {
    sweep();

    // Standard criterion report: one small end-to-end closed-loop run
    // (prepare + drive + gate evaluation) as a regression canary.
    let config = {
        let mut config = SiteBenchConfig::smoke(400, 2, 100, SEED);
        config.platform = platform_shape(ShardMode::Parallel);
        config
    };
    let graph = Arc::new(SiteGraph::generate(&config.graph));
    let mut group = c.benchmark_group("site_scale");
    group.sample_size(10);
    group.bench_function("smoke_run", |b| {
        b.iter(|| {
            let bench = SiteBench::prepare_with_graph(config.clone(), graph.clone()).unwrap();
            black_box(bench.run().unwrap())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_site_scale
}
criterion_main!(benches);
