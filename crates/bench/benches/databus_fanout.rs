//! Experiment C-23 (EXPERIMENTS.md): zero-copy relay fan-out.
//!
//! Paper claim (§III.C): the relay provides a "default serving path with
//! very low latency" and "support of hundreds of consumers per relay with
//! no additional impact on the source database". Serving cost must not
//! scale with consumers × buffered bytes.
//!
//! Two serving paths over the same buffered stream:
//!
//! * **copy** — `Relay::events_after`: the legacy eager path, which
//!   materializes an owned `Window` clone (per-change table/key
//!   allocations) for every window, for every consumer, every poll.
//! * **zero_copy** — `Relay::events_after_shared`: `Arc`-shared frozen
//!   windows; an unfiltered consumer does zero per-change work, a filtered
//!   consumer skips non-matching windows in O(1) via the ingest-time
//!   filter summary.
//!
//! Consumer counts sweep 1 → 256; filtered runs use a table filter that
//! matches half the stream exactly (whole-window match or whole-window
//! skip — the summary fast path) so the filtered comparison isolates the
//! skip index rather than trim cost.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use li_databus::{Relay, ServerFilter, Window};
use li_sqlstore::{Op, Row, RowChange, RowKey};
use std::hint::black_box;

const WINDOWS: u64 = 1_000;
const CHANGES_PER_WINDOW: usize = 4;
const PAYLOAD: usize = 256;

/// Windows alternate between two tables so `for_tables(["member"])`
/// matches exactly half the stream, always whole-window.
fn window(scn: u64) -> Window {
    let table = if scn.is_multiple_of(2) { "member" } else { "company" };
    Window {
        source_db: "primary".into(),
        scn,
        timestamp: scn,
        changes: (0..CHANGES_PER_WINDOW)
            .map(|i| RowChange {
                table: table.into(),
                key: RowKey::single(format!("k{}-{i}", scn % 512)),
                op: Op::Put(Row::new(Bytes::from(vec![b'x'; PAYLOAD]), 1)),
            })
            .collect(),
    }
}

fn loaded_relay() -> Relay {
    let relay = Relay::new("primary", usize::MAX);
    relay
        .ingest_batch((1..=WINDOWS).map(window).collect())
        .unwrap();
    relay
}

fn bench_fanout(c: &mut Criterion) {
    println!("\n=== C-23: relay fan-out, copy vs zero-copy (paper: 'hundreds of consumers') ===");
    let relay = loaded_relay();
    println!(
        "relay buffers {} windows x {CHANGES_PER_WINDOW} changes x {PAYLOAD} B (~{} MiB)",
        relay.window_count(),
        relay.buffered_bytes() >> 20
    );

    for (label, filter) in [
        ("unfiltered", ServerFilter::all()),
        ("filtered_half", ServerFilter::for_tables(["member"])),
    ] {
        let mut group = c.benchmark_group(format!("databus_fanout_{label}"));
        group.sample_size(20);
        for &consumers in &[1usize, 16, 64, 256] {
            group.throughput(Throughput::Elements(consumers as u64 * WINDOWS));
            group.bench_with_input(
                BenchmarkId::new("copy", consumers),
                &consumers,
                |b, &consumers| {
                    b.iter(|| {
                        let mut served = 0usize;
                        for _ in 0..consumers {
                            served += black_box(
                                relay.events_after(0, usize::MAX, &filter).unwrap(),
                            )
                            .len();
                        }
                        served
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new("zero_copy", consumers),
                &consumers,
                |b, &consumers| {
                    b.iter(|| {
                        let mut served = 0usize;
                        for _ in 0..consumers {
                            served += black_box(
                                relay.events_after_shared(0, usize::MAX, &filter).unwrap(),
                            )
                            .len();
                        }
                        served
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_fanout
}
criterion_main!(benches);
