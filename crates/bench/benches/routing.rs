//! Experiment C-4 (DESIGN.md): O(1) full-topology routing vs Chord-style
//! O(log N) finger-table lookups.
//!
//! Paper claim (§II.A): storing "the complete topology metadata on every
//! node instead of partial 'finger tables' as in Chord" decreases lookups
//! from O(log N) to O(1). We measure (a) routing-table lookup time and
//! (b) the number of *network hops* a Chord lookup would take — each hop
//! is an RPC in a real deployment, so hops dominate real latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use li_commons::ring::{HashRing, NodeId};
use li_voldemort::routing::ChordBaseline;
use std::hint::black_box;

fn node_ids(n: u16) -> Vec<NodeId> {
    (0..n).map(NodeId).collect()
}

fn bench_routing(c: &mut Criterion) {
    println!("\n=== C-4: O(1) consistent-hash routing vs Chord O(log N) ===");
    println!("paper: full topology metadata -> O(1); Chord finger tables -> O(log N) hops\n");
    println!("{:>8} | {:>14} | {:>16}", "nodes", "chord avg hops", "voldemort hops");

    let mut group = c.benchmark_group("routing_chord_vs_o1");
    for &n in &[8u16, 64, 256, 1024] {
        let ring = HashRing::balanced(u32::from(n) * 4, &node_ids(n)).unwrap();
        let chord = ChordBaseline::new(&node_ids(n));

        // Hop-count series (the paper's asymptotic claim).
        let keys: Vec<Vec<u8>> = (0..2000)
            .map(|i| format!("member:{i}").into_bytes())
            .collect();
        let total_hops: u64 = keys.iter().map(|k| u64::from(chord.lookup(k).1)).sum();
        let avg_hops = total_hops as f64 / keys.len() as f64;
        println!("{n:>8} | {avg_hops:>14.2} | {:>16}", "0 (local)");

        group.bench_with_input(BenchmarkId::new("voldemort_o1", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let key = &keys[i % keys.len()];
                i += 1;
                black_box(ring.preference_list(key, 3).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("chord_logn", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let key = &keys[i % keys.len()];
                i += 1;
                black_box(chord.lookup(key))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_routing
}
criterion_main!(benches);
