//! Experiments C-9, C-10, C-11 (DESIGN.md): Espresso serving, local
//! transactions, and failover.
//!
//! Paper context (§IV): document GETs are "direct lookup in the local data
//! store"; "queries first consult a local secondary index then return the
//! matching documents"; intra-resource multi-table updates are atomic;
//! failover promotes a drained slave.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use li_commons::ring::NodeId;
use li_commons::schema::{Field, FieldType, Record, RecordSchema, Value};
use li_espresso::{DatabaseSchema, EspressoCluster, TableSchema};
use li_sqlstore::RowKey;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn music(partitions: u32, replication: usize) -> DatabaseSchema {
    DatabaseSchema::new("Music", partitions, replication)
        .with_table(
            TableSchema::new("Album", ["artist", "album"]),
            RecordSchema::new(
                "Album",
                1,
                vec![
                    Field::new("year", FieldType::Long).indexed(),
                    Field::new("genre", FieldType::Str).indexed(),
                ],
            )
            .unwrap(),
        )
        .unwrap()
        .with_table(
            TableSchema::new("Song", ["artist", "album", "song"]),
            RecordSchema::new(
                "Song",
                1,
                vec![Field::new("lyrics", FieldType::Str).indexed()],
            )
            .unwrap(),
        )
        .unwrap()
}

fn seeded_cluster(artists: u64) -> Arc<EspressoCluster> {
    let cluster = EspressoCluster::new(3).unwrap();
    cluster.create_database(music(12, 2)).unwrap();
    let genres = ["rock", "soul", "jazz", "rap", "pop"];
    for a in 0..artists {
        let record = Record::new()
            .with("year", Value::Long(1960 + (a % 60) as i64))
            .with("genre", Value::Str(genres[(a % 5) as usize].into()));
        cluster
            .put(
                "Music",
                "Album",
                RowKey::new([format!("artist-{a}"), "debut".to_string()]),
                &record,
            )
            .unwrap();
    }
    cluster
}

fn bench_document_ops(c: &mut Criterion) {
    println!("\n=== Espresso document serving (router -> master storage node) ===");
    let cluster = seeded_cluster(2_000);
    let mut group = c.benchmark_group("espresso_serving");
    group.throughput(Throughput::Elements(1));
    let mut i = 0u64;
    group.bench_function("get_document", |b| {
        b.iter(|| {
            let key = RowKey::new([format!("artist-{}", i % 2_000), "debut".to_string()]);
            i += 1;
            black_box(cluster.get("Music", "Album", &key).unwrap())
        })
    });
    let mut j = 0u64;
    group.bench_function("put_document", |b| {
        b.iter(|| {
            let record = Record::new()
                .with("year", Value::Long(2000))
                .with("genre", Value::Str("electronic".into()));
            let key = RowKey::new([format!("artist-{}", j % 2_000), "bench".to_string()]);
            j += 1;
            black_box(cluster.put("Music", "Album", key, &record).unwrap())
        })
    });
    group.finish();
}

fn bench_index_query(c: &mut Criterion) {
    println!("\n=== C-9: local secondary index queries (index consult + local fetch) ===");
    println!("collection resource with 3000 documents; the query selects ~1%\n");
    // One prolific artist: a large collection under one resource_id — the
    // access pattern local indexes exist for.
    let cluster = seeded_cluster(10);
    for i in 0..3_000u64 {
        let genre = if i % 100 == 0 { "rare" } else { "common" };
        let record = Record::new()
            .with("year", Value::Long(1960 + (i % 60) as i64))
            .with("genre", Value::Str(genre.into()));
        cluster
            .put(
                "Music",
                "Album",
                RowKey::new(["Prolific".to_string(), format!("album-{i:05}")]),
                &record,
            )
            .unwrap();
    }
    let mut group = c.benchmark_group("espresso_index");
    group.sample_size(20);
    group.bench_function("indexed_selective_query", |b| {
        b.iter(|| {
            let hits = cluster
                .get_uri("/Music/Album/Prolific?query=genre:rare")
                .unwrap();
            assert_eq!(hits.len(), 30);
            black_box(hits)
        })
    });
    // Baseline: fetch the whole collection and filter client-side.
    group.bench_function("unindexed_scan_equivalent", |b| {
        b.iter(|| {
            let docs = cluster.get_uri("/Music/Album/Prolific").unwrap();
            black_box(
                docs.into_iter()
                    .filter(|(_, r)| r.get("genre") == Some(&Value::Str("rare".into())))
                    .count(),
            )
        })
    });
    group.finish();
}

fn bench_transactions(c: &mut Criterion) {
    println!("\n=== C-10: intra-resource multi-table transactions ===");
    let cluster = seeded_cluster(100);
    let mut group = c.benchmark_group("espresso_txn");
    group.throughput(Throughput::Elements(1));
    let mut i = 0u64;
    group.bench_function("album_plus_2_songs_atomic", |b| {
        b.iter(|| {
            let artist = format!("artist-{}", i % 100);
            let album = format!("txn-album-{i}");
            i += 1;
            let docs = vec![
                (
                    "Album".to_string(),
                    RowKey::new([artist.clone(), album.clone()]),
                    Record::new()
                        .with("year", Value::Long(2012))
                        .with("genre", Value::Str("icde".into())),
                ),
                (
                    "Song".to_string(),
                    RowKey::new([artist.clone(), album.clone(), "one".to_string()]),
                    Record::new().with("lyrics", Value::Str("la la".into())),
                ),
                (
                    "Song".to_string(),
                    RowKey::new([artist.clone(), album.clone(), "two".to_string()]),
                    Record::new().with("lyrics", Value::Str("do re mi".into())),
                ),
            ];
            black_box(cluster.post_transactional("Music", docs).unwrap())
        })
    });
    group.finish();
}

fn bench_failover(c: &mut Criterion) {
    println!("\n=== C-11: failover time (drain relay -> promote slave) ===");
    // Measured as wall time of crash_node() including the Helix rebalance
    // and relay drains — not a criterion loop (failover is one-shot).
    for &docs in &[100u64, 1_000, 5_000] {
        let cluster = seeded_cluster(docs);
        cluster.pump_replication().unwrap();
        let (_, master) = cluster.route("Music", "artist-0").unwrap();
        let t = Instant::now();
        cluster.crash_node(master).unwrap();
        let elapsed = t.elapsed();
        let (_, new_master) = cluster.route("Music", "artist-0").unwrap();
        assert_ne!(master, new_master);
        println!("docs={docs:>6}: failover (rebalance + drains) took {elapsed:?}");
    }
    // Keep criterion happy with a small measured surrogate: route lookups
    // against the post-failover view.
    let cluster = seeded_cluster(100);
    cluster.pump_replication().unwrap();
    cluster.crash_node(NodeId(0)).unwrap();
    let mut group = c.benchmark_group("espresso_failover");
    let mut i = 0u64;
    group.bench_function("route_after_failover", |b| {
        b.iter(|| {
            let artist = format!("artist-{}", i % 100);
            i += 1;
            black_box(cluster.route("Music", &artist).unwrap())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_document_ops, bench_index_query, bench_transactions, bench_failover
}
criterion_main!(benches);
