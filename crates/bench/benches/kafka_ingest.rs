//! Experiment C-26: "How Fast Can We Insert?" — the group-commit ingest
//! sweep.
//!
//! §V's produce path, stress-tested the way the paper's evaluation asks
//! of every store. Concurrent producers hit a 3-broker replicated
//! cluster two ways:
//!
//! * **legacy** — `ReplicatedCluster::produce`: every producer takes the
//!   partition log lock itself, one append + one flush check + one
//!   wakeup per request (the Leader-ack contract).
//! * **grouped** — `ReplicatedCluster::produce_with_ack`: producers
//!   enqueue pre-encoded frame groups into the partition's
//!   [`GroupQueue`]; one drainer commits every pending group with a
//!   single log-lock acquisition (`append_frames_multi`), and for
//!   `AckMode::FullIsr` a single replication ship covers the whole
//!   batch.
//!
//! The matrix sweeps {producers} × {batch size} × {ack mode} ×
//! {partition count}, recording p50/p99 produce latency and messages/s.
//! The headline row (Leader ack, batch 16, 4 partitions) also reports
//! the saturation throughput and the knee — the smallest producer count
//! reaching 90% of it. The host is single-core, so the grouped win must
//! come from doing *less work per message* under contention (fewer lock
//! acquisitions, flush checks, and condvar broadcasts), not from
//! parallel appends. Snapshot lives in BENCH_kafka_ingest.json.

use criterion::{criterion_group, criterion_main, Criterion};
use li_commons::metrics::MetricsRegistry;
use li_commons::shard::ShardMode;
use li_commons::sim::RealClock;
use li_kafka::log::LogConfig;
use li_kafka::{AckMode, KafkaCluster, MessageSet, ReplicatedCluster};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Messages per matrix cell (split across producers; small enough that
/// the 120-cell sweep stays in seconds, large enough to populate p99).
const TARGET_MESSAGES: usize = 3_072;
const PRODUCERS: [usize; 5] = [1, 2, 4, 8, 16];
const BATCHES: [usize; 3] = [1, 16, 128];
const PARTITION_COUNTS: [u32; 2] = [1, 4];
/// The headline row used for saturation/knee analysis.
const HEADLINE_BATCH: usize = 16;
const HEADLINE_PARTITIONS: u32 = 4;
/// Modeled stable-storage latency per flush (a cheap SSD fsync). The
/// in-memory log "fsyncs" for free, which would hide exactly the cost
/// group commit amortizes.
const FLUSH_LATENCY: Duration = Duration::from_micros(40);

#[derive(Debug, Clone, Copy)]
struct CellResult {
    messages: usize,
    throughput: f64,
    p50_us: f64,
    p99_us: f64,
}

fn ack_label(ack: AckMode) -> &'static str {
    match ack {
        AckMode::None => "none",
        AckMode::Leader => "leader",
        AckMode::FullIsr => "full_isr",
    }
}

fn fresh_cluster(partitions: u32) -> Arc<ReplicatedCluster> {
    let config = LogConfig {
        // Flush-per-request durability with a modeled stable-storage
        // latency: this is the regime group commit exists for. Legacy
        // produce pays the flush on every request; the grouped drainer
        // pays it once per commit group — and because the "fsync" sleep
        // yields the CPU, producers queue behind it and groups actually
        // form, even on a single-core host.
        flush_interval_messages: 1,
        flush_interval: Duration::from_secs(3600),
        flush_latency: FLUSH_LATENCY,
        ..LogConfig::default()
    };
    let cluster = KafkaCluster::with_shard_mode(
        3,
        config,
        Arc::new(RealClock::new()),
        &MetricsRegistry::new(),
        ShardMode::Parallel,
    )
    .unwrap();
    let rc = Arc::new(ReplicatedCluster::new(cluster));
    rc.create_topic("ingest", partitions, 3).unwrap();
    rc
}

fn percentile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx] as f64 / 1_000.0
}

/// Runs one matrix cell: `producers` threads each publish batches of
/// `batch` messages round-robin over `partitions`, through either the
/// grouped queue (`Some(ack)`) or the legacy per-request path (`None`).
fn run_cell(
    producers: usize,
    batch: usize,
    partitions: u32,
    ack: Option<AckMode>,
) -> CellResult {
    let rc = fresh_cluster(partitions);
    let batches_per_producer = (TARGET_MESSAGES / (producers * batch)).max(1);
    let messages = producers * batches_per_producer * batch;

    let started = Instant::now();
    let handles: Vec<_> = (0..producers)
        .map(|t| {
            let rc = rc.clone();
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(batches_per_producer);
                for i in 0..batches_per_producer {
                    let partition = ((t + i) as u32) % partitions;
                    let payloads: Vec<String> = (0..batch)
                        .map(|m| format!("pageview member={t} seq={i} msg={m} url=/in/profile"))
                        .collect();
                    let set = MessageSet::from_payloads(payloads);
                    let call = Instant::now();
                    match ack {
                        Some(ack) => {
                            rc.produce_with_ack("ingest", partition, &set, ack).unwrap();
                        }
                        None => {
                            rc.produce("ingest", partition, &set).unwrap();
                        }
                    }
                    latencies.push(call.elapsed().as_nanos() as u64);
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::new();
    for handle in handles {
        latencies.extend(handle.join().unwrap());
    }
    rc.flush_ingest();
    let elapsed = started.elapsed().as_secs_f64();

    latencies.sort_unstable();
    CellResult {
        messages,
        throughput: messages as f64 / elapsed.max(1e-9),
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
    }
}

fn sweep() {
    println!(
        "\n=== C-26: group-commit ingest sweep ({TARGET_MESSAGES} msgs/cell, 3 brokers, RF=3) ==="
    );
    println!(
        "{:>8} {:>9} {:>6} {:>11} {:>9} {:>12} {:>10} {:>10}",
        "path", "ack", "batch", "partitions", "producers", "msgs/s", "p50", "p99"
    );

    // rows: (path, ack label, batch, partitions, producers, result)
    let mut rows: Vec<(String, String, usize, u32, usize, CellResult)> = Vec::new();
    for &partitions in &PARTITION_COUNTS {
        for &batch in &BATCHES {
            for &producers in &PRODUCERS {
                for ack in [AckMode::None, AckMode::Leader, AckMode::FullIsr] {
                    let result = run_cell(producers, batch, partitions, Some(ack));
                    println!(
                        "{:>8} {:>9} {:>6} {:>11} {:>9} {:>12.0} {:>8.1}us {:>8.1}us",
                        "grouped",
                        ack_label(ack),
                        batch,
                        partitions,
                        producers,
                        result.throughput,
                        result.p50_us,
                        result.p99_us
                    );
                    rows.push((
                        "grouped".into(),
                        ack_label(ack).into(),
                        batch,
                        partitions,
                        producers,
                        result,
                    ));
                }
                // Legacy baseline: per-request appends, Leader contract.
                let result = run_cell(producers, batch, partitions, None);
                println!(
                    "{:>8} {:>9} {:>6} {:>11} {:>9} {:>12.0} {:>8.1}us {:>8.1}us",
                    "legacy",
                    "leader",
                    batch,
                    partitions,
                    producers,
                    result.throughput,
                    result.p50_us,
                    result.p99_us
                );
                rows.push((
                    "legacy".into(),
                    "leader".into(),
                    batch,
                    partitions,
                    producers,
                    result,
                ));
            }
        }
    }

    let throughput_of = |path: &str, ack: &str, batch: usize, partitions: u32, producers: usize| {
        rows.iter()
            .find(|(p, a, b, pt, pr, _)| {
                p == path && a == ack && *b == batch && *pt == partitions && *pr == producers
            })
            .map(|(_, _, _, _, _, r)| r.throughput)
            .unwrap_or(0.0)
    };

    // Saturation + knee on the headline grouped Leader row.
    let headline: Vec<(usize, f64)> = PRODUCERS
        .iter()
        .map(|&p| {
            (
                p,
                throughput_of("grouped", "leader", HEADLINE_BATCH, HEADLINE_PARTITIONS, p),
            )
        })
        .collect();
    let saturation = headline.iter().map(|&(_, t)| t).fold(0.0f64, f64::max);
    let knee = headline
        .iter()
        .find(|&&(_, t)| t >= 0.9 * saturation)
        .map(|&(p, _)| p)
        .unwrap_or(1);
    println!(
        "saturation (grouped/leader, batch {HEADLINE_BATCH}, {HEADLINE_PARTITIONS} partitions): \
         {saturation:.0} msgs/s; knee: {knee} producers (first within 90%)"
    );

    // The tentpole comparison: at high producer counts the grouped path
    // must beat per-request appends on the Leader-ack row.
    for producers in [8usize, 16] {
        for &batch in &BATCHES {
            let grouped =
                throughput_of("grouped", "leader", batch, HEADLINE_PARTITIONS, producers);
            let legacy = throughput_of("legacy", "leader", batch, HEADLINE_PARTITIONS, producers);
            println!(
                "grouped vs legacy @ {producers} producers, batch {batch}: {:.2}x \
                 ({grouped:.0} vs {legacy:.0} msgs/s)",
                grouped / legacy.max(1e-9)
            );
        }
    }
    let grouped_8 = BATCHES
        .iter()
        .any(|&b| {
            throughput_of("grouped", "leader", b, HEADLINE_PARTITIONS, 8)
                > throughput_of("legacy", "leader", b, HEADLINE_PARTITIONS, 8)
        });
    assert!(
        grouped_8,
        "group commit must beat per-request appends at 8 producers on some Leader-ack row"
    );

    // Machine-readable snapshot (recorded into BENCH_kafka_ingest.json).
    let json_rows: Vec<String> = rows
        .iter()
        .map(|(path, ack, batch, partitions, producers, r)| {
            format!(
                "{{ \"path\": \"{path}\", \"ack\": \"{ack}\", \"batch\": {batch}, \
                 \"partitions\": {partitions}, \"producers\": {producers}, \
                 \"messages\": {}, \"throughput_msgs_per_sec\": {:.0}, \
                 \"p50_us\": {:.1}, \"p99_us\": {:.1} }}",
                r.messages, r.throughput, r.p50_us, r.p99_us
            )
        })
        .collect();
    println!(
        "JSON: {{ \"messages_per_cell\": {TARGET_MESSAGES}, \
         \"saturation_msgs_per_sec\": {saturation:.0}, \"knee_producers\": {knee}, \
         \"results\": [{}] }}",
        json_rows.join(", ")
    );
}

fn bench_kafka_ingest(c: &mut Criterion) {
    sweep();

    // Standard criterion report: the headline cell both ways, as a
    // regression canary.
    let mut group = c.benchmark_group("kafka_ingest");
    group.sample_size(10);
    group.bench_function("grouped_leader_p8_b16", |b| {
        b.iter(|| black_box(run_cell(8, HEADLINE_BATCH, HEADLINE_PARTITIONS, Some(AckMode::Leader))))
    });
    group.bench_function("legacy_leader_p8_b16", |b| {
        b.iter(|| black_box(run_cell(8, HEADLINE_BATCH, HEADLINE_PARTITIONS, None)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_kafka_ingest
}
criterion_main!(benches);
