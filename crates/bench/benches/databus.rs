//! Experiments C-6, F-III.1/2, C-7, F-III.3 (DESIGN.md): Databus.
//!
//! Paper claims (§III.C):
//! * C-6 — relay default serving path "<1 ms" with GB-scale buffering.
//! * F-III.2 — "support of hundreds of consumers per relay with no
//!   additional impact on the source database".
//! * C-7 — consolidated delta: "'fast playback' of time" vs full replay.
//! * F-III.3 — bootstrap snapshot + delta query paths.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use li_databus::{BootstrapServer, LogShippingAdapter, Relay, ServerFilter, Window};
use li_sqlstore::{BinlogEntry, Database, Op, Row, RowChange, RowKey};
use std::hint::black_box;
use std::sync::Arc;

fn window(scn: u64, keys: u64, bytes: usize) -> Window {
    Window {
        source_db: "primary".into(),
        scn,
        timestamp: scn,
        changes: vec![RowChange {
            table: "member".into(),
            key: RowKey::single(format!("k{}", scn % keys)),
            op: Op::Put(Row::new(Bytes::from(vec![b'x'; bytes]), 1)),
        }],
    }
}

fn bench_relay_serving(c: &mut Criterion) {
    println!("\n=== C-6: relay in-memory buffer serving (paper: <1 ms default path) ===");
    let relay = Relay::new("primary", 64 << 20);
    for scn in 1..=100_000u64 {
        relay.ingest(window(scn, 10_000, 200)).unwrap();
    }
    println!(
        "relay buffers {} windows, ~{} MB",
        relay.window_count(),
        relay.buffered_bytes() >> 20
    );
    let mut group = c.benchmark_group("databus_relay_latency");
    group.throughput(Throughput::Elements(64));
    let newest = relay.newest_scn();
    let mut cursor = 0u64;
    group.bench_function("serve_64_windows_from_scn", |b| {
        b.iter(|| {
            cursor = (cursor + 977) % (newest - 64);
            // A caught-up-ish consumer pulling a 64-window batch.
            let from = relay.oldest_scn().max(cursor);
            black_box(relay.events_after(from, 64, &ServerFilter::all()).unwrap())
        })
    });
    group.finish();
}

fn bench_consumer_scaling(c: &mut Criterion) {
    println!("\n=== F-III.1/2: consumer fan-out is absorbed by the relay, not the source ===");
    println!("{:>10} | {:>18} | {:>22}", "consumers", "relay reads", "source-db windows");
    let mut group = c.benchmark_group("databus_relay_scaling");
    for &consumers in &[1usize, 16, 64, 256] {
        let db = Database::new("primary");
        db.create_table("member").unwrap();
        let relay = Arc::new(Relay::new("primary", 16 << 20));
        LogShippingAdapter::attach(&db, relay.clone());
        for i in 0..500u64 {
            db.put_one("member", RowKey::single(format!("k{i}")), &b"v"[..], 1)
                .unwrap();
        }
        let ingested_before = relay.windows_ingested();
        group.bench_with_input(
            BenchmarkId::new("full_catchup_x_consumers", consumers),
            &consumers,
            |b, &consumers| {
                b.iter(|| {
                    for consumer in 0..consumers {
                        // Each consumer reads the full stream from scn 0.
                        let filter = ServerFilter::for_partition(consumers as u32, consumer as u32);
                        black_box(relay.events_after(0, usize::MAX, &filter).unwrap());
                    }
                })
            },
        );
        assert_eq!(
            relay.windows_ingested(),
            ingested_before,
            "consumers must not touch the source"
        );
        println!(
            "{consumers:>10} | {:>18} | {:>22}",
            relay.reads_served(),
            relay.windows_ingested()
        );
    }
    group.finish();
}

fn bench_consolidated_delta(c: &mut Criterion) {
    println!("\n=== C-7: consolidated delta vs full replay ('fast playback') ===");
    // 100K updates concentrated on 1K keys: the delta collapses 100x.
    let bootstrap = BootstrapServer::new();
    const UPDATES: u64 = 100_000;
    const HOT_KEYS: u64 = 1_000;
    for scn in 1..=UPDATES {
        bootstrap.ingest(window(scn, HOT_KEYS, 64));
    }
    let delta = bootstrap.consolidated_delta(0, &ServerFilter::all());
    println!(
        "raw events after T: {} -> consolidated: {} ({}x playback speedup)",
        delta.raw_events,
        delta.changes.len(),
        delta.raw_events / delta.changes.len().max(1)
    );

    let mut group = c.benchmark_group("databus_consolidated_delta");
    group.sample_size(10);
    group.bench_function("consolidated_delta", |b| {
        b.iter(|| black_box(bootstrap.consolidated_delta(0, &ServerFilter::all())))
    });
    // The replay alternative: a consumer applying every raw event.
    let relay = Relay::new("primary", usize::MAX);
    for scn in 1..=UPDATES {
        relay.ingest(window(scn, HOT_KEYS, 64)).unwrap();
    }
    group.bench_function("full_replay", |b| {
        b.iter(|| {
            let mut state = std::collections::HashMap::new();
            let windows = relay.events_after(0, usize::MAX, &ServerFilter::all()).unwrap();
            for w in &windows {
                for ch in &w.changes {
                    match &ch.op {
                        Op::Put(row) => {
                            state.insert(ch.key.clone(), row.value.clone());
                        }
                        Op::Delete => {
                            state.remove(&ch.key);
                        }
                    }
                }
            }
            black_box(state.len())
        })
    });
    group.finish();
}

fn bench_bootstrap_queries(c: &mut Criterion) {
    println!("\n=== F-III.3: bootstrap server query paths (snapshot at U / delta since T) ===");
    let bootstrap = BootstrapServer::new();
    for scn in 1..=50_000u64 {
        bootstrap.ingest(Window::from_binlog(
            "primary",
            &BinlogEntry {
                scn,
                timestamp: scn,
                changes: vec![RowChange {
                    table: "member".into(),
                    key: RowKey::single(format!("k{}", scn % 5_000)),
                    op: Op::Put(Row::new(Bytes::from(format!("v{scn}")), 1)),
                }],
            },
        ));
    }
    bootstrap.apply_log();
    let mut group = c.benchmark_group("databus_bootstrap");
    group.sample_size(10);
    group.bench_function("consistent_snapshot", |b| {
        b.iter(|| black_box(bootstrap.snapshot(&ServerFilter::all()).rows.len()))
    });
    group.bench_function("delta_since_90pct", |b| {
        b.iter(|| black_box(bootstrap.consolidated_delta(45_000, &ServerFilter::all()).changes.len()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_relay_serving, bench_consumer_scaling, bench_consolidated_delta, bench_bootstrap_queries
}
criterion_main!(benches);
