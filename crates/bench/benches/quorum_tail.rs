//! Experiment C-22 (DESIGN.md / EXPERIMENTS.md): quorum tail latency —
//! serial walk vs parallel fan-out vs hedged reads.
//!
//! Paper §II.B: Voldemort reads are quorum reads against the key's
//! preference list. The legacy client walked replicas *serially*, so one
//! slow replica set the whole request's critical path. The fan-out
//! executor contacts replicas concurrently and completes at R acks; a
//! hedged read keeps the contact budget at R and launches one backup
//! request only after a quantile-derived delay (Dean & Barroso's
//! "tail at scale" scheme).
//!
//! Workload: a 6-node cluster (N=3, R=2, W=2), client→replica links at
//! 100µs, with **one replica that stalls at 2ms for a seeded 10% of
//! requests** (a GC-pause / hiccup model — rare enough that the latency
//! histogram's p95, which sets the hedge delay, stays fast). All three
//! modes replay the identical stall schedule with real sleeps
//! (`simulate_latency`), so completion order is decided by link latency.
//!
//! * **serial** — `FanOutMode::Serial`, quorum width: the legacy path.
//! * **parallel** — `FanOutMode::Parallel`, `ReadFanOut::All`: contact
//!   every replica, return at R. Masks the stall at +N/R× replica load.
//! * **hedged** — `FanOutMode::Parallel`, quorum width + `HedgeConfig`:
//!   masks the stall for ~the price of the stall rate in extra load.
//!
//! Acceptance: parallel p99 ≥ 2× better than serial; hedged p999 ≥ 2×
//! better than serial with ≤ ~5% mean replica load increase over serial.
//! Snapshot lives in BENCH_quorum_tail.json.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use li_commons::ring::{HashRing, NodeId};
use li_commons::sim::{SimClock, SimNetwork};
use li_voldemort::{
    FanOutMode, HedgeConfig, QuorumConfig, ReadFanOut, StoreClient, StoreDef, VoldemortCluster,
};
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

const NODES: u16 = 6;
const KEYS: usize = 64;
const WARMUP: usize = 300;
const SAMPLES: usize = 4000;
const BASE_LATENCY: Duration = Duration::from_micros(100);
const STALL_LATENCY: Duration = Duration::from_millis(2);
const STALL_PROBABILITY: f64 = 0.10;
const SLOW: NodeId = NodeId(0);
const STALL_SEED: u64 = 11;

fn build_cluster() -> (Arc<VoldemortCluster>, Vec<Vec<u8>>) {
    let ids: Vec<NodeId> = (0..NODES).map(NodeId).collect();
    let ring = HashRing::balanced(16, &ids).unwrap();
    let cluster = VoldemortCluster::with_parts(
        ring,
        SimNetwork::reliable(),
        Arc::new(SimClock::new()),
    )
    .unwrap();
    cluster
        .add_store(StoreDef::read_write("s").with_quorum(3, 2, 2))
        .unwrap();
    for node in &ids {
        cluster
            .network()
            .set_link_latency(StoreClient::CLIENT_NODE, *node, BASE_LATENCY);
    }
    // Seed every key on its full preference list before any timing: the
    // Deterministic mode replicates the whole wave inline.
    let writer = cluster.client("s").unwrap();
    let keys: Vec<Vec<u8>> = (0..KEYS).map(|j| format!("q{j}").into_bytes()).collect();
    for key in &keys {
        writer
            .put_initial(key, Bytes::from(format!("v-{}", keys.len())))
            .unwrap();
    }
    (cluster, keys)
}

struct ModeStats {
    label: &'static str,
    p50: Duration,
    p99: Duration,
    p999: Duration,
    mean: Duration,
    /// Mean replica `get` calls per client read (includes stragglers and
    /// hedge backups — the real work replicas perform).
    load_per_read: f64,
    hedges: u64,
    hedge_wins: u64,
}

fn quantile(sorted: &[Duration], q: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs one mode over the shared cluster, replaying the seeded stall
/// schedule, and returns its latency/load profile.
fn run_mode(
    cluster: &Arc<VoldemortCluster>,
    keys: &[Vec<u8>],
    label: &'static str,
    config: QuorumConfig,
) -> ModeStats {
    let client = cluster.client("s").unwrap().with_quorum_config(config);
    let mut rng = rand::rngs::StdRng::seed_from_u64(STALL_SEED);
    let stall = |on: bool| {
        cluster.network().set_link_latency(
            StoreClient::CLIENT_NODE,
            SLOW,
            if on { STALL_LATENCY } else { BASE_LATENCY },
        );
    };
    // Warm the replica-latency histogram (it derives the hedge delay) and
    // the pool before timing anything.
    for i in 0..WARMUP {
        stall(rng.random::<f64>() < STALL_PROBABILITY);
        client.get(&keys[i % keys.len()]).unwrap();
    }
    cluster.fan_out_pool().wait_idle();

    let before = cluster.metrics().snapshot();
    let mut latencies: Vec<Duration> = Vec::with_capacity(SAMPLES);
    for i in 0..SAMPLES {
        stall(rng.random::<f64>() < STALL_PROBABILITY);
        let key = &keys[i % keys.len()];
        let start = Instant::now();
        black_box(client.get(key).unwrap());
        latencies.push(start.elapsed());
    }
    stall(false);
    cluster.fan_out_pool().wait_idle();
    let delta = cluster.metrics().snapshot().delta(&before);

    let replica_gets: u64 = (0..NODES)
        .filter_map(|i| delta.counter(&format!("voldemort.node{i}.get.count")))
        .sum();
    let mean = latencies.iter().sum::<Duration>() / SAMPLES as u32;
    latencies.sort();
    ModeStats {
        label,
        p50: quantile(&latencies, 0.50),
        p99: quantile(&latencies, 0.99),
        p999: quantile(&latencies, 0.999),
        mean,
        load_per_read: replica_gets as f64 / SAMPLES as f64,
        hedges: delta.counter("voldemort.client.get.hedged").unwrap_or(0),
        hedge_wins: delta.counter("voldemort.client.get.hedge_won").unwrap_or(0),
    }
}

fn bench_quorum_tail(c: &mut Criterion) {
    println!("\n=== C-22: quorum read tail latency, one intermittently slow replica (§II.B) ===");
    println!(
        "{NODES} nodes, N=3 R=2 W=2, {KEYS} keys, links {BASE_LATENCY:?}, \
         node {} stalls at {STALL_LATENCY:?} for {:.0}% of reads (seed {STALL_SEED})\n",
        SLOW.0,
        STALL_PROBABILITY * 100.0
    );
    let (cluster, keys) = build_cluster();

    let serial = run_mode(
        &cluster,
        &keys,
        "serial",
        QuorumConfig {
            mode: FanOutMode::Serial,
            simulate_latency: true,
            ..QuorumConfig::default()
        },
    );
    let parallel = run_mode(
        &cluster,
        &keys,
        "parallel",
        QuorumConfig {
            mode: FanOutMode::Parallel,
            read_fan_out: ReadFanOut::All,
            simulate_latency: true,
            ..QuorumConfig::default()
        },
    );
    let hedged = run_mode(
        &cluster,
        &keys,
        "hedged",
        QuorumConfig {
            mode: FanOutMode::Parallel,
            hedge: Some(HedgeConfig {
                // 4x the base link latency: far enough above real-sleep
                // scheduling jitter that hedges fire on genuine stalls, not
                // on thread wake-up noise; still 5x under the 2ms stall.
                min_delay: Duration::from_micros(400),
                ..HedgeConfig::default()
            }),
            simulate_latency: true,
            ..QuorumConfig::default()
        },
    );

    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8} {:>10}",
        "mode", "p50", "p99", "p999", "mean", "load/rd", "hedges", "hedge_won"
    );
    for stats in [&serial, &parallel, &hedged] {
        println!(
            "{:<10} {:>10.1?} {:>10.1?} {:>10.1?} {:>10.1?} {:>8.2} {:>8} {:>10}",
            stats.label,
            stats.p50,
            stats.p99,
            stats.p999,
            stats.mean,
            stats.load_per_read,
            stats.hedges,
            stats.hedge_wins
        );
    }
    println!(
        "\nacceptance: parallel p99 {:.1}x serial (need >= 2), hedged p999 {:.1}x serial \
         (need >= 2) at {:+.1}% replica load vs serial (need <= ~5%)\n",
        serial.p99.as_secs_f64() / parallel.p99.as_secs_f64().max(1e-9),
        serial.p999.as_secs_f64() / hedged.p999.as_secs_f64().max(1e-9),
        (hedged.load_per_read / serial.load_per_read - 1.0) * 100.0
    );
    // Machine-readable snapshot for BENCH_quorum_tail.json.
    print!("{{\"results\":[");
    for (i, stats) in [&serial, &parallel, &hedged].iter().enumerate() {
        if i > 0 {
            print!(",");
        }
        print!(
            "{{\"mode\":\"{}\",\"p50_us\":{:.1},\"p99_us\":{:.1},\"p999_us\":{:.1},\
             \"mean_us\":{:.1},\"replica_gets_per_read\":{:.3},\"hedges\":{},\"hedge_wins\":{}}}",
            stats.label,
            stats.p50.as_secs_f64() * 1e6,
            stats.p99.as_secs_f64() * 1e6,
            stats.p999.as_secs_f64() * 1e6,
            stats.mean.as_secs_f64() * 1e6,
            stats.load_per_read,
            stats.hedges,
            stats.hedge_wins
        );
    }
    println!("]}}\n");

    // A small criterion group so the three paths also show up in the
    // standard report (fast key, no stalls — steady-state overhead only).
    let mut group = c.benchmark_group("quorum_tail");
    group.sample_size(20);
    let fast_key = keys
        .iter()
        .find(|k| {
            !cluster
                .ring()
                .preference_list(k, 3)
                .unwrap()
                .contains(&SLOW)
        })
        .cloned()
        .unwrap_or_else(|| keys[0].clone());
    for (label, config) in [
        (
            "serial",
            QuorumConfig {
                mode: FanOutMode::Serial,
                simulate_latency: true,
                ..QuorumConfig::default()
            },
        ),
        (
            "parallel_all",
            QuorumConfig {
                mode: FanOutMode::Parallel,
                read_fan_out: ReadFanOut::All,
                simulate_latency: true,
                ..QuorumConfig::default()
            },
        ),
        (
            "hedged",
            QuorumConfig {
                mode: FanOutMode::Parallel,
                hedge: Some(HedgeConfig {
                    min_delay: Duration::from_micros(400),
                    ..HedgeConfig::default()
                }),
                simulate_latency: true,
                ..QuorumConfig::default()
            },
        ),
    ] {
        let client = cluster.client("s").unwrap().with_quorum_config(config);
        group.bench_function(label, |b| {
            b.iter(|| black_box(client.get(&fast_key).unwrap()))
        });
    }
    group.finish();
    cluster.fan_out_pool().wait_idle();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_quorum_tail
}
criterion_main!(benches);
