//! Ablation studies on the design choices the paper motivates but does not
//! quantify — what do N/R/W, the relay's buffer budget, and the broker's
//! flush policy actually cost?
//!
//! * **A-1 quorum sweep** — Voldemort put/get latency as (N, R, W) varies:
//!   the price of stronger consistency (`R+W > N`).
//! * **A-2 relay buffer budget** — how far behind a Databus consumer can
//!   fall before it must bootstrap, as a function of buffer bytes.
//! * **A-3 flush interval** — Kafka's throughput/visibility-latency
//!   trade-off ("we flush the segment files to disk only after a
//!   configurable number of messages").

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use li_databus::{Relay, ServerFilter, Window};
use li_kafka::log::{LogConfig, PartitionLog};
use li_kafka::Message;
use li_sqlstore::{Op, Row, RowChange, RowKey};
use li_voldemort::{StoreDef, VoldemortCluster};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn bench_quorum_sweep(c: &mut Criterion) {
    println!("\n=== A-1: quorum parameter sweep (N, R, W) ===");
    println!("R+W > N gives read-your-writes; the sweep shows its latency price\n");
    let mut group = c.benchmark_group("ablation_quorum");
    group.throughput(Throughput::Elements(1));
    for &(n, r, w) in &[(1usize, 1usize, 1usize), (2, 1, 1), (3, 1, 1), (3, 2, 2), (3, 3, 3)] {
        let cluster = VoldemortCluster::new(16, 3).unwrap();
        cluster
            .add_store(StoreDef::read_write("s").with_quorum(n, r, w))
            .unwrap();
        let client = cluster.client("s").unwrap();
        for i in 0..1000u64 {
            client
                .put_initial(format!("k{i}").as_bytes(), Bytes::from_static(b"v"))
                .unwrap();
        }
        let label = format!("N{n}R{r}W{w}");
        let mut i = 0u64;
        group.bench_with_input(BenchmarkId::new("get", &label), &r, |b, _| {
            b.iter(|| {
                let key = format!("k{}", i % 1000);
                i += 1;
                black_box(client.get(key.as_bytes()).unwrap())
            })
        });
        let mut j = 0u64;
        group.bench_with_input(BenchmarkId::new("update", &label), &w, |b, _| {
            b.iter(|| {
                let key = format!("k{}", j % 1000);
                j += 1;
                black_box(
                    client
                        .apply_update(key.as_bytes(), 3, &|_| Some(Bytes::from_static(b"v2")))
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_relay_buffer_budget(c: &mut Criterion) {
    println!("\n=== A-2: relay buffer budget vs look-back window ===");
    println!("{:>12} | {:>16} | {:>14}", "budget", "windows held", "look-back scn");
    for &budget in &[64 << 10, 1 << 20, 16 << 20] {
        let relay = Relay::new("primary", budget);
        for scn in 1..=50_000u64 {
            relay
                .ingest(Window {
                    source_db: "primary".into(),
                    scn,
                    timestamp: scn,
                    changes: vec![RowChange {
                        table: "t".into(),
                        key: RowKey::single(format!("k{scn}")),
                        op: Op::Put(Row::new(Bytes::from(vec![b'x'; 100]), 1)),
                    }],
                })
                .unwrap();
        }
        println!(
            "{budget:>12} | {:>16} | {:>14}",
            relay.window_count(),
            relay.oldest_scn()
        );
    }
    // Criterion leg: serving cost is independent of budget (index math).
    let mut group = c.benchmark_group("ablation_relay_buffer");
    for &budget in &[1usize << 20, 16 << 20] {
        let relay = Relay::new("primary", budget);
        for scn in 1..=20_000u64 {
            relay
                .ingest(Window {
                    source_db: "primary".into(),
                    scn,
                    timestamp: scn,
                    changes: vec![RowChange {
                        table: "t".into(),
                        key: RowKey::single(format!("k{scn}")),
                        op: Op::Put(Row::new(Bytes::from(vec![b'x'; 100]), 1)),
                    }],
                })
                .unwrap();
        }
        let oldest = relay.oldest_scn();
        group.bench_with_input(BenchmarkId::new("serve_tail", budget), &budget, |b, _| {
            b.iter(|| {
                black_box(
                    relay
                        .events_after(oldest.max(1) - 1 + 64, 64, &ServerFilter::all())
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_flush_interval(c: &mut Criterion) {
    println!("\n=== A-3: Kafka flush-interval sweep (durability vs append cost) ===");
    let clock = Arc::new(li_commons::sim::SimClock::new());
    let mut group = c.benchmark_group("ablation_flush_interval");
    group.throughput(Throughput::Elements(1));
    for &interval in &[1u64, 10, 100, 1000] {
        let log = PartitionLog::new(
            LogConfig {
                flush_interval_messages: interval,
                flush_interval: Duration::from_secs(3600),
                segment_bytes: 16 << 20,
                ..LogConfig::default()
            },
            clock.clone(),
        );
        let message = Message::new(Bytes::from(vec![b'e'; 120]));
        group.bench_with_input(
            BenchmarkId::new("append", interval),
            &interval,
            |b, _| b.iter(|| black_box(log.append(&message))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_quorum_sweep, bench_relay_buffer_budget, bench_flush_interval
}
criterion_main!(benches);
