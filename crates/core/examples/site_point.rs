//! Runs a single site-bench population point — the inner loop of the
//! C-24 population sweep — without the surrounding Criterion harness.
//! Useful for profiling one point (especially the 1M-member one) under
//! `LI_PUMP_TRACE=1` without re-running the whole sweep.
//!
//! Knobs via env: `MEMBERS` (default 1_000_000), `DRIVERS` (128),
//! `OPS_TOTAL` (12_800), `WORKERS` (8).

use linkedin_data_infra::{
    PlatformConfig, ShardMode, SiteBench, SiteBenchConfig, SloThresholds,
};
use std::time::Instant;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let members = env_u64("MEMBERS", 1_000_000);
    let drivers = env_u64("DRIVERS", 128) as usize;
    let ops_total = env_u64("OPS_TOTAL", 12_800) as usize;
    let workers = env_u64("WORKERS", 8) as usize;

    let mut config =
        SiteBenchConfig::smoke(members, drivers, ops_total / drivers, 42);
    config.platform = PlatformConfig {
        voldemort_nodes: 3,
        kafka_brokers: 2,
        espresso_nodes: 3,
        espresso_partitions: 8,
        activity_partitions: 4,
        shard_mode: ShardMode::Parallel,
    };
    config.slo = SloThresholds::smoke();
    config.workers = workers;

    eprintln!("[site_point] preparing {members} members...");
    let start = Instant::now();
    let bench = SiteBench::prepare(config).expect("streaming prepare");
    let stats = bench.prepare_stats();
    eprintln!(
        "[site_point] prepared in {:.2?} (generate {:.2?}, load {:.2?}, {} chunks)",
        start.elapsed(),
        stats.generate_wall,
        stats.load_wall,
        stats.chunks
    );

    eprintln!("[site_point] running {drivers} drivers x {} ops...", ops_total / drivers);
    let run_start = Instant::now();
    let report = bench.run().expect("run point");
    eprintln!(
        "[site_point] ran in {:.2?}: {:.0} ops/s, acked {}, slo_ok {}",
        run_start.elapsed(),
        report.throughput_ops_per_sec,
        report.ops_acked,
        report.all_gates_pass()
    );
    for failure in report.gate_failures() {
        eprintln!("[site_point] gate {}: {}", failure.name, failure.detail);
    }
}
