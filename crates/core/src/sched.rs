//! M:N scheduling of logical closed-loop drivers onto bounded workers.
//!
//! `site_bench` used to spawn one OS thread per driver, which capped the
//! concurrency sweep at ~32 drivers. Here N logical drivers — each a
//! resumable state machine over its pre-split op stream — multiplex onto
//! the W workers of a [`FanOutPool`]: every worker repeatedly pops a
//! runnable driver from a shared FIFO, runs one quantum of its ops, and
//! requeues it until the stream is exhausted. Hundreds of drivers run on
//! a handful of OS threads, and the FIFO round-robins quanta so all
//! drivers progress together (closed-loop fairness: no driver's offered
//! load starves behind another's).
//!
//! **Determinism contract:** [`run_serial`] is the collapsed twin — it
//! runs each machine to completion in submission order on the calling
//! thread, which is exactly the schedule a `ShardMode::Deterministic`
//! run needs (no extra threads, byte-identical conservation
//! fingerprints). [`run_on_pool`] interleaves quanta across workers; the
//! per-driver op *streams* are identical, only the interleaving varies,
//! so order-independent totals still match the serial twin.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use li_commons::exec::FanOutPool;
use parking_lot::{Condvar, Mutex};

/// A resumable driver state machine.
pub trait Resumable: Send {
    /// Runs one quantum of work. Returns `true` once the machine has
    /// finished (it will not be stepped again).
    fn step(&mut self) -> bool;
}

struct SchedShared<S> {
    /// Runnable machines, FIFO: `(original index, state)`.
    runnable: Mutex<VecDeque<(usize, S)>>,
    /// Wakes workers parked on an empty queue.
    wake: Condvar,
    /// Finished machines parked back in their original slots.
    finished: Mutex<Vec<Option<S>>>,
    /// Machines not yet finished; 0 tells parked workers to exit.
    remaining: AtomicUsize,
}

/// Runs every state machine to completion across the pool's workers,
/// one quantum at a time. Returns the machines in their original order.
/// A machine that panics mid-step poisons nothing — [`worker_loop`]
/// contains the panic and still counts the machine finished, so the
/// pool drains — but its slot comes back `None`, which this function
/// surfaces by panicking with the count of lost drivers (a benchmark
/// must never silently drop load).
pub fn run_on_pool<S: Resumable + 'static>(pool: &FanOutPool, states: Vec<S>) -> Vec<S> {
    let total = states.len();
    if total == 0 {
        return states;
    }
    let shared = Arc::new(SchedShared {
        runnable: Mutex::new(states.into_iter().enumerate().collect()),
        wake: Condvar::new(),
        finished: Mutex::new(std::iter::repeat_with(|| None).take(total).collect()),
        remaining: AtomicUsize::new(total),
    });
    for _ in 0..pool.workers() {
        let shared = Arc::clone(&shared);
        pool.submit(move || worker_loop(&shared));
    }
    pool.wait_idle();
    let mut finished = shared.finished.lock();
    let lost = finished.iter().filter(|slot| slot.is_none()).count();
    assert!(lost == 0, "{lost} driver(s) lost to a panicked step");
    finished.iter_mut().map(|slot| slot.take().unwrap()).collect()
}

fn worker_loop<S: Resumable>(shared: &SchedShared<S>) {
    loop {
        let (index, mut state) = {
            let mut runnable = shared.runnable.lock();
            loop {
                if shared.remaining.load(Ordering::Acquire) == 0 {
                    return;
                }
                if let Some(entry) = runnable.pop_front() {
                    break entry;
                }
                // All in-queue work is claimed but unfinished machines
                // exist (other workers hold them mid-quantum): park until
                // a requeue or the final finish wakes us.
                shared.wake.wait(&mut runnable);
            }
        };
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| state.step())) {
            Ok(false) => {
                shared.runnable.lock().push_back((index, state));
                shared.wake.notify_one();
            }
            Ok(true) => {
                shared.finished.lock()[index] = Some(state);
                finish_one(shared);
            }
            Err(_) => {
                // The machine is lost to the panic: its slot stays `None`,
                // which `run_on_pool` turns into the lost-driver panic
                // once the pool drains. It still counts as finished here —
                // otherwise `remaining` never reaches 0 and every other
                // worker parks forever behind the corpse.
                finish_one(shared);
            }
        }
    }
}

/// Marks one machine finished. The final decrement takes the `runnable`
/// lock before notifying: workers check `remaining` and park while
/// holding that lock, so serializing the wake on it closes the window
/// where the notify fires between a worker's check and its wait (a
/// lost wakeup that would park the worker — and `wait_idle` — forever).
fn finish_one<S>(shared: &SchedShared<S>) {
    if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        let _runnable = shared.runnable.lock();
        shared.wake.notify_all();
    }
}

/// The serialized twin: runs each machine to completion, in order, on
/// the calling thread. Same per-machine op streams, fully sequential
/// schedule — the replayable baseline for `ShardMode::Deterministic`.
pub fn run_serial<S: Resumable>(mut states: Vec<S>) -> Vec<S> {
    for state in &mut states {
        while !state.step() {}
    }
    states
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountTo {
        at: u64,
        target: u64,
        stride: u64,
        log: Arc<Mutex<Vec<u64>>>,
        id: u64,
    }

    impl Resumable for CountTo {
        fn step(&mut self) -> bool {
            self.at = (self.at + self.stride).min(self.target);
            self.log.lock().push(self.id);
            self.at == self.target
        }
    }

    fn machines(n: u64, log: &Arc<Mutex<Vec<u64>>>) -> Vec<CountTo> {
        (0..n)
            .map(|id| CountTo {
                at: 0,
                target: 40 + id,
                stride: 7,
                log: Arc::clone(log),
                id,
            })
            .collect()
    }

    #[test]
    fn pool_runs_many_more_machines_than_workers_to_completion() {
        let pool = FanOutPool::new(3);
        let log = Arc::new(Mutex::new(Vec::new()));
        let done = run_on_pool(&pool, machines(128, &log));
        assert_eq!(done.len(), 128);
        for (id, m) in done.iter().enumerate() {
            assert_eq!(m.at, m.target, "machine {id} stopped early");
            assert_eq!(m.id, id as u64, "results must keep submission order");
        }
    }

    #[test]
    fn serial_twin_interleaves_nothing() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let done = run_serial(machines(4, &log));
        assert_eq!(done.len(), 4);
        // Strict schedule: machine 0's quanta all precede machine 1's.
        let log = log.lock();
        let mut seen_max = 0;
        for &id in log.iter() {
            assert!(id >= seen_max, "serial twin interleaved: {:?}", *log);
            seen_max = id;
        }
    }

    #[test]
    fn pool_schedule_round_robins_quanta() {
        // With one worker the FIFO is fully deterministic: quanta rotate
        // 0,1,2,0,1,2,... until streams run dry.
        let pool = FanOutPool::new(1);
        let log = Arc::new(Mutex::new(Vec::new()));
        run_on_pool(&pool, machines(3, &log));
        let log = log.lock();
        assert_eq!(&log[..6], &[0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let pool = FanOutPool::new(2);
        let done: Vec<CountTo> = run_on_pool(&pool, Vec::new());
        assert!(done.is_empty());
    }

    #[test]
    fn termination_with_more_workers_than_machines_never_hangs() {
        // Most workers spend the whole run parked on the condvar; the
        // final finish must wake every one of them (the lost-wakeup race
        // lived exactly here: notify firing between a parked worker's
        // `remaining` check and its wait). Iterate to give the race room.
        let pool = FanOutPool::new(8);
        for _ in 0..200 {
            let log = Arc::new(Mutex::new(Vec::new()));
            let done = run_on_pool(&pool, machines(2, &log));
            assert_eq!(done.len(), 2);
        }
    }

    enum Trip {
        Counts(CountTo),
        Panics,
    }

    impl Resumable for Trip {
        fn step(&mut self) -> bool {
            match self {
                Trip::Counts(m) => m.step(),
                Trip::Panics => panic!("driver tripped mid-quantum"),
            }
        }
    }

    #[test]
    fn panicking_step_drains_the_pool_and_reports_the_lost_driver() {
        let pool = FanOutPool::new(3);
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut states: Vec<Trip> = machines(5, &log).into_iter().map(Trip::Counts).collect();
        states.insert(2, Trip::Panics);
        // The panicked machine must not wedge the others: the pool drains
        // and run_on_pool raises the lost-driver panic instead of hanging.
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_on_pool(&pool, states)));
        let Err(payload) = result else {
            panic!("a lost driver must not pass silently");
        };
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default();
        assert!(msg.contains("1 driver(s) lost"), "unexpected panic: {msg}");
        // The surviving machines all ran to completion before the report.
        let quanta = log.lock().len() as u64;
        let expected: u64 = (0..5).map(|id| (40 + id + 6) / 7).sum();
        assert_eq!(quanta, expected, "survivors must finish despite the panic");
    }
}
