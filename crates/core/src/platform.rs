//! The Figure I.1 assembly: primary store → Databus → derived systems;
//! activity events → Kafka → online consumers + offline warehouse.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use li_commons::metrics::{MetricsRegistry, MetricsSnapshot};
use li_commons::migrate::{MigrationConfig, MigrationCoordinator};
use li_commons::ring::{HashRing, NodeId, PartitionId};
use li_commons::schema::{Field, FieldType, Record, RecordSchema, Value};
use li_commons::shard::{ShardMode, ShardedLock};
use li_commons::sim::{RealClock, SimNetwork};
use li_databus::{BootstrapServer, DatabusClient, LogShippingAdapter, Relay, StreamDispatcher};
use li_espresso::{DatabaseSchema, EspressoCluster, TableSchema};
use li_kafka::audit::{AuditedProducer, AUDIT_TOPIC};
use li_kafka::log::LogConfig;
use li_kafka::mirror::{MirrorMaker, WarehouseLoader};
use li_kafka::{KafkaCluster, Producer, SimpleConsumer};
use li_sqlstore::Database;
use li_voldemort::readonly::{ReadOnlyBuilder, ReadOnlyStore, ScratchDir};
use li_voldemort::{StoreDef, VoldemortCluster};
use parking_lot::Mutex;

use crate::consumers::{
    company_row_key, member_row_key, parse_id_list, CompanyFollowCacher, SearchIndexer,
};

/// Name of the activity-event topic.
pub const ACTIVITY_TOPIC: &str = "activity";

/// Espresso database holding member profile documents.
pub const PROFILE_DB: &str = "Profiles";

/// Table (and document schema) of [`PROFILE_DB`].
pub const PROFILE_TABLE: &str = "Profile";

/// Voldemort read-only store serving PYMK recommendations (§II.C).
pub const PYMK_STORE: &str = "pymk";

/// Entity stripes behind `follow_company`'s read-modify-write in
/// [`ShardMode::Parallel`] — comfortably above plausible driver counts so
/// random member/company pairs rarely collide.
const FOLLOW_STRIPES: usize = 64;

/// Errors from platform operations (stringly typed at this altitude: the
/// facade aggregates seven subsystem error types).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlatformError(pub String);

impl std::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "platform error: {}", self.0)
    }
}

impl std::error::Error for PlatformError {}

fn wrap<E: std::fmt::Display>(e: E) -> PlatformError {
    PlatformError(e.to_string())
}

/// Sizing knobs for [`DataPlatform::with_config`]. `Default` matches the
/// shape `DataPlatform::new(3, 2)` used to build, plus a 3-node Espresso
/// tier.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Voldemort cache nodes.
    pub voldemort_nodes: u16,
    /// Brokers per Kafka cluster (live and offline each).
    pub kafka_brokers: u16,
    /// Espresso storage nodes for the profile database.
    pub espresso_nodes: u16,
    /// Partitions of the Espresso profile database.
    pub espresso_partitions: u32,
    /// Partitions of the activity topic.
    pub activity_partitions: u32,
    /// Shard mode for every striped structure in the platform (primary
    /// store row stripes, follow-lock stripes). `Deterministic` collapses
    /// them all to single locks — the serialized twin used for chaos
    /// replays and as the scaling baseline.
    pub shard_mode: ShardMode,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            voldemort_nodes: 3,
            kafka_brokers: 2,
            espresso_nodes: 3,
            espresso_partitions: 8,
            activity_partitions: 8,
            shard_mode: ShardMode::Parallel,
        }
    }
}

/// The PYMK read-only tier: scratch "HDFS" build area, per-node local
/// store directories, and the live store handles for pull/swap.
struct PymkTier {
    hdfs: ScratchDir,
    _local: ScratchDir,
    stores: Vec<Arc<ReadOnlyStore>>,
    version: u64,
}

/// The assembled site backend.
pub struct DataPlatform {
    /// The Oracle-analog primary database (source of truth).
    pub primary: Arc<Database>,
    /// The Databus relay capturing the primary's changes.
    pub relay: Arc<Relay>,
    /// Long look-back storage for fallen-behind/new subscribers.
    pub bootstrap: Arc<BootstrapServer>,
    /// The Voldemort cluster holding cache-like derived stores.
    pub voldemort: Arc<VoldemortCluster>,
    /// Live (user-facing datacenter) Kafka cluster.
    pub kafka_live: Arc<KafkaCluster>,
    /// Offline (analytics datacenter) Kafka cluster.
    pub kafka_offline: Arc<KafkaCluster>,
    /// The people-search index subscriber.
    pub search: Arc<SearchIndexer>,
    /// The Espresso cluster serving member profile documents.
    pub espresso: Arc<EspressoCluster>,

    metrics: Arc<MetricsRegistry>,
    follow_cacher: Arc<DatabusClient>,
    search_client: Arc<DatabusClient>,
    event_producer: AuditedProducer,
    mirror: MirrorMaker,
    warehouse: WarehouseLoader,
    activity_partitions: u32,
    /// Stand-in for the primary's row locks: `follow_company` does a
    /// read-modify-write of two association rows, which concurrent
    /// frontends would otherwise race (lost follows). A real RDBMS takes
    /// row locks inside the transaction; the in-process store doesn't, so
    /// the facade stripes by entity — one stripe per member/company hash —
    /// and a follow holds its member's and company's stripes (acquired in
    /// ascending order) for the read-modify-write. Follows touching
    /// disjoint entities no longer serialize.
    follow_stripes: ShardedLock<()>,
    pymk: Mutex<Option<PymkTier>>,
}

impl DataPlatform {
    /// Builds the platform: `voldemort_nodes` cache nodes and
    /// `kafka_brokers` per Kafka cluster (other knobs at their defaults).
    pub fn new(voldemort_nodes: u16, kafka_brokers: u16) -> Result<Self, PlatformError> {
        Self::with_config(PlatformConfig {
            voldemort_nodes,
            kafka_brokers,
            ..PlatformConfig::default()
        })
    }

    /// Builds the platform from explicit sizing knobs.
    pub fn with_config(config: PlatformConfig) -> Result<Self, PlatformError> {
        let PlatformConfig {
            voldemort_nodes,
            kafka_brokers,
            espresso_nodes,
            espresso_partitions,
            activity_partitions,
            shard_mode,
        } = config;
        // One registry for the whole site: every tier below reports into
        // it, so a single snapshot shows the full pipeline.
        let metrics = MetricsRegistry::new();

        // Primary store (Oracle analog) with the site's tables, row-striped
        // per the platform shard mode.
        let primary = Arc::new(Database::with_shard_mode(
            "primary",
            Arc::new(RealClock::new()),
            &metrics,
            shard_mode,
        ));
        for table in ["member_follows", "company_followers", "member_profile"] {
            primary.create_table(table).map_err(wrap)?;
        }

        // Databus tier: relay captures the primary semi-synchronously;
        // bootstrap follows the relay (sharing its frozen windows). The
        // backlog-draining attach makes construction order-insensitive:
        // any commits that land before the relay is wired ship as one
        // batch instead of being lost.
        let relay = Arc::new(Relay::with_metrics("primary", 32 << 20, &metrics));
        LogShippingAdapter::attach_with_backlog(&primary, relay.clone(), 0).map_err(wrap)?;
        let bootstrap = Arc::new(BootstrapServer::new());
        // Pin the relay buffer until the bootstrap's log writer has linked
        // each window (the floor advances with every catch-up): a window
        // evicted before it reaches log storage is lost from the whole
        // system, and any consumer checkpointed below it livelocks on a
        // consolidated delta that can never reach the buffered range.
        relay.set_eviction_floor(0);

        // Voldemort cache stores for Company Follow (§II.C).
        let voldemort_nodes_ids: Vec<NodeId> = (0..voldemort_nodes).map(NodeId).collect();
        let voldemort = VoldemortCluster::with_metrics(
            HashRing::balanced(64, &voldemort_nodes_ids).map_err(wrap)?,
            SimNetwork::reliable(),
            Arc::new(RealClock::new()),
            &metrics,
        )
        .map_err(wrap)?;
        voldemort
            .add_store(StoreDef::read_write("member-follows"))
            .map_err(wrap)?;
        voldemort
            .add_store(StoreDef::read_write("company-followers"))
            .map_err(wrap)?;

        let follow_cacher = Arc::new(DatabusClient::new(
            relay.clone(),
            Some(bootstrap.clone()),
            Arc::new(CompanyFollowCacher::new(
                voldemort.client("member-follows").map_err(wrap)?,
                voldemort.client("company-followers").map_err(wrap)?,
            )),
        ));

        let search = SearchIndexer::new();
        let search_client = Arc::new(DatabusClient::new(
            relay.clone(),
            Some(bootstrap.clone()),
            search.clone(),
        ));

        // Kafka tier: live cluster + offline mirror + warehouse loader.
        // The live cluster shares the site registry; the offline mirror
        // keeps a private one so identical broker/topic metric names from
        // the two datacenters never collide.
        let kafka_live = KafkaCluster::with_metrics(
            kafka_brokers,
            LogConfig::default(),
            Arc::new(RealClock::new()),
            &metrics,
        )
        .map_err(wrap)?;
        let kafka_offline = KafkaCluster::new(kafka_brokers).map_err(wrap)?;
        for cluster in [&kafka_live, &kafka_offline] {
            cluster
                .create_topic(ACTIVITY_TOPIC, activity_partitions)
                .map_err(wrap)?;
            cluster.create_topic(AUDIT_TOPIC, 1).map_err(wrap)?;
        }
        let event_producer = AuditedProducer::new(
            Producer::new(kafka_live.clone()).with_batch_size(16),
            &kafka_live,
            "frontend-1",
            Duration::from_secs(60),
        );
        let mirror = MirrorMaker::new(
            kafka_live.clone(),
            kafka_offline.clone(),
            [ACTIVITY_TOPIC, AUDIT_TOPIC],
        )
        .map_err(wrap)?;
        let warehouse = WarehouseLoader::new(
            kafka_offline.clone(),
            [ACTIVITY_TOPIC],
            Duration::from_secs(10),
        );

        // Espresso tier: the profile documents' source-of-truth serving
        // store (the paper's migration target for member profiles), on
        // the same site-wide registry.
        let espresso =
            EspressoCluster::with_metrics(espresso_nodes, &metrics).map_err(wrap)?;
        let profile_schema = DatabaseSchema::new(
            PROFILE_DB,
            espresso_partitions,
            2.min(espresso_nodes as usize),
        )
        .with_table(
            TableSchema::new(PROFILE_TABLE, ["member"]),
            RecordSchema::new(
                PROFILE_TABLE,
                1,
                vec![Field::new("text", FieldType::Str)],
            )
            .map_err(wrap)?,
        )
        .map_err(wrap)?;
        espresso.create_database(profile_schema).map_err(wrap)?;
        // Multi-key profile requests fan out across storage-node
        // sub-batches when the platform runs sharded; the Deterministic
        // twin keeps them inline and replayable.
        espresso.set_fan_out_mode(match shard_mode {
            ShardMode::Parallel => li_commons::exec::FanOutMode::Parallel,
            ShardMode::Deterministic => li_commons::exec::FanOutMode::Deterministic,
        });

        Ok(DataPlatform {
            primary,
            relay,
            bootstrap,
            voldemort,
            kafka_live,
            kafka_offline,
            search,
            espresso,
            metrics,
            follow_cacher,
            search_client,
            event_producer,
            mirror,
            warehouse,
            activity_partitions,
            follow_stripes: ShardedLock::with_mode(shard_mode, FOLLOW_STRIPES, || ()),
            pymk: Mutex::new(None),
        })
    }

    /// Starts push-style dispatch of the primary's change stream to the
    /// Databus subscribers (follow cacher + search indexer): the relay's
    /// SCN watch wakes per-client workers through bounded channels instead
    /// of every consumer polling. Safe alongside [`Self::pump`] /
    /// [`Self::pump_streams`] — each client serializes whole poll cycles,
    /// so no window is delivered twice. Stop (or drop) the returned
    /// dispatcher to shut the threads down and drain.
    pub fn start_stream_dispatch(&self) -> StreamDispatcher {
        StreamDispatcher::start(
            self.relay.clone(),
            vec![self.follow_cacher.clone(), self.search_client.clone()],
            1,
        )
    }

    /// A user follows a company: one transaction against the *primary*
    /// updating both association rows. Derived stores learn about it via
    /// Databus — never written directly.
    pub fn follow_company(&self, member: u64, company: u64) -> Result<(), PlatformError> {
        // Serialize the two-row read-modify-write per entity (see
        // `follow_stripes`): without this, two concurrent follows of the
        // same member or company read the same base list and one follow is
        // lost. Stripes are acquired in ascending order, so crossing
        // follows cannot deadlock.
        let _guards = self
            .follow_stripes
            .lock_pair(&("member", member), &("company", company));
        let member_key = member_row_key(member);
        let company_key = company_row_key(company);
        let mut followed = self
            .primary
            .get("member_follows", &member_key)
            .map_err(wrap)?
            .map(|row| parse_id_list(&row.value))
            .unwrap_or_default();
        let mut followers = self
            .primary
            .get("company_followers", &company_key)
            .map_err(wrap)?
            .map(|row| parse_id_list(&row.value))
            .unwrap_or_default();
        if !followed.contains(&company) {
            followed.push(company);
        }
        if !followers.contains(&member) {
            followers.push(member);
        }
        let join = |ids: &[u64]| {
            ids.iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",")
                .into_bytes()
        };
        let mut txn = self.primary.begin();
        txn.put("member_follows", member_key, join(&followed), 1);
        txn.put("company_followers", company_key, join(&followers), 1);
        self.primary.commit(txn).map_err(wrap)?;
        Ok(())
    }

    /// Updates a member's profile text. Dual-write, the paper's
    /// migration-era shape: Espresso is the serving store for profile
    /// reads, while the legacy primary row still feeds the search index
    /// through Databus.
    pub fn update_profile(&self, member: u64, text: &str) -> Result<(), PlatformError> {
        self.espresso
            .put(
                PROFILE_DB,
                PROFILE_TABLE,
                member_row_key(member),
                &Record::new().with("text", Value::Str(text.into())),
            )
            .map_err(wrap)?;
        self.primary
            .put_one(
                "member_profile",
                member_row_key(member),
                text.as_bytes().to_vec(),
                1,
            )
            .map_err(wrap)?;
        Ok(())
    }

    /// Serving read path for a member's profile text (from Espresso,
    /// routed to the partition master — timeline-consistent).
    pub fn profile(&self, member: u64) -> Result<Option<String>, PlatformError> {
        let doc = self
            .espresso
            .get(PROFILE_DB, PROFILE_TABLE, &member_row_key(member))
            .map_err(wrap)?;
        Ok(doc.and_then(|(record, _row)| match record.get("text") {
            Some(Value::Str(text)) => Some(text.clone()),
            _ => None,
        }))
    }

    /// Serving read path for many members' profile texts in one request:
    /// the Espresso router groups the keys by partition master against
    /// its watch-cached assignment and fans the per-node sub-batches out
    /// (parallel when the platform runs sharded). A PYMK page renders
    /// its recommendation cards through this — one routed request, not
    /// one per card. Results come back in `members` order.
    pub fn profiles(&self, members: &[u64]) -> Result<Vec<Option<String>>, PlatformError> {
        let keys = members.iter().map(|m| member_row_key(*m)).collect();
        let docs = self
            .espresso
            .multi_get(PROFILE_DB, PROFILE_TABLE, keys)
            .map_err(wrap)?;
        Ok(docs
            .into_iter()
            .map(|doc| {
                doc.and_then(|(record, _row)| match record.get("text") {
                    Some(Value::Str(text)) => Some(text.clone()),
                    _ => None,
                })
            })
            .collect())
    }

    /// Batched write path for the population loader: lands one chunk of
    /// profile documents in Espresso through the router's multi-key
    /// fan-out (grouped per master node). The loader dual-writes the
    /// legacy primary rows itself, strictly per member, so the primary's
    /// commit stream depends only on member order — never on how callers
    /// chunk (router request accounting is per-document for the same
    /// reason).
    pub fn seed_profile_documents(
        &self,
        profiles: &[(u64, String)],
    ) -> Result<(), PlatformError> {
        let documents = profiles
            .iter()
            .map(|(member, text)| {
                (
                    member_row_key(*member),
                    Record::new().with("text", Value::Str(text.clone())),
                )
            })
            .collect();
        self.espresso
            .multi_put(PROFILE_DB, PROFILE_TABLE, documents)
            .map_err(wrap)?;
        Ok(())
    }

    /// Loads (or refreshes) the PYMK read-only store from an offline
    /// "Hadoop job run": build → pull (data before index) → atomic swap,
    /// exactly the Figure II.3 cycle. `records` are `(key, value)` pairs
    /// keyed like [`Self::pymk_recommendations`] expects. Returns the
    /// swapped-in version.
    pub fn load_pymk(&self, records: Vec<(Bytes, Bytes)>) -> Result<u64, PlatformError> {
        let mut tier = self.pymk.lock();
        if tier.is_none() {
            let hdfs = ScratchDir::new("platform-pymk-hdfs").map_err(wrap)?;
            let local = ScratchDir::new("platform-pymk-local").map_err(wrap)?;
            let stores = self
                .voldemort
                .add_read_only_store(StoreDef::read_only(PYMK_STORE), local.path())
                .map_err(wrap)?;
            *tier = Some(PymkTier {
                hdfs,
                _local: local,
                stores,
                version: 0,
            });
        }
        let tier = tier.as_mut().expect("pymk tier initialized above");
        let def = self.voldemort.store_def(PYMK_STORE).map_err(wrap)?;
        let version = tier.version + 1;
        let builder = ReadOnlyBuilder::new(self.voldemort.ring(), def.replication, 4);
        let out = builder
            .build(records, version, tier.hdfs.path())
            .map_err(wrap)?;
        for store in &tier.stores {
            store
                .pull(&out.node_dir(store.node()), version, None)
                .map_err(wrap)?;
        }
        for store in &tier.stores {
            store.swap(version).map_err(wrap)?;
        }
        tier.version = version;
        Ok(version)
    }

    /// PYMK lookup: the member's serialized recommendation list from the
    /// read-only store ([`li_workload::datasets::PymkRecord`] wire
    /// format). `None` when the member has no recommendations or no PYMK
    /// run has been loaded yet.
    pub fn pymk_recommendations(&self, member: u64) -> Result<Option<Bytes>, PlatformError> {
        if self.pymk.lock().is_none() {
            return Ok(None);
        }
        let client = self.voldemort.client(PYMK_STORE).map_err(wrap)?;
        let key = member_row_key(member).to_string().into_bytes();
        let versions = client.get(&key).map_err(wrap)?;
        Ok(versions.into_iter().next().map(|v| v.value))
    }

    /// Cache read path: companies a member follows (from Voldemort).
    pub fn followed_companies(&self, member: u64) -> Result<Vec<u64>, PlatformError> {
        let client = self.voldemort.client("member-follows").map_err(wrap)?;
        let key = member_row_key(member).to_string().into_bytes();
        let versions = client.get(&key).map_err(wrap)?;
        Ok(versions
            .first()
            .map(|v| parse_id_list(&v.value))
            .unwrap_or_default())
    }

    /// Cache read path: a company's followers (from Voldemort).
    pub fn followers(&self, company: u64) -> Result<Vec<u64>, PlatformError> {
        let client = self.voldemort.client("company-followers").map_err(wrap)?;
        let key = company_row_key(company).to_string().into_bytes();
        let versions = client.get(&key).map_err(wrap)?;
        Ok(versions
            .first()
            .map(|v| parse_id_list(&v.value))
            .unwrap_or_default())
    }

    /// Publishes an activity event to the live Kafka cluster (audited).
    pub fn track(&self, event: &str) -> Result<(), PlatformError> {
        self.event_producer.send(ACTIVITY_TOPIC, event).map_err(wrap)
    }

    /// Opens an online consumer over one activity partition (newsfeed,
    /// security, relevance — the §V.D online subscribers).
    pub fn activity_consumer(&self, partition: u32) -> Result<SimpleConsumer, PlatformError> {
        SimpleConsumer::new(self.kafka_live.clone(), ACTIVITY_TOPIC, partition).map_err(wrap)
    }

    /// Partition count of the activity topic.
    pub fn activity_partitions(&self) -> u32 {
        self.activity_partitions
    }

    /// Rows loaded into the warehouse so far.
    pub fn warehouse_rows(&self) -> usize {
        self.warehouse.rows().len()
    }

    /// One pump of every asynchronous pipeline stage: Databus subscribers
    /// catch up, the bootstrap server follows the relay, producers flush,
    /// the mirror copies, and the warehouse loader ticks. Production runs
    /// these continuously; examples and tests call it at interesting
    /// moments (determinism over threads).
    pub fn pump(&self) -> Result<(), PlatformError> {
        // Bootstrap first: it is the fallen-behind escape hatch for every
        // subscriber, and it reads the relay directly (no drive lock). If
        // it ran after the subscriber catch-ups, a subscriber evicted off
        // the relay would cycle stale consolidated deltas while holding
        // the drive lock — and the pump, parked on that same lock, could
        // never advance the bootstrap to break the cycle.
        self.bootstrap.catch_up_from(&self.relay).map_err(wrap)?;
        self.bootstrap.apply_log();
        self.follow_cacher.catch_up().map_err(wrap)?;
        self.search_client.catch_up().map_err(wrap)?;
        self.espresso.pump_replication().map_err(wrap)?;
        self.event_producer.publish_audit_and_flush().map_err(wrap)?;
        self.mirror.pump().map_err(wrap)?;
        self.warehouse.tick().map_err(wrap)?;
        Ok(())
    }

    /// [`Self::pump`] without the audit flush: only the data-tier streams
    /// (Databus subscribers, bootstrap, Espresso replication, mirror,
    /// warehouse). The closed-loop benchmark's background pump thread uses
    /// this — the audit producer buckets by wall-clock window, which would
    /// make a seeded run's metrics timing-dependent.
    pub fn pump_streams(&self) -> Result<(), PlatformError> {
        let trace = std::env::var_os("LI_PUMP_TRACE").is_some();
        let mut stage_start = Instant::now();
        let mut stage = |name: &str| {
            let took = stage_start.elapsed();
            stage_start = Instant::now();
            if trace && took > Duration::from_secs(1) {
                eprintln!("[pump] {name} took {took:.2?}");
            }
        };
        // Bootstrap first — see [`Self::pump`] for why this ordering is
        // load-bearing (fallen-behind livelock under relay eviction).
        self.bootstrap.catch_up_from(&self.relay).map_err(wrap)?;
        stage("bootstrap.catch_up_from");
        self.bootstrap.apply_log();
        stage("bootstrap.apply_log");
        self.follow_cacher.catch_up().map_err(wrap)?;
        stage("follow_cacher.catch_up");
        self.search_client.catch_up().map_err(wrap)?;
        stage("search_client.catch_up");
        self.espresso.pump_replication().map_err(wrap)?;
        stage("espresso.pump_replication");
        self.mirror.pump().map_err(wrap)?;
        stage("mirror.pump");
        self.warehouse.tick().map_err(wrap)?;
        stage("warehouse.tick");
        Ok(())
    }

    /// The migration tuning used by the platform facade: the same phase
    /// machine as [`MigrationConfig::default`], but with enough delta and
    /// verify rounds that live traffic racing the shadow comparator (a
    /// write landing between the source read and the target read shows as
    /// a transient divergence) converges instead of tripping a refusal.
    fn migration_config() -> MigrationConfig {
        MigrationConfig {
            max_delta_rounds: 32,
            verify_retries: 64,
            ..MigrationConfig::default()
        }
    }

    /// Live-migrates one Voldemort partition to `to` while serving
    /// traffic: snapshot copy → journal delta catch-up → dual-write with
    /// shadow-read verification → atomic cutover. No-op when `to` already
    /// owns the partition. Reads never block; an acked write is never
    /// lost across the flip (the client re-checks the topology epoch
    /// after every ack). Phase progress and counters land under
    /// `migration.` in the site registry.
    pub fn migrate_voldemort_partition(
        &self,
        partition: PartitionId,
        to: NodeId,
    ) -> Result<(), PlatformError> {
        let Some(driver) = self
            .voldemort
            .begin_partition_migration(partition, to)
            .map_err(wrap)?
        else {
            return Ok(());
        };
        let coordinator = MigrationCoordinator::new(&self.metrics, Self::migration_config());
        match coordinator.run(&driver, 256) {
            Ok(_) => Ok(()),
            Err(e) => {
                // Leave the cluster serviceable: drop the half-built
                // migration so the source stays authoritative.
                self.voldemort.abort_migration();
                Err(wrap(e))
            }
        }
    }

    /// Live-migrates one partition of the Espresso profile database to
    /// `to` (a live node not currently hosting it): snapshot bootstrap →
    /// binlog delta from the master's relay → shadow verification →
    /// Helix-driven mastership cutover.
    pub fn migrate_profile_partition(
        &self,
        partition: u32,
        to: NodeId,
    ) -> Result<(), PlatformError> {
        let driver = self
            .espresso
            .begin_partition_migration(PROFILE_DB, partition, to)
            .map_err(wrap)?;
        MigrationCoordinator::new(&self.metrics, Self::migration_config())
            .run(&driver, 256)
            .map_err(wrap)
    }

    /// Forces a warehouse load regardless of its period (tests).
    pub fn force_warehouse_load(&self) -> Result<usize, PlatformError> {
        self.warehouse.run_load().map_err(wrap)
    }

    /// The site-wide metrics registry: the primary store, the relay, the
    /// Voldemort cluster, and the live Kafka cluster all report here.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// A point-in-time snapshot of every site metric (render with
    /// [`MetricsSnapshot::to_text_table`]).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn follow_flow_reaches_caches() {
        let platform = DataPlatform::new(3, 1).unwrap();
        platform.follow_company(1, 100).unwrap();
        platform.follow_company(1, 200).unwrap();
        platform.follow_company(2, 100).unwrap();
        // Caches are async: empty until the pipeline pumps.
        assert!(platform.followed_companies(1).unwrap().is_empty());
        platform.pump().unwrap();
        assert_eq!(platform.followed_companies(1).unwrap(), vec![100, 200]);
        assert_eq!(platform.followers(100).unwrap(), vec![1, 2]);
        assert_eq!(platform.followers(999).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn inconsistent_caches_are_acceptable_and_converge() {
        // "Since it is used as cache, having inconsistent values across
        // stores is not a problem" — but they converge after the pipeline
        // catches up.
        let platform = DataPlatform::new(2, 1).unwrap();
        platform.follow_company(7, 42).unwrap();
        platform.pump().unwrap();
        platform.follow_company(8, 42).unwrap();
        // Before the pump, store 2 is stale.
        assert_eq!(platform.followers(42).unwrap(), vec![7]);
        platform.pump().unwrap();
        assert_eq!(platform.followers(42).unwrap(), vec![7, 8]);
    }

    #[test]
    fn profile_updates_feed_search() {
        let platform = DataPlatform::new(2, 1).unwrap();
        platform.update_profile(1, "distributed systems engineer").unwrap();
        platform.update_profile(2, "sales leader enterprise").unwrap();
        platform.pump().unwrap();
        assert_eq!(platform.search.search("distributed systems"), vec!["member:000000001"]);
        assert_eq!(platform.search.indexed_count(), 2);
        // Update re-indexes.
        platform.update_profile(1, "machine learning researcher").unwrap();
        platform.pump().unwrap();
        assert!(platform.search.search("distributed").is_empty());
        assert_eq!(platform.search.search("machine learning"), vec!["member:000000001"]);
    }

    #[test]
    fn profile_reads_serve_from_espresso() {
        let platform = DataPlatform::new(2, 1).unwrap();
        assert_eq!(platform.profile(5).unwrap(), None);
        platform.update_profile(5, "storage systems engineer").unwrap();
        // Espresso is the serving store: readable before any pump.
        assert_eq!(
            platform.profile(5).unwrap().as_deref(),
            Some("storage systems engineer")
        );
        // ... while the legacy primary row still feeds search via Databus.
        platform.pump().unwrap();
        assert_eq!(platform.search.search("storage"), vec!["member:000000005"]);
    }

    #[test]
    fn pymk_build_pull_swap_serves_lookups() {
        let platform = DataPlatform::new(3, 1).unwrap();
        assert_eq!(platform.pymk_recommendations(1).unwrap(), None);
        let records: Vec<(bytes::Bytes, bytes::Bytes)> = (0..100u64)
            .map(|m| {
                (
                    bytes::Bytes::from(member_row_key(m).to_string()),
                    bytes::Bytes::from(format!("{}:0.9", (m + 1) % 100)),
                )
            })
            .collect();
        assert_eq!(platform.load_pymk(records).unwrap(), 1);
        assert_eq!(
            platform.pymk_recommendations(7).unwrap(),
            Some(bytes::Bytes::from("8:0.9"))
        );
        // A second "job run" swaps in new scores atomically.
        let rerun: Vec<(bytes::Bytes, bytes::Bytes)> = (0..100u64)
            .map(|m| {
                (
                    bytes::Bytes::from(member_row_key(m).to_string()),
                    bytes::Bytes::from(format!("{}:0.1", (m + 2) % 100)),
                )
            })
            .collect();
        assert_eq!(platform.load_pymk(rerun).unwrap(), 2);
        assert_eq!(
            platform.pymk_recommendations(7).unwrap(),
            Some(bytes::Bytes::from("9:0.1"))
        );
    }

    #[test]
    fn concurrent_follows_are_not_lost() {
        use std::sync::Arc;
        let platform = Arc::new(DataPlatform::new(2, 1).unwrap());
        let handles: Vec<_> = (0..8u64)
            .map(|member| {
                let platform = Arc::clone(&platform);
                std::thread::spawn(move || {
                    platform.follow_company(member, 1).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        platform.pump().unwrap();
        // Every acked follow appears exactly once — the racy RMW would
        // drop some and this assert would see fewer than 8.
        let mut followers = platform.followers(1).unwrap();
        followers.sort_unstable();
        assert_eq!(followers, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn disjoint_follows_do_not_serialize() {
        // Regression for the old global follow lock: a follow of one
        // member/company pair must not block a follow touching entirely
        // different stripes. Hold the first pair's stripes directly, then
        // run a disjoint follow on another thread — it must complete while
        // the stripes are held.
        let platform = Arc::new(DataPlatform::new(2, 1).unwrap());
        let held = platform
            .follow_stripes
            .stripe_set([("member", 1u64), ("company", 100u64)]);
        // Find a pair whose stripes are disjoint from the held set.
        let (member, company) = (2..2000u64)
            .flat_map(|m| (2000..4000u64).map(move |c| (m, c)))
            .find(|(m, c)| {
                let s = platform.follow_stripes.stripe_set([("member", *m), ("company", *c)]);
                s.iter().all(|id| !held.contains(id))
            })
            .expect("a disjoint pair");
        let guards = platform.follow_stripes.lock_many(&held);
        let other = Arc::clone(&platform);
        let h = std::thread::spawn(move || other.follow_company(member, company).unwrap());
        h.join().unwrap();
        drop(guards);
        // And the lost-update guarantee still holds for colliding entities
        // (covered exhaustively by `concurrent_follows_are_not_lost`).
        platform.pump().unwrap();
        assert_eq!(platform.followers(company).unwrap(), vec![member]);
    }

    #[test]
    fn stream_dispatch_replaces_polling() {
        let platform = DataPlatform::new(2, 1).unwrap();
        let dispatcher = platform.start_stream_dispatch();
        platform.follow_company(1, 100).unwrap();
        platform.follow_company(2, 100).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while platform.followers(100).unwrap().len() < 2
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        dispatcher.stop();
        // Both follows reached the Voldemort cache without any pump() call.
        let mut followers = platform.followers(100).unwrap();
        followers.sort_unstable();
        assert_eq!(followers, vec![1, 2]);
    }

    #[test]
    fn events_flow_to_online_consumer_and_warehouse() {
        let platform = DataPlatform::new(2, 2).unwrap();
        for i in 0..32 {
            platform.track(&format!("page_view member={i}")).unwrap();
        }
        platform.pump().unwrap();
        // Online path: all 32 events readable from the live cluster.
        let mut online_total = 0;
        for p in 0..8 {
            let mut consumer = platform.activity_consumer(p).unwrap();
            online_total += consumer.poll().unwrap().len();
        }
        assert_eq!(online_total, 32);
        // Offline path: mirror + forced load lands the same 32.
        assert_eq!(platform.force_warehouse_load().unwrap(), 32);
        assert_eq!(platform.warehouse_rows(), 32);
    }
}
