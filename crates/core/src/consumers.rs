//! Databus consumers that maintain derived data systems — the subscriber
//! side of the paper's replication layer ("the social graph, search, and
//! recommendation systems subscribe to the feed of profile changes",
//! §I.A).

use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::Arc;

use li_databus::{ConsumerCallback, Window};
use li_espresso::InvertedIndex;
use li_sqlstore::{Op, RowKey};
use li_voldemort::StoreClient;

/// Keeps the two Company Follow Voldemort stores in sync with the primary
/// database — §II.C: "two stores to maintain a cache-like interface on top
/// of our primary storage Oracle ... Both stores are fed by a Databus
/// relay and are populated whenever a user follows a new company."
pub struct CompanyFollowCacher {
    member_store: StoreClient,
    company_store: StoreClient,
}

impl CompanyFollowCacher {
    /// Wires the cacher to the two stores.
    pub fn new(member_store: StoreClient, company_store: StoreClient) -> Self {
        CompanyFollowCacher {
            member_store,
            company_store,
        }
    }

    fn apply_to_store(
        store: &StoreClient,
        key: &[u8],
        value: Option<Bytes>,
    ) -> Result<(), String> {
        match value {
            Some(value) => store
                .apply_update(key, 8, &|_siblings| Some(value.clone()))
                .map(|_| ())
                .map_err(|e| e.to_string()),
            None => {
                // Cache delete: drop all current versions.
                let siblings = store.get(key).map_err(|e| e.to_string())?;
                if let Some(latest) = siblings.first() {
                    store
                        .delete(key, &latest.clock)
                        .map(|_| ())
                        .map_err(|e| e.to_string())?;
                }
                Ok(())
            }
        }
    }
}

impl ConsumerCallback for CompanyFollowCacher {
    fn on_window(&self, window: &Window) -> Result<(), String> {
        for change in &window.changes {
            let key = change.key.to_string().into_bytes();
            let value = match &change.op {
                Op::Put(row) => Some(row.value.clone()),
                Op::Delete => None,
            };
            match change.table.as_str() {
                "member_follows" => {
                    Self::apply_to_store(&self.member_store, &key, value)?;
                }
                "company_followers" => {
                    Self::apply_to_store(&self.company_store, &key, value)?;
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// A people-search indexer fed by profile changes (the People Search Index
/// subscriber of §III.A), built on the same inverted-index substrate as
/// Espresso's local indexes.
#[derive(Default)]
pub struct SearchIndexer {
    index: Mutex<InvertedIndex>,
}

impl SearchIndexer {
    /// Creates an empty indexer.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Members whose profile text matches every token of `term`.
    pub fn search(&self, term: &str) -> Vec<String> {
        self.index
            .lock()
            .query("profile", term, None)
            .into_iter()
            .map(|key| key.to_string())
            .collect()
    }

    /// Number of indexed profiles.
    pub fn indexed_count(&self) -> usize {
        self.index.lock().doc_count()
    }
}

impl ConsumerCallback for SearchIndexer {
    fn on_window(&self, window: &Window) -> Result<(), String> {
        for change in &window.changes {
            if change.table != "member_profile" {
                continue;
            }
            match &change.op {
                Op::Put(row) => {
                    let text = String::from_utf8_lossy(&row.value).into_owned();
                    self.index.lock().index_document(
                        &change.key,
                        [(
                            "profile",
                            &li_commons::schema::Value::Str(text),
                        )],
                    );
                }
                Op::Delete => self.index.lock().remove_document(&change.key),
            }
        }
        Ok(())
    }

    fn on_snapshot_start(&self) {
        *self.index.lock() = InvertedIndex::new();
    }
}

/// Helper: parse a comma-separated id list value (Company Follow store
/// format).
pub fn parse_id_list(value: &[u8]) -> Vec<u64> {
    std::str::from_utf8(value)
        .ok()
        .map(|text| {
            text.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect()
        })
        .unwrap_or_default()
}

/// Helper: the row key used for members in the primary store.
pub fn member_row_key(member: u64) -> RowKey {
    RowKey::single(format!("member:{member:09}"))
}

/// Helper: the row key used for companies in the primary store.
pub fn company_row_key(company: u64) -> RowKey {
    RowKey::single(format!("company:{company:07}"))
}
