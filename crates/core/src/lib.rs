//! # linkedin-data-infra — the umbrella crate
//!
//! Re-exports the four systems of *Data Infrastructure at LinkedIn*
//! (ICDE 2012) and provides [`platform::DataPlatform`], an in-process
//! assembly of Figure I.1: a primary database whose changes flow through
//! Databus into derived-data systems (a Voldemort cache and a search
//! index), while activity events flow through Kafka into online consumers
//! and a mirrored offline cluster feeding a warehouse loader.
//!
//! ```
//! use linkedin_data_infra::platform::DataPlatform;
//!
//! let platform = DataPlatform::new(4, 2).unwrap();
//! platform.follow_company(42, 7).unwrap();
//! platform.pump().unwrap();
//! assert_eq!(platform.followed_companies(42).unwrap(), vec![7]);
//! assert_eq!(platform.followers(7).unwrap(), vec![42]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod consumers;
pub mod platform;
pub mod sched;
pub mod site_bench;

pub use li_commons::shard::ShardMode;
pub use platform::{DataPlatform, PlatformConfig};
pub use site_bench::{PrepareStats, SiteBench, SiteBenchConfig, SiteBenchReport, SloThresholds};

// The four systems, one roof.
pub use li_commons as commons;
pub use li_databus as databus;
pub use li_espresso as espresso;
pub use li_helix as helix;
pub use li_kafka as kafka;
pub use li_sqlstore as sqlstore;
pub use li_voldemort as voldemort;
pub use li_workload as workload;
pub use li_zk as zk;
