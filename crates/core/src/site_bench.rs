//! The site-scale closed-loop benchmark harness (ROADMAP item #1).
//!
//! One seeded member population (LDBC-shaped, [`li_workload::site`])
//! drives the whole platform at once, the way the paper's systems are
//! actually deployed — together:
//!
//! * profile reads → Espresso (routed document store),
//! * PYMK lookups → the Voldemort read-only store,
//! * follow-edge writes → primary sqlstore → Databus → Voldemort caches,
//! * activity events → Kafka (live cluster, keyed partitioning).
//!
//! **Closed loop:** each driver thread issues its next operation only
//! after the previous one completes, so offered load is a function of
//! service time (drivers model users, not a firehose). Scaling the driver
//! count — not a target rate — is what moves the platform toward its
//! throughput/latency knee, and per-op latencies are honest: there is no
//! coordinated-omission correction to apply because there is no schedule
//! to fall behind.
//!
//! **SLO gates** are read back from the site registry after the run:
//! per-tier p99 under threshold, Databus/Kafka lag drained to zero, and
//! cross-tier write conservation (every acked follow appears exactly once
//! downstream). A run is a pass/fail regression check, not just a number.
//!
//! **Determinism:** op streams are per-driver seeded ([`split_seed`]), so
//! *what* the run does is a pure function of the seed even though thread
//! interleaving varies. The [`SiteBenchReport::conservation_fingerprint`]
//! captures exactly the order-independent counters/gauges and must be
//! byte-identical across same-seed runs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use li_commons::hist::Histogram;
use li_commons::metrics::{HistogramSummary, MetricValue, MetricsSnapshot};
use li_kafka::{Partitioner, Producer};
use li_workload::site::{
    expected_follow_sets, split_seed, SiteGraph, SiteGraphConfig, SiteMix, SiteOp, SiteWorkload,
};

use crate::platform::{
    DataPlatform, PlatformConfig, PlatformError, ACTIVITY_TOPIC,
};
use crate::consumers::member_row_key;

/// Per-tier p99 latency thresholds (the SLOs the run is gated on).
#[derive(Debug, Clone)]
pub struct SloThresholds {
    /// p99 budget for Espresso profile reads.
    pub profile_read_p99: Duration,
    /// p99 budget for Voldemort PYMK lookups.
    pub pymk_read_p99: Duration,
    /// p99 budget for primary-store follow writes.
    pub follow_write_p99: Duration,
    /// p99 budget for Kafka activity publishes.
    pub activity_p99: Duration,
}

impl SloThresholds {
    /// Generous smoke-test budgets: wide enough to hold on a loaded CI
    /// box, tight enough that a pathological serialization bug (seconds
    /// per op) still trips them.
    pub fn smoke() -> Self {
        SloThresholds {
            profile_read_p99: Duration::from_millis(250),
            pymk_read_p99: Duration::from_millis(250),
            follow_write_p99: Duration::from_millis(500),
            activity_p99: Duration::from_millis(250),
        }
    }

    /// The same budget for every tier (knee sweeps).
    pub fn uniform(p99: Duration) -> Self {
        SloThresholds {
            profile_read_p99: p99,
            pymk_read_p99: p99,
            follow_write_p99: p99,
            activity_p99: p99,
        }
    }

    fn for_tier(&self, tier: &str) -> Duration {
        match tier {
            "profile_read" => self.profile_read_p99,
            "pymk_read" => self.pymk_read_p99,
            "follow_write" => self.follow_write_p99,
            _ => self.activity_p99,
        }
    }
}

/// Full configuration of one benchmark run.
#[derive(Debug, Clone)]
pub struct SiteBenchConfig {
    /// Population shape (and population seed).
    pub graph: SiteGraphConfig,
    /// Traffic mix over the four serving paths.
    pub mix: SiteMix,
    /// Concurrent closed-loop driver threads.
    pub drivers: usize,
    /// Operations each driver issues.
    pub ops_per_driver: usize,
    /// Op-stream seed (split per driver; independent of the graph seed).
    pub seed: u64,
    /// Platform sizing.
    pub platform: PlatformConfig,
    /// SLO gate thresholds.
    pub slo: SloThresholds,
    /// Voldemort partitions to live-migrate off node 0 *while the drivers
    /// run* (plus one Espresso profile partition when a free node exists).
    /// `0` disables in-flight migration. A non-zero value adds the
    /// `migration.zero_loss_cutover` gate: every started migration must
    /// cut over (no refusals), and the ordinary conservation gates then
    /// prove no acked write was lost across the moves.
    pub migrate_partitions: u32,
}

impl SiteBenchConfig {
    /// The deterministic smoke profile used by `tests/site_scale.rs`:
    /// small population, small platform, fixed generous SLOs.
    pub fn smoke(members: u64, drivers: usize, ops_per_driver: usize, seed: u64) -> Self {
        SiteBenchConfig {
            graph: SiteGraphConfig::smoke(members, split_seed(seed, u64::MAX)),
            mix: SiteMix::site_default(),
            drivers,
            ops_per_driver,
            seed,
            platform: PlatformConfig::default(),
            slo: SloThresholds::smoke(),
            migrate_partitions: 0,
        }
    }
}

/// One SLO gate's verdict.
#[derive(Debug, Clone)]
pub struct GateResult {
    /// Gate name (stable identifier).
    pub name: String,
    /// Whether the gate held.
    pub passed: bool,
    /// Human-readable evidence (numbers on both sides of the check).
    pub detail: String,
}

/// Everything a finished run reports.
#[derive(Debug)]
pub struct SiteBenchReport {
    /// Driver threads that ran.
    pub drivers: usize,
    /// Member population size.
    pub members: u64,
    /// Wall-clock time of the load phase (excludes prepare and drain).
    pub load_wall: Duration,
    /// Operations attempted.
    pub ops_attempted: u64,
    /// Operations acknowledged (attempted minus errors).
    pub ops_acked: u64,
    /// Acked operations per second over the load phase — the paper-style
    /// "members served per second" headline number.
    pub throughput_ops_per_sec: f64,
    /// Per-tier latency distributions (ns), keyed by tier name.
    pub tier_latency: BTreeMap<String, HistogramSummary>,
    /// Every SLO gate's verdict.
    pub gates: Vec<GateResult>,
    /// The full end-of-run metrics snapshot (timing histograms included).
    pub snapshot: MetricsSnapshot,
    /// The deterministic subset of the snapshot (see
    /// [`Self::conservation_fingerprint`]).
    pub conservation: MetricsSnapshot,
}

impl SiteBenchReport {
    /// True when every SLO gate held.
    pub fn all_gates_pass(&self) -> bool {
        self.gates.iter().all(|g| g.passed)
    }

    /// The gates that failed (empty on a passing run).
    pub fn gate_failures(&self) -> Vec<&GateResult> {
        self.gates.iter().filter(|g| !g.passed).collect()
    }

    /// JSON rendering of the *order-independent* metrics: acked-op
    /// counters, commit/window conservation counters, and end-state lag
    /// gauges — every reading that a same-seed rerun must reproduce
    /// byte-for-byte regardless of thread interleaving. Timing-dependent
    /// metrics (latency histograms, poll/serve counts) are excluded by
    /// construction.
    pub fn conservation_fingerprint(&self) -> String {
        self.conservation.to_json()
    }

    /// One human-readable block: throughput, per-tier p99s, gate verdicts.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "site_bench: {} drivers x {} members | {:.0} ops/s over {:?} ({} acked / {} attempted)\n",
            self.drivers,
            self.members,
            self.throughput_ops_per_sec,
            self.load_wall,
            self.ops_acked,
            self.ops_attempted,
        );
        for (tier, h) in &self.tier_latency {
            out.push_str(&format!(
                "  {tier:<13} n={:<7} p50={:>9}ns p99={:>9}ns max={:>9}ns\n",
                h.count, h.p50, h.p99, h.max
            ));
        }
        for gate in &self.gates {
            out.push_str(&format!(
                "  [{}] {}: {}\n",
                if gate.passed { "PASS" } else { "FAIL" },
                gate.name,
                gate.detail
            ));
        }
        out
    }
}

/// The prepared harness: platform seeded with the population, ready to
/// drive load. Prepare once, [`SiteBench::run`] once (the run consumes
/// the platform's "fresh" state; a second run would see first-run state).
pub struct SiteBench {
    platform: Arc<DataPlatform>,
    graph: Arc<SiteGraph>,
    workload: Arc<SiteWorkload>,
    config: SiteBenchConfig,
}

/// Rows per seeding transaction (the bulk-load batch size).
const SEED_BATCH: usize = 64;

impl SiteBench {
    /// Builds the platform and seeds the population into every tier:
    /// profiles into Espresso (+ legacy primary rows for search), the
    /// initial follow graph into the primary (bulk-load transactions, so
    /// Databus populates the Voldemort caches), and the PYMK run into the
    /// read-only store via build → pull → swap.
    pub fn prepare(config: SiteBenchConfig) -> Result<Self, PlatformError> {
        let graph = Arc::new(SiteGraph::generate(&config.graph));
        Self::prepare_with_graph(config, graph)
    }

    /// [`Self::prepare`] with a pre-generated population — knee sweeps
    /// reuse one graph across load points so only the platform state is
    /// rebuilt per point.
    pub fn prepare_with_graph(
        config: SiteBenchConfig,
        graph: Arc<SiteGraph>,
    ) -> Result<Self, PlatformError> {
        assert_eq!(
            graph.config(),
            &config.graph,
            "graph was generated from a different population config"
        );
        let platform = Arc::new(DataPlatform::with_config(config.platform.clone())?);

        // Profiles: Espresso serving store + legacy primary row (search).
        for member in 0..graph.member_count() {
            platform.update_profile(member, graph.profile_of(member))?;
        }

        // Initial follow graph: bulk-loaded into the primary in batched
        // transactions; the Databus pipeline fans it out to the caches.
        let join = |ids: &[u64]| {
            ids.iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",")
                .into_bytes()
        };
        let member_rows: Vec<(u64, Vec<u8>)> = (0..graph.member_count())
            .filter(|&m| !graph.follows_of(m).is_empty())
            .map(|m| (m, join(graph.follows_of(m))))
            .collect();
        for chunk in member_rows.chunks(SEED_BATCH) {
            let mut txn = platform.primary.begin();
            for (member, value) in chunk {
                txn.put("member_follows", member_row_key(*member), value.clone(), 1);
            }
            platform.primary.commit(txn).map_err(|e| PlatformError(e.to_string()))?;
        }
        let mut follower_lists: Vec<Vec<u64>> =
            vec![Vec::new(); graph.company_count() as usize];
        for member in 0..graph.member_count() {
            for &company in graph.follows_of(member) {
                follower_lists[company as usize].push(member);
            }
        }
        let company_rows: Vec<(u64, Vec<u8>)> = follower_lists
            .iter()
            .enumerate()
            .filter(|(_, list)| !list.is_empty())
            .map(|(c, list)| (c as u64, join(list)))
            .collect();
        for chunk in company_rows.chunks(SEED_BATCH) {
            let mut txn = platform.primary.begin();
            for (company, value) in chunk {
                txn.put(
                    "company_followers",
                    crate::consumers::company_row_key(*company),
                    value.clone(),
                    1,
                );
            }
            platform.primary.commit(txn).map_err(|e| PlatformError(e.to_string()))?;
        }

        // PYMK: one offline "job run" into the read-only store.
        let records: Vec<(Bytes, Bytes)> = (0..graph.member_count())
            .map(|m| {
                (
                    Bytes::from(member_row_key(m).to_string()),
                    Bytes::from(graph.pymk_of(m).to_bytes()),
                )
            })
            .collect();
        platform.load_pymk(records)?;

        // Fan the seeded state out before the clock starts.
        platform.pump_streams()?;

        let workload = Arc::new(SiteWorkload::new(
            graph.member_count(),
            graph.company_count(),
            config.mix,
        ));
        Ok(SiteBench {
            platform,
            graph,
            workload,
            config,
        })
    }

    /// The prepared platform (read access for scenario composition).
    pub fn platform(&self) -> &Arc<DataPlatform> {
        &self.platform
    }

    /// The population this run drives.
    pub fn graph(&self) -> &Arc<SiteGraph> {
        &self.graph
    }

    /// Drives the closed loop: spawns the driver threads and a background
    /// stream pump, joins, drains every pipeline, snapshots the registry,
    /// and evaluates the SLO gates.
    pub fn run(self) -> Result<SiteBenchReport, PlatformError> {
        let SiteBench {
            platform,
            graph,
            workload,
            config,
        } = self;
        let tiers = ["profile_read", "pymk_read", "follow_write", "activity"];
        // Create the site.* counters up front so they appear (as zeros)
        // even for ops the mix never drew.
        let scope = platform.metrics().scope("site");
        for tier in tiers {
            scope.counter(&format!("{tier}.ok"));
            scope.counter(&format!("{tier}.err"));
        }
        let consumed_counter = scope.counter("activity.consumed");
        let pump_errors = scope.counter("pump.errors");

        // Pre-generate every driver's deterministic op stream.
        let streams: Vec<Vec<SiteOp>> = (0..config.drivers as u64)
            .map(|d| workload.ops_for_driver(config.seed, d, config.ops_per_driver))
            .collect();

        // Push-style dispatch: when the platform runs sharded (Parallel),
        // the relay's SCN watch wakes the Databus subscribers through
        // bounded channels so follow fan-out latency is not a function of
        // the pump's polling period. The client-side drive lock keeps it
        // safe alongside the pump thread below — each window is still
        // delivered exactly once, so the conservation fingerprint stays
        // deterministic. Deterministic mode skips it: the serialized twin
        // must not depend on extra threads.
        let dispatcher = match config.platform.shard_mode {
            li_commons::shard::ShardMode::Parallel => Some(platform.start_stream_dispatch()),
            li_commons::shard::ShardMode::Deterministic => None,
        };

        // Background pump: production runs the stream tier continuously;
        // here a dedicated thread stands in for it during load. (The
        // dispatcher above only covers the Databus subscribers; bootstrap,
        // Espresso replication, the Kafka mirror and the warehouse still
        // ride the pump.)
        let stop_pump = Arc::new(AtomicBool::new(false));
        let pump_handle = {
            let platform = Arc::clone(&platform);
            let stop = Arc::clone(&stop_pump);
            let errors = pump_errors.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    if platform.pump_streams().is_err() {
                        errors.inc();
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
            })
        };

        let attempted = Arc::new(AtomicU64::new(0));
        let acked = Arc::new(AtomicU64::new(0));
        let load_start = Instant::now();
        let driver_handles: Vec<_> = streams
            .iter()
            .map(|ops| {
                let ops = ops.clone();
                let platform = Arc::clone(&platform);
                let attempted = Arc::clone(&attempted);
                let acked = Arc::clone(&acked);
                std::thread::spawn(move || drive(&platform, &ops, &attempted, &acked))
            })
            .collect();
        // Live resharding under traffic: run the configured partition
        // moves on this thread while the drivers load the platform, so
        // every phase of every migration races real reads and writes.
        let expected_flips = if config.migrate_partitions > 0 {
            run_inflight_migrations(&platform, config.migrate_partitions)?
        } else {
            0
        };
        let mut tier_local: BTreeMap<&'static str, Histogram> = BTreeMap::new();
        for handle in driver_handles {
            let per_tier = handle.join().expect("driver thread panicked");
            for (tier, hist) in per_tier {
                tier_local.entry(tier).or_default().merge(&hist);
            }
        }
        let load_wall = load_start.elapsed();
        stop_pump.store(true, Ordering::Release);
        pump_handle.join().expect("pump thread panicked");
        if let Some(dispatcher) = dispatcher {
            // Joins the dispatch threads and runs a final catch-up drain;
            // dispatch delivery errors gate the run like pump errors do.
            let stats = dispatcher.stop();
            pump_errors.add(stats.errors);
        }

        // Publish the driver-side latency distributions.
        for (tier, hist) in &tier_local {
            scope.histogram(&format!("{tier}.latency_ns")).merge_from(hist);
        }

        // ---- Drain: load has stopped; every pipeline must empty. -------
        platform.pump_streams()?;
        platform.pump_streams()?;
        let mut consumed = 0u64;
        for partition in 0..platform.activity_partitions() {
            let mut consumer = platform.activity_consumer(partition)?;
            loop {
                let batch = consumer.poll().map_err(|e| PlatformError(e.to_string()))?;
                if batch.is_empty() {
                    break;
                }
                consumed += batch.len() as u64;
            }
        }
        consumed_counter.add(consumed);
        let loaded = platform.force_warehouse_load()?;
        let _ = loaded;

        let snapshot = platform.metrics_snapshot();
        let conservation = conservation_subset(&snapshot, &config);

        // ---- Gates -----------------------------------------------------
        let tier_latency: BTreeMap<String, HistogramSummary> = tier_local
            .iter()
            .map(|(tier, h)| (tier.to_string(), HistogramSummary::of(h)))
            .collect();
        let mut gates = Vec::new();
        for tier in tiers {
            let p99 = tier_latency.get(tier).map_or(0, |h| h.p99);
            let budget = config.slo.for_tier(tier).as_nanos() as u64;
            gates.push(GateResult {
                name: format!("slo.{tier}.p99"),
                passed: p99 <= budget,
                detail: format!("p99 {p99}ns vs budget {budget}ns"),
            });
        }

        let relay_lag = snapshot.gauge("databus.client.relay_lag_scns").unwrap_or(-1);
        let newest = snapshot.gauge("databus.relay.primary.newest_scn").unwrap_or(-1);
        let last_scn = snapshot.gauge("sqlstore.db.primary.last_scn").unwrap_or(-2);
        gates.push(GateResult {
            name: "databus.lag_drains".into(),
            passed: relay_lag == 0 && newest == last_scn,
            detail: format!(
                "client lag {relay_lag} scns; relay newest_scn {newest} vs primary last_scn {last_scn}"
            ),
        });

        let mut max_consumer_lag = 0i64;
        for partition in 0..platform.activity_partitions() {
            let lag = snapshot
                .gauge(&format!("kafka.consumer.{ACTIVITY_TOPIC}.{partition}.lag"))
                .unwrap_or(i64::MAX);
            max_consumer_lag = max_consumer_lag.max(lag);
        }
        let activity_acked = snapshot.counter("site.activity.ok").unwrap_or(0);
        gates.push(GateResult {
            name: "kafka.lag_drains".into(),
            passed: max_consumer_lag == 0 && consumed == activity_acked,
            detail: format!(
                "max partition lag {max_consumer_lag}; consumed {consumed} vs acked {activity_acked}"
            ),
        });
        let warehouse_rows = platform.warehouse_rows() as u64;
        gates.push(GateResult {
            name: "offline.mirror_conservation".into(),
            passed: warehouse_rows == activity_acked,
            detail: format!("warehouse rows {warehouse_rows} vs acked activity {activity_acked}"),
        });

        if config.migrate_partitions > 0 {
            let flips = snapshot.counter("migration.cutover_flips").unwrap_or(0);
            let refusals = snapshot.counter("migration.cutover_refusals").unwrap_or(0);
            gates.push(GateResult {
                name: "migration.zero_loss_cutover".into(),
                passed: flips == expected_flips && refusals == 0,
                detail: format!(
                    "cutover flips {flips} vs expected {expected_flips}; refusals {refusals}"
                ),
            });
        }

        gates.push(follow_conservation_gate(&platform, &graph, &streams)?);
        gates.push(profile_conservation_gate(&platform, &graph)?);

        let write_failures = snapshot
            .counter("voldemort.client.quorum.write_failures")
            .unwrap_or(0);
        let failovers = snapshot.counter("espresso.router.failovers").unwrap_or(0);
        gates.push(GateResult {
            name: "no_partial_failures".into(),
            passed: write_failures == 0 && failovers == 0 && pump_errors.value() == 0,
            detail: format!(
                "voldemort write_failures {write_failures}; espresso failovers {failovers}; pump errors {}",
                pump_errors.value()
            ),
        });

        let ops_attempted = attempted.load(Ordering::Relaxed);
        let ops_acked = acked.load(Ordering::Relaxed);
        Ok(SiteBenchReport {
            drivers: config.drivers,
            members: graph.member_count(),
            load_wall,
            ops_attempted,
            ops_acked,
            throughput_ops_per_sec: ops_acked as f64 / load_wall.as_secs_f64().max(1e-9),
            tier_latency,
            gates,
            snapshot,
            conservation,
        })
    }
}

/// One driver's closed loop: issue, time, record, repeat. Returns the
/// per-tier latency histograms (merged by the caller — no shared state on
/// the hot path beyond the op counters).
fn drive(
    platform: &DataPlatform,
    ops: &[SiteOp],
    attempted: &AtomicU64,
    acked: &AtomicU64,
) -> Vec<(&'static str, Histogram)> {
    // Each driver is its own Kafka producer session: batch size 1 (an ack
    // per send — closed loop needs per-op completion) partitioned by
    // member key so one member's events stay ordered.
    let producer = Producer::new(platform.kafka_live.clone()).with_partitioner(Partitioner::Keyed);
    let scope = platform.metrics().scope("site");
    let mut hists: BTreeMap<&'static str, Histogram> = BTreeMap::new();
    for op in ops {
        attempted.fetch_add(1, Ordering::Relaxed);
        let tier = op.tier();
        let start = Instant::now();
        let outcome: Result<(), String> = match op {
            SiteOp::ProfileRead(member) => platform
                .profile(*member)
                .map(|_| ())
                .map_err(|e| e.to_string()),
            SiteOp::PymkRead(member) => platform
                .pymk_recommendations(*member)
                .map(|_| ())
                .map_err(|e| e.to_string()),
            SiteOp::Follow { member, company } => platform
                .follow_company(*member, *company)
                .map_err(|e| e.to_string()),
            SiteOp::Activity { member, event } => producer
                .send_keyed(
                    ACTIVITY_TOPIC,
                    member_row_key(*member).to_string().as_bytes(),
                    event.clone(),
                )
                .map_err(|e| e.to_string()),
        };
        let nanos = start.elapsed().as_nanos() as u64;
        hists.entry(tier).or_default().record(nanos);
        match outcome {
            Ok(()) => {
                acked.fetch_add(1, Ordering::Relaxed);
                scope.counter(&format!("{tier}.ok")).inc();
            }
            Err(_) => scope.counter(&format!("{tier}.err")).inc(),
        }
    }
    hists.into_iter().collect()
}

/// The in-flight partition moves for [`SiteBench::run`]: `count`
/// Voldemort partitions leave node 0, dealt round-robin across the other
/// nodes, then one Espresso profile partition moves to a free node when
/// the tier has one (replication < node count). Each move runs the full
/// phased machine — snapshot, delta catch-up, dual-write with shadow
/// reads, cutover — while the driver threads keep loading the platform.
/// Returns the number of cutovers performed, the value
/// `migration.cutover_flips` must reach for the gate to hold.
fn run_inflight_migrations(
    platform: &Arc<DataPlatform>,
    count: u32,
) -> Result<u64, PlatformError> {
    use li_commons::ring::NodeId;
    let donor = NodeId(0);
    let ring = platform.voldemort.ring();
    let peers: Vec<NodeId> = {
        let mut seen: Vec<NodeId> = (0..ring.num_partitions())
            .map(|p| ring.owner_of(li_commons::ring::PartitionId(p)))
            .filter(|&n| n != donor)
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen
    };
    let mut flips = 0u64;
    if !peers.is_empty() {
        for i in 0..count {
            let Some(&partition) = platform.voldemort.ring().partitions_of(donor).first()
            else {
                break;
            };
            platform
                .migrate_voldemort_partition(partition, peers[i as usize % peers.len()])?;
            flips += 1;
        }
    }
    if let Some((partition, to)) = profile_migration_candidate(platform)? {
        platform.migrate_profile_partition(partition, to)?;
        flips += 1;
    }
    Ok(flips)
}

/// A profile-database partition that can move: one with a master and a
/// live node not hosting any of its replicas. `None` when replication
/// already spans every node (nowhere to migrate to).
fn profile_migration_candidate(
    platform: &DataPlatform,
) -> Result<Option<(u32, li_commons::ring::NodeId)>, PlatformError> {
    let controller = platform.espresso.controller();
    let view = controller
        .external_view(crate::platform::PROFILE_DB)
        .map_err(|e| PlatformError(e.to_string()))?;
    let live = controller
        .live_nodes()
        .map_err(|e| PlatformError(e.to_string()))?;
    for (&pid, hosts) in &view.partitions {
        if view.master_of(pid).is_none() {
            continue;
        }
        if let Some(&target) = live.iter().find(|n| !hosts.contains_key(n)) {
            return Ok(Some((pid.0, target)));
        }
    }
    Ok(None)
}

/// Write conservation for follows: every member the op streams touched
/// must serve, from the Voldemort cache, exactly the union of their
/// seeded edges and their acked follow ops — each company exactly once
/// (duplicates mean double-apply; gaps mean lost writes).
fn follow_conservation_gate(
    platform: &DataPlatform,
    graph: &SiteGraph,
    streams: &[Vec<SiteOp>],
) -> Result<GateResult, PlatformError> {
    let expected = expected_follow_sets(graph, streams);
    let mut checked = 0usize;
    let mut violations = Vec::new();
    for (member, want) in &expected {
        let mut got = platform.followed_companies(*member)?;
        checked += 1;
        let got_len = got.len();
        got.sort_unstable();
        got.dedup();
        if got.len() != got_len {
            violations.push(format!("member {member}: duplicate follow entries"));
        } else if got != want.iter().copied().collect::<Vec<_>>() {
            violations.push(format!(
                "member {member}: cache has {got_len} follows, expected {}",
                want.len()
            ));
        }
        if violations.len() >= 3 {
            break;
        }
    }
    Ok(GateResult {
        name: "follow.write_conservation".into(),
        passed: violations.is_empty(),
        detail: if violations.is_empty() {
            format!("{checked} written members each exactly-once in cache")
        } else {
            violations.join("; ")
        },
    })
}

/// Every seeded profile must read back from Espresso with the generated
/// text (sampled across the population; the mix has no profile writes, so
/// the seeded text is the final text).
fn profile_conservation_gate(
    platform: &DataPlatform,
    graph: &SiteGraph,
) -> Result<GateResult, PlatformError> {
    let stride = (graph.member_count() / 64).max(1);
    let mut checked = 0usize;
    let mut bad = None;
    for member in (0..graph.member_count()).step_by(stride as usize) {
        checked += 1;
        if platform.profile(member)?.as_deref() != Some(graph.profile_of(member)) {
            bad = Some(member);
            break;
        }
    }
    Ok(GateResult {
        name: "profile.read_your_writes".into(),
        passed: bad.is_none(),
        detail: match bad {
            None => format!("{checked} sampled profiles match"),
            Some(member) => format!("member {member}: profile text diverged"),
        },
    })
}

/// The filtered snapshot backing the determinism fingerprint: keeps only
/// counters/gauges whose end-of-run values are order-independent —
/// acked-op totals, commit/window conservation counts, routing-determined
/// broker totals, and drained-lag gauges. Anything timing-dependent
/// (latency histograms, serve/poll counters, hint retries) stays out.
fn conservation_subset(snapshot: &MetricsSnapshot, config: &SiteBenchConfig) -> MetricsSnapshot {
    let platform = &config.platform;
    let mut names: Vec<String> = vec![
        "sqlstore.db.primary.commits".into(),
        "sqlstore.db.primary.last_scn".into(),
        "databus.relay.primary.windows_ingested".into(),
        "databus.relay.primary.newest_scn".into(),
        "databus.client.relay_lag_scns".into(),
        "databus.client.windows_processed".into(),
        "voldemort.client.put.ok".into(),
        "voldemort.client.quorum.write_failures".into(),
        "kafka.producer.requests".into(),
        "espresso.router.requests".into(),
        "espresso.router.failovers".into(),
    ];
    for broker in 0..platform.kafka_brokers {
        names.push(format!("kafka.broker{broker}.produce.messages"));
    }
    // Per-node put totals are routing-determined only while the ring is
    // static: with a migration in flight, writes race the cutover flip and
    // may land on either the pre- or post-flip preference list, so those
    // counters leave the fingerprint when `migrate_partitions > 0`.
    if config.migrate_partitions == 0 {
        for node in 0..platform.voldemort_nodes {
            names.push(format!("voldemort.node{node}.put.count"));
        }
    }
    for partition in 0..platform.activity_partitions {
        names.push(format!("kafka.consumer.{ACTIVITY_TOPIC}.{partition}.lag"));
    }
    let readings = snapshot
        .iter()
        .filter(|(name, value)| {
            let deterministic_kind =
                matches!(value, MetricValue::Counter(_) | MetricValue::Gauge(_));
            deterministic_kind
                && (name.starts_with("site.") || names.iter().any(|n| n == name))
        })
        .map(|(name, value)| (name.to_string(), value.clone()));
    MetricsSnapshot::from_readings(readings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_passes_gates_and_reports() {
        let mut config = SiteBenchConfig::smoke(200, 2, 60, 11);
        config.platform = PlatformConfig {
            voldemort_nodes: 2,
            kafka_brokers: 1,
            espresso_nodes: 2,
            espresso_partitions: 4,
            activity_partitions: 2,
            ..PlatformConfig::default()
        };
        let bench = SiteBench::prepare(config).unwrap();
        let report = bench.run().unwrap();
        assert!(
            report.all_gates_pass(),
            "gate failures:\n{}",
            report.summary()
        );
        assert_eq!(
            report.ops_attempted, 2 * 60,
            "closed loop issued every op"
        );
        assert_eq!(report.ops_acked, report.ops_attempted);
        assert!(report.throughput_ops_per_sec > 0.0);
        // The fingerprint excludes timing histograms but keeps the acked
        // counters.
        let fp = report.conservation_fingerprint();
        assert!(fp.contains("site.profile_read.ok"));
        assert!(!fp.contains("latency_ns"));
    }

    #[test]
    fn migration_in_flight_keeps_every_gate_green() {
        let mut config = SiteBenchConfig::smoke(200, 2, 60, 13);
        config.platform = PlatformConfig {
            voldemort_nodes: 2,
            kafka_brokers: 1,
            espresso_nodes: 2,
            espresso_partitions: 4,
            activity_partitions: 2,
            ..PlatformConfig::default()
        };
        config.migrate_partitions = 2;
        let bench = SiteBench::prepare(config).unwrap();
        let report = bench.run().unwrap();
        assert!(
            report.all_gates_pass(),
            "gate failures:\n{}",
            report.summary()
        );
        assert_eq!(report.ops_acked, report.ops_attempted);
        assert!(
            report
                .gates
                .iter()
                .any(|g| g.name == "migration.zero_loss_cutover" && g.passed),
            "migration gate missing or failed:\n{}",
            report.summary()
        );
        // Two Voldemort partitions moved off node 0; with two Espresso
        // nodes at replication two there is no free target, so the profile
        // move is skipped and the gate expects exactly the Voldemort flips.
        assert_eq!(report.snapshot.counter("migration.cutover_flips"), Some(2));
        assert_eq!(report.snapshot.counter("migration.cutover_refusals"), Some(0));
        // Timing-dependent per-node put counters leave the fingerprint on
        // migration runs; acked totals stay.
        let fp = report.conservation_fingerprint();
        assert!(fp.contains("voldemort.client.put.ok"));
        assert!(!fp.contains("voldemort.node0.put.count"));
    }
}
