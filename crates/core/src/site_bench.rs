//! The site-scale closed-loop benchmark harness (ROADMAP item #1).
//!
//! One seeded member population (LDBC-shaped, [`li_workload::site`])
//! drives the whole platform at once, the way the paper's systems are
//! actually deployed — together:
//!
//! * profile reads → Espresso (routed document store),
//! * PYMK lookups → the Voldemort read-only store,
//! * follow-edge writes → primary sqlstore → Databus → Voldemort caches,
//! * activity events → Kafka (live cluster, keyed partitioning).
//!
//! **Closed loop:** each driver thread issues its next operation only
//! after the previous one completes, so offered load is a function of
//! service time (drivers model users, not a firehose). Scaling the driver
//! count — not a target rate — is what moves the platform toward its
//! throughput/latency knee, and per-op latencies are honest: there is no
//! coordinated-omission correction to apply because there is no schedule
//! to fall behind.
//!
//! **SLO gates** are read back from the site registry after the run:
//! per-tier p99 under threshold, Databus/Kafka lag drained to zero, and
//! cross-tier write conservation (every acked follow appears exactly once
//! downstream). A run is a pass/fail regression check, not just a number.
//!
//! **Determinism:** op streams are per-driver seeded ([`split_seed`]), so
//! *what* the run does is a pure function of the seed even though thread
//! interleaving varies. The [`SiteBenchReport::conservation_fingerprint`]
//! captures exactly the order-independent counters/gauges and must be
//! byte-identical across same-seed runs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use bytes::Bytes;
use li_commons::exec::FanOutPool;
use li_commons::hist::Histogram;
use li_commons::metrics::{Counter, HistogramSummary, MetricValue, MetricsSnapshot};
use li_commons::shard::ShardMode;
use li_kafka::{Partitioner, Producer};
use li_workload::datasets::PymkRecord;
use li_workload::site::{
    expected_follow_sets, split_seed, SiteChunk, SiteGraph, SiteGraphChunks, SiteGraphConfig,
    SiteMix, SiteOp, SiteWorkload,
};

use crate::platform::{
    DataPlatform, PlatformConfig, PlatformError, ACTIVITY_TOPIC,
};
use crate::consumers::member_row_key;
use crate::sched::{run_on_pool, run_serial, Resumable};

/// Per-tier p99 latency thresholds (the SLOs the run is gated on).
#[derive(Debug, Clone)]
pub struct SloThresholds {
    /// p99 budget for Espresso profile reads.
    pub profile_read_p99: Duration,
    /// p99 budget for Voldemort PYMK lookups.
    pub pymk_read_p99: Duration,
    /// p99 budget for primary-store follow writes.
    pub follow_write_p99: Duration,
    /// p99 budget for Kafka activity publishes.
    pub activity_p99: Duration,
}

impl SloThresholds {
    /// Generous smoke-test budgets: wide enough to hold on a loaded CI
    /// box, tight enough that a pathological serialization bug (seconds
    /// per op) still trips them.
    pub fn smoke() -> Self {
        SloThresholds {
            profile_read_p99: Duration::from_millis(250),
            pymk_read_p99: Duration::from_millis(250),
            follow_write_p99: Duration::from_millis(500),
            activity_p99: Duration::from_millis(250),
        }
    }

    /// The same budget for every tier (knee sweeps).
    pub fn uniform(p99: Duration) -> Self {
        SloThresholds {
            profile_read_p99: p99,
            pymk_read_p99: p99,
            follow_write_p99: p99,
            activity_p99: p99,
        }
    }

    fn for_tier(&self, tier: &str) -> Duration {
        match tier {
            "profile_read" => self.profile_read_p99,
            "pymk_read" => self.pymk_read_p99,
            "follow_write" => self.follow_write_p99,
            _ => self.activity_p99,
        }
    }
}

/// Full configuration of one benchmark run.
#[derive(Debug, Clone)]
pub struct SiteBenchConfig {
    /// Population shape (and population seed).
    pub graph: SiteGraphConfig,
    /// Traffic mix over the four serving paths.
    pub mix: SiteMix,
    /// Concurrent closed-loop driver threads.
    pub drivers: usize,
    /// Operations each driver issues.
    pub ops_per_driver: usize,
    /// Op-stream seed (split per driver; independent of the graph seed).
    pub seed: u64,
    /// Platform sizing.
    pub platform: PlatformConfig,
    /// SLO gate thresholds.
    pub slo: SloThresholds,
    /// Voldemort partitions to live-migrate off node 0 *while the drivers
    /// run* (plus one Espresso profile partition when a free node exists).
    /// `0` disables in-flight migration. A non-zero value adds the
    /// `migration.zero_loss_cutover` gate: every started migration must
    /// cut over (no refusals), and the ordinary conservation gates then
    /// prove no acked write was lost across the moves.
    pub migrate_partitions: u32,
    /// OS worker threads the M:N scheduler multiplexes the logical
    /// drivers onto (`0` = `min(drivers, 8)`). Hundreds of logical
    /// drivers run on this bounded set; in `ShardMode::Deterministic`
    /// the schedule collapses to serial on the calling thread and this
    /// knob is moot.
    pub workers: usize,
    /// Ops a driver runs per scheduler quantum before yielding its
    /// worker (`0` = 32).
    pub quantum: usize,
    /// Members per streaming-loader chunk in [`SiteBench::prepare`]
    /// (`0` = 4096). Any value produces the identical platform state —
    /// the loader's commit stream depends only on member order.
    pub chunk_members: usize,
    /// Activity-producer batching: messages buffered per partition
    /// before a publish request (`1` = the legacy flush-per-send shape).
    /// Deterministic triggers only — the linger knob stays off here so
    /// same-seed fingerprints hold.
    pub activity_batch_messages: usize,
    /// Activity-producer batching: payload bytes buffered per partition
    /// before a publish request.
    pub activity_batch_bytes: usize,
}

impl SiteBenchConfig {
    /// The deterministic smoke profile used by `tests/site_scale.rs`:
    /// small population, small platform, fixed generous SLOs.
    pub fn smoke(members: u64, drivers: usize, ops_per_driver: usize, seed: u64) -> Self {
        SiteBenchConfig {
            graph: SiteGraphConfig::smoke(members, split_seed(seed, u64::MAX)),
            mix: SiteMix::site_default(),
            drivers,
            ops_per_driver,
            seed,
            platform: PlatformConfig::default(),
            slo: SloThresholds::smoke(),
            migrate_partitions: 0,
            workers: 0,
            quantum: 0,
            chunk_members: 0,
            activity_batch_messages: 16,
            activity_batch_bytes: 16 << 10,
        }
    }

    fn effective_workers(&self) -> usize {
        match self.workers {
            0 => self.drivers.clamp(1, 8),
            w => w,
        }
    }

    fn effective_quantum(&self) -> usize {
        match self.quantum {
            0 => 32,
            q => q,
        }
    }

    fn effective_chunk_members(&self) -> usize {
        match self.chunk_members {
            0 => 4096,
            c => c,
        }
    }
}

/// Wall-clock split of the prepare phase: how much time generation and
/// loading each took, and whether they overlapped (streamed) or ran as a
/// serial wall (bulk). With streaming, `generate_wall + load_wall`
/// exceeding `wall` is the direct evidence of overlap.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrepareStats {
    /// End-to-end prepare wall clock.
    pub wall: Duration,
    /// Time spent inside the population generator.
    pub generate_wall: Duration,
    /// Time spent loading batches into the platform tiers (including the
    /// final follow/PYMK flush and stream drain).
    pub load_wall: Duration,
    /// Chunks the loader consumed.
    pub chunks: usize,
    /// Members per chunk.
    pub chunk_members: usize,
    /// True when generation ran concurrently with loading.
    pub overlapped: bool,
}

/// One SLO gate's verdict.
#[derive(Debug, Clone)]
pub struct GateResult {
    /// Gate name (stable identifier).
    pub name: String,
    /// Whether the gate held.
    pub passed: bool,
    /// Human-readable evidence (numbers on both sides of the check).
    pub detail: String,
}

/// Everything a finished run reports.
#[derive(Debug)]
pub struct SiteBenchReport {
    /// Driver threads that ran.
    pub drivers: usize,
    /// Member population size.
    pub members: u64,
    /// Wall-clock time of the load phase (excludes prepare and drain).
    pub load_wall: Duration,
    /// Wall-clock split of the prepare phase (population generation vs
    /// tier loading, and whether the two overlapped).
    pub prepare: PrepareStats,
    /// Operations attempted.
    pub ops_attempted: u64,
    /// Operations acknowledged (attempted minus errors).
    pub ops_acked: u64,
    /// Acked operations per second over the load phase — the paper-style
    /// "members served per second" headline number.
    pub throughput_ops_per_sec: f64,
    /// Per-tier latency distributions (ns), keyed by tier name.
    pub tier_latency: BTreeMap<String, HistogramSummary>,
    /// Every SLO gate's verdict.
    pub gates: Vec<GateResult>,
    /// The full end-of-run metrics snapshot (timing histograms included).
    pub snapshot: MetricsSnapshot,
    /// The deterministic subset of the snapshot (see
    /// [`Self::conservation_fingerprint`]).
    pub conservation: MetricsSnapshot,
}

impl SiteBenchReport {
    /// True when every SLO gate held.
    pub fn all_gates_pass(&self) -> bool {
        self.gates.iter().all(|g| g.passed)
    }

    /// The gates that failed (empty on a passing run).
    pub fn gate_failures(&self) -> Vec<&GateResult> {
        self.gates.iter().filter(|g| !g.passed).collect()
    }

    /// JSON rendering of the *order-independent* metrics: acked-op
    /// counters, commit/window conservation counters, and end-state lag
    /// gauges — every reading that a same-seed rerun must reproduce
    /// byte-for-byte regardless of thread interleaving. Timing-dependent
    /// metrics (latency histograms, poll/serve counts) are excluded by
    /// construction.
    pub fn conservation_fingerprint(&self) -> String {
        self.conservation.to_json()
    }

    /// One human-readable block: throughput, per-tier p99s, gate verdicts.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "site_bench: {} drivers x {} members | {:.0} ops/s over {:?} ({} acked / {} attempted)\n",
            self.drivers,
            self.members,
            self.throughput_ops_per_sec,
            self.load_wall,
            self.ops_acked,
            self.ops_attempted,
        );
        for (tier, h) in &self.tier_latency {
            out.push_str(&format!(
                "  {tier:<13} n={:<7} p50={:>9}ns p99={:>9}ns max={:>9}ns\n",
                h.count, h.p50, h.p99, h.max
            ));
        }
        for gate in &self.gates {
            out.push_str(&format!(
                "  [{}] {}: {}\n",
                if gate.passed { "PASS" } else { "FAIL" },
                gate.name,
                gate.detail
            ));
        }
        out
    }
}

/// The prepared harness: platform seeded with the population, ready to
/// drive load. Prepare once, [`SiteBench::run`] once (the run consumes
/// the platform's "fresh" state; a second run would see first-run state).
pub struct SiteBench {
    platform: Arc<DataPlatform>,
    graph: Arc<SiteGraph>,
    workload: Arc<SiteWorkload>,
    config: SiteBenchConfig,
    prepare_stats: PrepareStats,
}

/// Rows per seeding transaction (the bulk-load batch size).
const SEED_BATCH: usize = 64;

/// Chunks in flight between the generator thread and the loader: enough
/// to hide generation latency, bounded so a slow tier backpressures the
/// generator instead of materializing the whole population.
const PREPARE_PIPELINE_DEPTH: usize = 4;

/// Pump-thread idle backoff bounds (the old fixed 200µs poll is gone:
/// the relay's SCN watch wakes the pump the moment primary commits land,
/// and a quiet platform decays toward the cap instead of spinning).
const PUMP_MIN_BACKOFF: Duration = Duration::from_micros(50);
const PUMP_MAX_BACKOFF: Duration = Duration::from_millis(5);

/// The canonical population loader: every prepare path — bulk or
/// streaming, any chunk size — funnels member rows through this exact
/// sequence, so the primary's commit stream (and with it the primary's
/// `logical_fingerprint`) is a pure function of member order:
///
/// * Espresso profile documents land per batch through the router's
///   multi-key fan-out (never touches the primary);
/// * per member, in order: the legacy `member_profile` primary row, then
///   the member's follow row into a buffer that commits as a bulk-load
///   transaction at every [`SEED_BATCH`]th buffered row — a boundary
///   determined by member order alone, never by chunk size;
/// * company inverted lists and PYMK records accumulate and flush in
///   [`finish`](Self::finish) (the RO build is an offline job — it needs
///   the full record set, like its Hadoop analog).
struct PopulationLoader<'a> {
    platform: &'a DataPlatform,
    follows_buffer: Vec<(u64, Vec<u8>)>,
    follower_lists: Vec<Vec<u64>>,
    pymk_records: Vec<(Bytes, Bytes)>,
    members_since_pump: usize,
}

/// Members loaded between in-flight stream pumps. The Databus relay
/// buffers a bounded byte window; a million-member seed outruns it long
/// before the end-of-prepare drain, evicting SCNs the bootstrap consumer
/// still needs. Pumping every N *members* keeps consumers within a few
/// thousand SCNs of the head — and because the boundary is a pure
/// function of member order, streaming and bulk prepares pump at the
/// identical points (pump cadence is invisible to the conservation
/// totals anyway; this keeps the paths structurally twinned).
const PUMP_EVERY_MEMBERS: usize = 4096;

fn join_ids(ids: &[u64]) -> Vec<u8> {
    ids.iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",")
        .into_bytes()
}

impl<'a> PopulationLoader<'a> {
    fn new(platform: &'a DataPlatform, companies: u64) -> Self {
        PopulationLoader {
            platform,
            follows_buffer: Vec::with_capacity(SEED_BATCH),
            follower_lists: vec![Vec::new(); companies as usize],
            pymk_records: Vec::new(),
            members_since_pump: 0,
        }
    }

    fn flush_follows(&mut self) -> Result<(), PlatformError> {
        if self.follows_buffer.is_empty() {
            return Ok(());
        }
        let mut txn = self.platform.primary.begin();
        for (member, value) in self.follows_buffer.drain(..) {
            txn.put("member_follows", member_row_key(member), value, 1);
        }
        self.platform
            .primary
            .commit(txn)
            .map_err(|e| PlatformError(e.to_string()))?;
        Ok(())
    }

    /// Loads one batch of member rows (must arrive in member order,
    /// gap-free across calls).
    fn load_rows<'r>(
        &mut self,
        rows: impl Iterator<Item = (u64, &'r [u64], &'r str, &'r PymkRecord)>,
    ) -> Result<(), PlatformError> {
        let rows: Vec<(u64, &[u64], &str, &PymkRecord)> = rows.collect();
        let documents: Vec<(u64, String)> = rows
            .iter()
            .map(|(member, _, text, _)| (*member, text.to_string()))
            .collect();
        self.platform.seed_profile_documents(&documents)?;
        for (member, follows, text, pymk) in rows {
            self.platform
                .primary
                .put_one(
                    "member_profile",
                    member_row_key(member),
                    text.as_bytes().to_vec(),
                    1,
                )
                .map_err(|e| PlatformError(e.to_string()))?;
            if !follows.is_empty() {
                self.follows_buffer.push((member, join_ids(follows)));
                if self.follows_buffer.len() >= SEED_BATCH {
                    self.flush_follows()?;
                }
            }
            for &company in follows {
                self.follower_lists[company as usize].push(member);
            }
            self.pymk_records.push((
                Bytes::from(member_row_key(member).to_string()),
                Bytes::from(pymk.to_bytes()),
            ));
            self.members_since_pump += 1;
            if self.members_since_pump >= PUMP_EVERY_MEMBERS {
                self.platform.pump_streams()?;
                self.members_since_pump = 0;
            }
        }
        Ok(())
    }

    /// Flushes the tail follow buffer, bulk-loads the company inverted
    /// lists, and runs the PYMK build → pull → swap.
    fn finish(mut self) -> Result<(), PlatformError> {
        self.flush_follows()?;
        let company_rows: Vec<(u64, Vec<u8>)> = self
            .follower_lists
            .iter()
            .enumerate()
            .filter(|(_, list)| !list.is_empty())
            .map(|(c, list)| (c as u64, join_ids(list)))
            .collect();
        for chunk in company_rows.chunks(SEED_BATCH) {
            let mut txn = self.platform.primary.begin();
            for (company, value) in chunk {
                txn.put(
                    "company_followers",
                    crate::consumers::company_row_key(*company),
                    value.clone(),
                    1,
                );
            }
            self.platform
                .primary
                .commit(txn)
                .map_err(|e| PlatformError(e.to_string()))?;
        }
        self.platform.load_pymk(std::mem::take(&mut self.pymk_records))?;
        Ok(())
    }
}

impl SiteBench {
    /// Builds the platform and seeds the population into every tier —
    /// streaming: a generator thread yields deterministic member chunks
    /// through a bounded channel while this thread loads them (profiles
    /// into Espresso through the router's batched fan-out + legacy
    /// primary rows for search, the follow graph into the primary as
    /// bulk-load transactions, PYMK accumulating toward the RO build).
    /// Generation cost overlaps loading instead of forming a serial
    /// wall; when the platform runs sharded, push-style Databus dispatch
    /// additionally drains the seeded follow stream into the Voldemort
    /// caches while later chunks are still generating. The resulting
    /// platform state is byte-identical to the bulk
    /// [`Self::prepare_with_graph`] path at any chunk size
    /// (`tests/site_loader_props.rs`).
    pub fn prepare(config: SiteBenchConfig) -> Result<Self, PlatformError> {
        let chunk_members = config.effective_chunk_members();
        let platform = Arc::new(DataPlatform::with_config(config.platform.clone())?);
        let prepare_start = Instant::now();
        let dispatcher = match config.platform.shard_mode {
            ShardMode::Parallel => Some(platform.start_stream_dispatch()),
            ShardMode::Deterministic => None,
        };
        let (chunk_tx, chunk_rx) = mpsc::sync_channel::<SiteChunk>(PREPARE_PIPELINE_DEPTH);
        let graph_config = config.graph.clone();
        let generator_builder = std::thread::Builder::new().name("site-gen".into());
        let generator = generator_builder.spawn(move || -> Duration {
            let mut generate_wall = Duration::ZERO;
            let mut chunks = SiteGraphChunks::new(&graph_config, chunk_members);
            loop {
                let started = Instant::now();
                let Some(chunk) = chunks.next() else { break };
                generate_wall += started.elapsed();
                if chunk_tx.send(chunk).is_err() {
                    break; // loader bailed; unwind quietly
                }
            }
            generate_wall
        }).expect("spawn population generator");
        let mut loader = PopulationLoader::new(&platform, config.graph.companies);
        let mut collected: Vec<SiteChunk> = Vec::new();
        let mut load_wall = Duration::ZERO;
        let load_result: Result<(), PlatformError> = (|| {
            for chunk in &chunk_rx {
                let started = Instant::now();
                loader.load_rows(chunk.rows().map(|(m, f, p, r)| (m, f.as_slice(), p, r)))?;
                load_wall += started.elapsed();
                collected.push(chunk);
            }
            Ok(())
        })();
        drop(chunk_rx);
        let generate_wall = generator.join().expect("population generator panicked");
        load_result?;
        let started = Instant::now();
        loader.finish()?;
        if let Some(dispatcher) = dispatcher {
            let stats = dispatcher.stop();
            if stats.errors > 0 {
                return Err(PlatformError(format!(
                    "{} Databus dispatch errors during prepare",
                    stats.errors
                )));
            }
        }
        // Fan the seeded state out before the clock starts.
        platform.pump_streams()?;
        load_wall += started.elapsed();
        let chunks = collected.len();
        let graph = Arc::new(SiteGraph::from_chunks(&config.graph, collected));
        let prepare_stats = PrepareStats {
            wall: prepare_start.elapsed(),
            generate_wall,
            load_wall,
            chunks,
            chunk_members,
            overlapped: true,
        };
        Self::assemble(config, platform, graph, prepare_stats)
    }

    /// The bulk path: seeds a pre-generated population — knee sweeps
    /// reuse one graph across load points so only the platform state is
    /// rebuilt per point. Funnels through the same canonical
    /// [`PopulationLoader`] as the streaming path, so both produce the
    /// identical platform state.
    pub fn prepare_with_graph(
        config: SiteBenchConfig,
        graph: Arc<SiteGraph>,
    ) -> Result<Self, PlatformError> {
        assert_eq!(
            graph.config(),
            &config.graph,
            "graph was generated from a different population config"
        );
        let platform = Arc::new(DataPlatform::with_config(config.platform.clone())?);
        let prepare_start = Instant::now();
        let mut loader = PopulationLoader::new(&platform, config.graph.companies);
        loader.load_rows(
            (0..graph.member_count())
                .map(|m| (m, graph.follows_of(m), graph.profile_of(m), graph.pymk_of(m))),
        )?;
        loader.finish()?;
        platform.pump_streams()?;
        let wall = prepare_start.elapsed();
        let prepare_stats = PrepareStats {
            wall,
            generate_wall: Duration::ZERO,
            load_wall: wall,
            chunks: 1,
            chunk_members: graph.member_count() as usize,
            overlapped: false,
        };
        Self::assemble(config, platform, graph, prepare_stats)
    }

    fn assemble(
        config: SiteBenchConfig,
        platform: Arc<DataPlatform>,
        graph: Arc<SiteGraph>,
        prepare_stats: PrepareStats,
    ) -> Result<Self, PlatformError> {
        let workload = Arc::new(SiteWorkload::new(
            graph.member_count(),
            graph.company_count(),
            config.mix,
        ));
        Ok(SiteBench {
            platform,
            graph,
            workload,
            config,
            prepare_stats,
        })
    }

    /// The prepare phase's wall-clock split.
    pub fn prepare_stats(&self) -> PrepareStats {
        self.prepare_stats
    }

    /// The prepared platform (read access for scenario composition).
    pub fn platform(&self) -> &Arc<DataPlatform> {
        &self.platform
    }

    /// The population this run drives.
    pub fn graph(&self) -> &Arc<SiteGraph> {
        &self.graph
    }

    /// Drives the closed loop: multiplexes the logical drivers onto the
    /// bounded worker pool (or the serial twin in `Deterministic` mode)
    /// alongside a watch-driven stream pump, drains every pipeline,
    /// snapshots the registry, and evaluates the SLO gates.
    pub fn run(self) -> Result<SiteBenchReport, PlatformError> {
        let SiteBench {
            platform,
            graph,
            workload,
            config,
            prepare_stats,
        } = self;
        let tiers = ["profile_read", "pymk_read", "follow_write", "activity"];
        // Create the site.* counters up front so they appear (as zeros)
        // even for ops the mix never drew.
        let scope = platform.metrics().scope("site");
        for tier in tiers {
            scope.counter(&format!("{tier}.ok"));
            scope.counter(&format!("{tier}.err"));
        }
        let consumed_counter = scope.counter("activity.consumed");
        let pump_errors = scope.counter("pump.errors");

        // Pre-generate every driver's deterministic op stream.
        let streams: Vec<Vec<SiteOp>> = (0..config.drivers as u64)
            .map(|d| workload.ops_for_driver(config.seed, d, config.ops_per_driver))
            .collect();

        // Push-style dispatch: when the platform runs sharded (Parallel),
        // the relay's SCN watch wakes the Databus subscribers through
        // bounded channels so follow fan-out latency is not a function of
        // the pump's polling period. The client-side drive lock keeps it
        // safe alongside the pump thread below — each window is still
        // delivered exactly once, so the conservation fingerprint stays
        // deterministic. Deterministic mode skips it: the serialized twin
        // must not depend on extra threads.
        let dispatcher = match config.platform.shard_mode {
            li_commons::shard::ShardMode::Parallel => Some(platform.start_stream_dispatch()),
            li_commons::shard::ShardMode::Deterministic => None,
        };

        // Background pump: production runs the stream tier continuously;
        // here a dedicated thread stands in for it during load. (The
        // dispatcher above only covers the Databus subscribers; bootstrap,
        // Espresso replication, the Kafka mirror and the warehouse still
        // ride the pump.) Wakeups are watch-driven: the relay's SCN watch
        // fires the moment primary commits land, and between commits the
        // idle backoff doubles from 50µs toward 5ms — a quiet platform
        // stops paying for a hot 200µs poll without giving up pump
        // freshness under write load.
        let stop_pump = Arc::new(AtomicBool::new(false));
        let pump_handle = {
            let platform = Arc::clone(&platform);
            let stop = Arc::clone(&stop_pump);
            let errors = pump_errors.clone();
            std::thread::Builder::new()
                .name("site-pump".into())
                .spawn(move || {
                    let trace = std::env::var_os("LI_PUMP_TRACE").is_some();
                    let mut scn_watch = platform.relay.scn_watch();
                    let mut backoff = PUMP_MIN_BACKOFF;
                    let mut iterations: u64 = 0;
                    let mut last_report = Instant::now();
                    while !stop.load(Ordering::Acquire) {
                        let pump_start = Instant::now();
                        if platform.pump_streams().is_err() {
                            errors.inc();
                        }
                        iterations += 1;
                        if trace && last_report.elapsed() > Duration::from_secs(30) {
                            eprintln!(
                                "[pump] alive: {iterations} iterations, last {:.2?}",
                                pump_start.elapsed()
                            );
                            last_report = Instant::now();
                        }
                        if scn_watch.wait_newer(backoff).is_some() {
                            backoff = PUMP_MIN_BACKOFF;
                        } else {
                            backoff = (backoff * 2).min(PUMP_MAX_BACKOFF);
                        }
                    }
                })
                .expect("spawn stream pump")
        };

        let attempted = Arc::new(AtomicU64::new(0));
        let acked = Arc::new(AtomicU64::new(0));
        // Hoist the per-tier result counters once; every driver clones
        // the same registry handles instead of re-resolving names per op.
        let tier_counters: BTreeMap<&'static str, (Counter, Counter)> = tiers
            .iter()
            .map(|&tier| {
                (
                    tier,
                    (
                        scope.counter(&format!("{tier}.ok")),
                        scope.counter(&format!("{tier}.err")),
                    ),
                )
            })
            .collect();
        let quantum = config.effective_quantum();
        let states: Vec<DriverState> = streams
            .iter()
            .map(|ops| DriverState {
                platform: Arc::clone(&platform),
                producer: Producer::new(platform.kafka_live.clone())
                    .with_partitioner(Partitioner::Keyed)
                    .with_batch_size(config.activity_batch_messages.max(1))
                    .with_batch_bytes(config.activity_batch_bytes.max(1)),
                ops: ops.clone(),
                pos: 0,
                quantum,
                hists: BTreeMap::new(),
                tier_counters: tier_counters.clone(),
                attempted: Arc::clone(&attempted),
                acked: Arc::clone(&acked),
                activity_accepted: 0,
            })
            .collect();
        // Live resharding under traffic: the configured partition moves
        // run on their own thread while the drivers load the platform, so
        // every phase of every migration races real reads and writes.
        // (The scheduler below occupies this thread in Deterministic
        // mode, so the moves cannot ride it like they used to.)
        let migration_handle = (config.migrate_partitions > 0).then(|| {
            let platform = Arc::clone(&platform);
            let count = config.migrate_partitions;
            std::thread::Builder::new()
                .name("site-migrate".into())
                .spawn(move || run_inflight_migrations(&platform, count))
                .expect("spawn migration driver")
        });
        let load_start = Instant::now();
        // M:N dispatch: hundreds of logical drivers multiplex onto a
        // bounded worker pool, each advancing one quantum of its op
        // stream per turn. Deterministic mode collapses to the serial
        // twin — identical per-driver streams, fully sequential schedule
        // — so same-seed conservation fingerprints stay byte-identical.
        let finished = match config.platform.shard_mode {
            ShardMode::Parallel => {
                let pool = FanOutPool::named("driver", config.effective_workers());
                run_on_pool(&pool, states)
            }
            ShardMode::Deterministic => run_serial(states),
        };
        let expected_flips = match migration_handle {
            Some(handle) => handle.join().expect("migration thread panicked")?,
            None => 0,
        };
        let mut tier_local: BTreeMap<&'static str, Histogram> = BTreeMap::new();
        for state in finished {
            for (tier, hist) in state.hists {
                tier_local.entry(tier).or_default().merge(&hist);
            }
        }
        let load_wall = load_start.elapsed();
        stop_pump.store(true, Ordering::Release);
        pump_handle.join().expect("pump thread panicked");
        if let Some(dispatcher) = dispatcher {
            // Joins the dispatch threads and runs a final catch-up drain;
            // dispatch delivery errors gate the run like pump errors do.
            let stats = dispatcher.stop();
            pump_errors.add(stats.errors);
        }

        // Publish the driver-side latency distributions.
        for (tier, hist) in &tier_local {
            scope.histogram(&format!("{tier}.latency_ns")).merge_from(hist);
        }

        // ---- Drain: load has stopped; every pipeline must empty. -------
        platform.pump_streams()?;
        platform.pump_streams()?;
        let mut consumed = 0u64;
        for partition in 0..platform.activity_partitions() {
            let mut consumer = platform.activity_consumer(partition)?;
            loop {
                let batch = consumer.poll().map_err(|e| PlatformError(e.to_string()))?;
                if batch.is_empty() {
                    break;
                }
                consumed += batch.len() as u64;
            }
        }
        consumed_counter.add(consumed);
        let loaded = platform.force_warehouse_load()?;
        let _ = loaded;

        let snapshot = platform.metrics_snapshot();
        let conservation = conservation_subset(&snapshot, &config);

        // ---- Gates -----------------------------------------------------
        let tier_latency: BTreeMap<String, HistogramSummary> = tier_local
            .iter()
            .map(|(tier, h)| (tier.to_string(), HistogramSummary::of(h)))
            .collect();
        let mut gates = Vec::new();
        for tier in tiers {
            let p99 = tier_latency.get(tier).map_or(0, |h| h.p99);
            let budget = config.slo.for_tier(tier).as_nanos() as u64;
            gates.push(GateResult {
                name: format!("slo.{tier}.p99"),
                passed: p99 <= budget,
                detail: format!("p99 {p99}ns vs budget {budget}ns"),
            });
        }

        let relay_lag = snapshot.gauge("databus.client.relay_lag_scns").unwrap_or(-1);
        let newest = snapshot.gauge("databus.relay.primary.newest_scn").unwrap_or(-1);
        let last_scn = snapshot.gauge("sqlstore.db.primary.last_scn").unwrap_or(-2);
        gates.push(GateResult {
            name: "databus.lag_drains".into(),
            passed: relay_lag == 0 && newest == last_scn,
            detail: format!(
                "client lag {relay_lag} scns; relay newest_scn {newest} vs primary last_scn {last_scn}"
            ),
        });

        let mut max_consumer_lag = 0i64;
        for partition in 0..platform.activity_partitions() {
            let lag = snapshot
                .gauge(&format!("kafka.consumer.{ACTIVITY_TOPIC}.{partition}.lag"))
                .unwrap_or(i64::MAX);
            max_consumer_lag = max_consumer_lag.max(lag);
        }
        // `site.activity.ok` counts messages that actually reached a
        // broker (drivers settle their batch buffers at end-of-stream),
        // so consumed == acked alone would hold even after a failed
        // flush dropped accepted sends — those land on the error
        // counter, which must therefore gate too.
        let activity_acked = snapshot.counter("site.activity.ok").unwrap_or(0);
        let activity_errors = snapshot.counter("site.activity.err").unwrap_or(0);
        gates.push(GateResult {
            name: "kafka.lag_drains".into(),
            passed: max_consumer_lag == 0 && consumed == activity_acked && activity_errors == 0,
            detail: format!(
                "max partition lag {max_consumer_lag}; consumed {consumed} vs acked {activity_acked}; activity errors {activity_errors}"
            ),
        });
        let warehouse_rows = platform.warehouse_rows() as u64;
        gates.push(GateResult {
            name: "offline.mirror_conservation".into(),
            passed: warehouse_rows == activity_acked,
            detail: format!("warehouse rows {warehouse_rows} vs acked activity {activity_acked}"),
        });

        if config.migrate_partitions > 0 {
            let flips = snapshot.counter("migration.cutover_flips").unwrap_or(0);
            let refusals = snapshot.counter("migration.cutover_refusals").unwrap_or(0);
            gates.push(GateResult {
                name: "migration.zero_loss_cutover".into(),
                passed: flips == expected_flips && refusals == 0,
                detail: format!(
                    "cutover flips {flips} vs expected {expected_flips}; refusals {refusals}"
                ),
            });
        }

        gates.push(follow_conservation_gate(&platform, &graph, &streams)?);
        gates.push(profile_conservation_gate(&platform, &graph)?);

        let write_failures = snapshot
            .counter("voldemort.client.quorum.write_failures")
            .unwrap_or(0);
        let failovers = snapshot.counter("espresso.router.failovers").unwrap_or(0);
        gates.push(GateResult {
            name: "no_partial_failures".into(),
            passed: write_failures == 0 && failovers == 0 && pump_errors.value() == 0,
            detail: format!(
                "voldemort write_failures {write_failures}; espresso failovers {failovers}; pump errors {}",
                pump_errors.value()
            ),
        });

        let ops_attempted = attempted.load(Ordering::Relaxed);
        let ops_acked = acked.load(Ordering::Relaxed);
        Ok(SiteBenchReport {
            drivers: config.drivers,
            members: graph.member_count(),
            load_wall,
            prepare: prepare_stats,
            ops_attempted,
            ops_acked,
            throughput_ops_per_sec: ops_acked as f64 / load_wall.as_secs_f64().max(1e-9),
            tier_latency,
            gates,
            snapshot,
            conservation,
        })
    }
}

/// One logical closed-loop driver as a resumable state machine: the M:N
/// scheduler steps it one quantum at a time, so hundreds of these
/// multiplex onto a handful of OS workers. Each carries its own Kafka
/// producer session (batched sends, keyed partitioning so one member's
/// events stay ordered) and its own latency histograms — no shared state
/// on the hot path beyond the op counters.
struct DriverState {
    platform: Arc<DataPlatform>,
    producer: Producer,
    ops: Vec<SiteOp>,
    pos: usize,
    quantum: usize,
    hists: BTreeMap<&'static str, Histogram>,
    tier_counters: BTreeMap<&'static str, (Counter, Counter)>,
    attempted: Arc<AtomicU64>,
    acked: Arc<AtomicU64>,
    /// Activity sends the batching producer accepted (buffered or
    /// published). Settled against the producer's published-message
    /// count at end-of-stream — see [`Resumable::step`].
    activity_accepted: u64,
}

impl DriverState {
    /// Issue, time, record — one closed-loop turn.
    fn run_op(&mut self, op: &SiteOp) {
        self.attempted.fetch_add(1, Ordering::Relaxed);
        let tier = op.tier();
        let start = Instant::now();
        let outcome: Result<(), String> = match op {
            SiteOp::ProfileRead(member) => self
                .platform
                .profile(*member)
                .map(|_| ())
                .map_err(|e| e.to_string()),
            SiteOp::PymkRead(member) => self.pymk_page(*member),
            SiteOp::Follow { member, company } => self
                .platform
                .follow_company(*member, *company)
                .map_err(|e| e.to_string()),
            SiteOp::Activity { member, event } => self
                .producer
                .send_keyed(
                    ACTIVITY_TOPIC,
                    member_row_key(*member).to_string().as_bytes(),
                    event.clone(),
                )
                .map_err(|e| e.to_string()),
        };
        let nanos = start.elapsed().as_nanos() as u64;
        self.hists.entry(tier).or_default().record(nanos);
        let (ok, err) = &self.tier_counters[tier];
        match outcome {
            Ok(()) => {
                self.acked.fetch_add(1, Ordering::Relaxed);
                // An accepted activity send may still be sitting in the
                // producer's batch buffer; its ok is provisional until the
                // end-of-stream settlement confirms the payload actually
                // reached a broker. Every other tier acks synchronously.
                if matches!(op, SiteOp::Activity { .. }) {
                    self.activity_accepted += 1;
                } else {
                    ok.inc();
                }
            }
            Err(_) => err.inc(),
        }
    }

    /// The PYMK page the way the site serves it: the Voldemort lookup for
    /// the recommendation list, then one multi-key Espresso read fanning
    /// the profile cards out across the partition masters — the op's
    /// latency covers the whole composite page.
    fn pymk_page(&self, member: u64) -> Result<(), String> {
        let Some(bytes) = self
            .platform
            .pymk_recommendations(member)
            .map_err(|e| e.to_string())?
        else {
            return Ok(());
        };
        let Some(record) = PymkRecord::from_bytes(member, &bytes) else {
            return Err(format!("member {member}: undecodable PYMK record"));
        };
        let ids: Vec<u64> = record.recommendations.iter().map(|&(id, _)| id).collect();
        if ids.is_empty() {
            return Ok(());
        }
        self.platform
            .profiles(&ids)
            .map(|_| ())
            .map_err(|e| e.to_string())
    }
}

impl Resumable for DriverState {
    fn step(&mut self) -> bool {
        let end = (self.pos + self.quantum.max(1)).min(self.ops.len());
        while self.pos < end {
            let op = self.ops[self.pos].clone();
            self.pos += 1;
            self.run_op(&op);
        }
        if self.pos < self.ops.len() {
            return false;
        }
        // Stream exhausted: push out any activity sends still buffered by
        // the batching producer, then settle the activity ledger per
        // message. `stats().messages` counts only payloads that actually
        // reached a broker (a failed publish drops its whole batch before
        // the stats update), so crediting ok from it — and moving every
        // accepted-but-unpublished payload to the error counter and out
        // of ops_acked — keeps the attempted/acked/err arithmetic exact
        // even when a flush fails with a dozen already-accepted sends
        // buffered. The flush error itself needs no separate count: each
        // lost payload is accounted individually below.
        let _ = self.producer.flush();
        let published = self.producer.stats().messages;
        let (ok, err) = &self.tier_counters["activity"];
        ok.add(published);
        let lost = self.activity_accepted.saturating_sub(published);
        if lost > 0 {
            err.add(lost);
            self.acked.fetch_sub(lost, Ordering::Relaxed);
        }
        true
    }
}

/// The in-flight partition moves for [`SiteBench::run`]: `count`
/// Voldemort partitions leave node 0, dealt round-robin across the other
/// nodes, then one Espresso profile partition moves to a free node when
/// the tier has one (replication < node count). Each move runs the full
/// phased machine — snapshot, delta catch-up, dual-write with shadow
/// reads, cutover — while the driver threads keep loading the platform.
/// Returns the number of cutovers performed, the value
/// `migration.cutover_flips` must reach for the gate to hold.
fn run_inflight_migrations(
    platform: &Arc<DataPlatform>,
    count: u32,
) -> Result<u64, PlatformError> {
    use li_commons::ring::NodeId;
    let donor = NodeId(0);
    let ring = platform.voldemort.ring();
    let peers: Vec<NodeId> = {
        let mut seen: Vec<NodeId> = (0..ring.num_partitions())
            .map(|p| ring.owner_of(li_commons::ring::PartitionId(p)))
            .filter(|&n| n != donor)
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen
    };
    let mut flips = 0u64;
    if !peers.is_empty() {
        for i in 0..count {
            let Some(&partition) = platform.voldemort.ring().partitions_of(donor).first()
            else {
                break;
            };
            platform
                .migrate_voldemort_partition(partition, peers[i as usize % peers.len()])?;
            flips += 1;
        }
    }
    if let Some((partition, to)) = profile_migration_candidate(platform)? {
        platform.migrate_profile_partition(partition, to)?;
        flips += 1;
    }
    Ok(flips)
}

/// A profile-database partition that can move: one with a master and a
/// live node not hosting any of its replicas. `None` when replication
/// already spans every node (nowhere to migrate to).
fn profile_migration_candidate(
    platform: &DataPlatform,
) -> Result<Option<(u32, li_commons::ring::NodeId)>, PlatformError> {
    let controller = platform.espresso.controller();
    let view = controller
        .external_view(crate::platform::PROFILE_DB)
        .map_err(|e| PlatformError(e.to_string()))?;
    let live = controller
        .live_nodes()
        .map_err(|e| PlatformError(e.to_string()))?;
    for (&pid, hosts) in &view.partitions {
        if view.master_of(pid).is_none() {
            continue;
        }
        if let Some(&target) = live.iter().find(|n| !hosts.contains_key(n)) {
            return Ok(Some((pid.0, target)));
        }
    }
    Ok(None)
}

/// Write conservation for follows: every member the op streams touched
/// must serve, from the Voldemort cache, exactly the union of their
/// seeded edges and their acked follow ops — each company exactly once
/// (duplicates mean double-apply; gaps mean lost writes).
fn follow_conservation_gate(
    platform: &DataPlatform,
    graph: &SiteGraph,
    streams: &[Vec<SiteOp>],
) -> Result<GateResult, PlatformError> {
    let expected = expected_follow_sets(graph, streams);
    let mut checked = 0usize;
    let mut violations = Vec::new();
    for (member, want) in &expected {
        let mut got = platform.followed_companies(*member)?;
        checked += 1;
        let got_len = got.len();
        got.sort_unstable();
        got.dedup();
        if got.len() != got_len {
            violations.push(format!("member {member}: duplicate follow entries"));
        } else if got != want.iter().copied().collect::<Vec<_>>() {
            violations.push(format!(
                "member {member}: cache has {got_len} follows, expected {}",
                want.len()
            ));
        }
        if violations.len() >= 3 {
            break;
        }
    }
    Ok(GateResult {
        name: "follow.write_conservation".into(),
        passed: violations.is_empty(),
        detail: if violations.is_empty() {
            format!("{checked} written members each exactly-once in cache")
        } else {
            violations.join("; ")
        },
    })
}

/// Every seeded profile must read back from Espresso with the generated
/// text (sampled across the population; the mix has no profile writes, so
/// the seeded text is the final text).
fn profile_conservation_gate(
    platform: &DataPlatform,
    graph: &SiteGraph,
) -> Result<GateResult, PlatformError> {
    let stride = (graph.member_count() / 64).max(1);
    let mut checked = 0usize;
    let mut bad = None;
    for member in (0..graph.member_count()).step_by(stride as usize) {
        checked += 1;
        if platform.profile(member)?.as_deref() != Some(graph.profile_of(member)) {
            bad = Some(member);
            break;
        }
    }
    Ok(GateResult {
        name: "profile.read_your_writes".into(),
        passed: bad.is_none(),
        detail: match bad {
            None => format!("{checked} sampled profiles match"),
            Some(member) => format!("member {member}: profile text diverged"),
        },
    })
}

/// The filtered snapshot backing the determinism fingerprint: keeps only
/// counters/gauges whose end-of-run values are order-independent —
/// acked-op totals, commit/window conservation counts, routing-determined
/// broker totals, and drained-lag gauges. Anything timing-dependent
/// (latency histograms, serve/poll counters, hint retries) stays out.
fn conservation_subset(snapshot: &MetricsSnapshot, config: &SiteBenchConfig) -> MetricsSnapshot {
    let platform = &config.platform;
    let mut names: Vec<String> = vec![
        "sqlstore.db.primary.commits".into(),
        "sqlstore.db.primary.last_scn".into(),
        "databus.relay.primary.windows_ingested".into(),
        "databus.relay.primary.newest_scn".into(),
        "databus.client.relay_lag_scns".into(),
        "databus.client.windows_processed".into(),
        "voldemort.client.put.ok".into(),
        "voldemort.client.quorum.write_failures".into(),
        "kafka.producer.requests".into(),
        "espresso.router.requests".into(),
        "espresso.router.failovers".into(),
    ];
    for broker in 0..platform.kafka_brokers {
        names.push(format!("kafka.broker{broker}.produce.messages"));
    }
    // Per-node put totals are routing-determined only while the ring is
    // static: with a migration in flight, writes race the cutover flip and
    // may land on either the pre- or post-flip preference list, so those
    // counters leave the fingerprint when `migrate_partitions > 0`.
    if config.migrate_partitions == 0 {
        for node in 0..platform.voldemort_nodes {
            names.push(format!("voldemort.node{node}.put.count"));
        }
    }
    for partition in 0..platform.activity_partitions {
        names.push(format!("kafka.consumer.{ACTIVITY_TOPIC}.{partition}.lag"));
    }
    let readings = snapshot
        .iter()
        .filter(|(name, value)| {
            let deterministic_kind =
                matches!(value, MetricValue::Counter(_) | MetricValue::Gauge(_));
            deterministic_kind
                && (name.starts_with("site.") || names.iter().any(|n| n == name))
        })
        .map(|(name, value)| (name.to_string(), value.clone()));
    MetricsSnapshot::from_readings(readings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_passes_gates_and_reports() {
        let mut config = SiteBenchConfig::smoke(200, 2, 60, 11);
        config.platform = PlatformConfig {
            voldemort_nodes: 2,
            kafka_brokers: 1,
            espresso_nodes: 2,
            espresso_partitions: 4,
            activity_partitions: 2,
            ..PlatformConfig::default()
        };
        let bench = SiteBench::prepare(config).unwrap();
        let report = bench.run().unwrap();
        assert!(
            report.all_gates_pass(),
            "gate failures:\n{}",
            report.summary()
        );
        assert_eq!(
            report.ops_attempted, 2 * 60,
            "closed loop issued every op"
        );
        assert_eq!(report.ops_acked, report.ops_attempted);
        assert!(report.throughput_ops_per_sec > 0.0);
        // The fingerprint excludes timing histograms but keeps the acked
        // counters.
        let fp = report.conservation_fingerprint();
        assert!(fp.contains("site.profile_read.ok"));
        assert!(!fp.contains("latency_ns"));
    }

    #[test]
    fn migration_in_flight_keeps_every_gate_green() {
        let mut config = SiteBenchConfig::smoke(200, 2, 60, 13);
        config.platform = PlatformConfig {
            voldemort_nodes: 2,
            kafka_brokers: 1,
            espresso_nodes: 2,
            espresso_partitions: 4,
            activity_partitions: 2,
            ..PlatformConfig::default()
        };
        config.migrate_partitions = 2;
        let bench = SiteBench::prepare(config).unwrap();
        let report = bench.run().unwrap();
        assert!(
            report.all_gates_pass(),
            "gate failures:\n{}",
            report.summary()
        );
        assert_eq!(report.ops_acked, report.ops_attempted);
        assert!(
            report
                .gates
                .iter()
                .any(|g| g.name == "migration.zero_loss_cutover" && g.passed),
            "migration gate missing or failed:\n{}",
            report.summary()
        );
        // Two Voldemort partitions moved off node 0; with two Espresso
        // nodes at replication two there is no free target, so the profile
        // move is skipped and the gate expects exactly the Voldemort flips.
        assert_eq!(report.snapshot.counter("migration.cutover_flips"), Some(2));
        assert_eq!(report.snapshot.counter("migration.cutover_refusals"), Some(0));
        // Timing-dependent per-node put counters leave the fingerprint on
        // migration runs; acked totals stay.
        let fp = report.conservation_fingerprint();
        assert!(fp.contains("voldemort.client.put.ok"));
        assert!(!fp.contains("voldemort.node0.put.count"));
    }
}
