//! Databus events: transaction windows, shared immutable views, and
//! server-side filters.

use li_commons::fnv::fnv1a;
use li_sqlstore::{BinlogEntry, RowChange, Scn};
use std::ops::Deref;
use std::sync::Arc;

/// One transaction's worth of change events — the unit of delivery.
///
/// "Each change is represented by a Databus CDC event which contains a
/// sequence number in the commit order of the source database, metadata,
/// and payload with the serialized change" (§III.C). Grouping the events
/// of one commit into a window is what preserves the §III.B requirements:
/// transaction boundaries, commit order, and all changes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Window {
    /// Name of the source database.
    pub source_db: String,
    /// Commit sequence number (position in the source's commit order).
    pub scn: Scn,
    /// Commit timestamp (nanoseconds).
    pub timestamp: u64,
    /// The row changes of the transaction, in statement order.
    pub changes: Vec<RowChange>,
}

impl Window {
    /// Builds a window from a source binlog entry.
    pub fn from_binlog(source_db: &str, entry: &BinlogEntry) -> Self {
        Window {
            source_db: source_db.to_string(),
            scn: entry.scn,
            timestamp: entry.timestamp,
            changes: entry.changes.clone(),
        }
    }

    /// Converts back to a binlog entry (what an Espresso slave applies).
    pub fn to_binlog(&self) -> BinlogEntry {
        BinlogEntry {
            scn: self.scn,
            timestamp: self.timestamp,
            changes: self.changes.clone(),
        }
    }

    /// Serialized size estimate in bytes (buffer accounting).
    pub fn size_estimate(&self) -> usize {
        let changes: usize = self
            .changes
            .iter()
            .map(|c| {
                let key: usize = c.key.0.iter().map(String::len).sum();
                let value = match &c.op {
                    li_sqlstore::Op::Put(row) => row.value.len() + 24,
                    li_sqlstore::Op::Delete => 0,
                };
                c.table.len() + key + value + 8
            })
            .sum();
        self.source_db.len() + 16 + changes
    }

    /// Number of change events in the window.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True when the transaction carried no changes (possible after
    /// server-side filtering).
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }
}

/// Per-window filter summary, computed once at ingest (freeze time) so a
/// filtered consumer can decide whether a window *could* contain matching
/// changes without touching the change payloads at all. Hash collisions can
/// only produce false positives (the real per-change filter still runs for
/// windows that pass), never false negatives — equal strings always hash
/// equal, so no matching change is ever skipped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FilterSummary {
    /// Sorted, deduplicated FNV-1a hashes of the table names in the window.
    tables: Vec<u64>,
    /// Sorted, deduplicated FNV-1a hashes of the resource ids (the
    /// partitioning axis) in the window.
    resources: Vec<u64>,
}

impl FilterSummary {
    /// Builds the summary for a window's changes.
    pub fn of(changes: &[RowChange]) -> Self {
        let mut tables: Vec<u64> = changes.iter().map(|c| fnv1a(c.table.as_bytes())).collect();
        tables.sort_unstable();
        tables.dedup();
        let mut resources: Vec<u64> = changes
            .iter()
            .map(|c| fnv1a(c.key.resource_id().map(str::as_bytes).unwrap_or(b"")))
            .collect();
        resources.sort_unstable();
        resources.dedup();
        FilterSummary { tables, resources }
    }

    /// True when `filter` could match at least one change in the summarized
    /// window. A `false` here is definitive (O(1)-skip the window); a
    /// `true` means the per-change filter must run.
    pub fn may_match(&self, filter: &ServerFilter) -> bool {
        if let Some(tables) = &filter.tables {
            if !tables
                .iter()
                .any(|t| self.tables.binary_search(&fnv1a(t.as_bytes())).is_ok())
            {
                return false;
            }
        }
        if let Some((num_partitions, ids)) = &filter.partitions {
            let n = u64::from((*num_partitions).max(1));
            if !self
                .resources
                .iter()
                .any(|h| ids.contains(&((h % n) as u32)))
            {
                return false;
            }
        }
        true
    }
}

/// A window frozen at ingest: the immutable event data plus everything the
/// serving path needs precomputed (size for buffer accounting, filter
/// summary for O(1) window skipping). The relay buffer, bootstrap log, and
/// every served view share one `Arc<FrozenWindow>` allocation — freezing is
/// a move, serving is a refcount bump.
#[derive(Debug, PartialEq, Eq)]
pub struct FrozenWindow {
    window: Window,
    summary: FilterSummary,
    size: usize,
}

impl FrozenWindow {
    /// Freezes a window, computing its size estimate and filter summary
    /// once. This is the single encode point of the capture path: every
    /// downstream destination (relay buffer, chained relays, bootstrap log,
    /// served consumer views) shares the result.
    pub fn freeze(window: Window) -> SharedWindow {
        let size = window.size_estimate();
        let summary = FilterSummary::of(&window.changes);
        Arc::new(FrozenWindow {
            window,
            summary,
            size,
        })
    }

    /// The immutable event data.
    pub fn window(&self) -> &Window {
        &self.window
    }

    /// Cached serialized-size estimate (buffer accounting).
    pub fn size_estimate(&self) -> usize {
        self.size
    }

    /// The ingest-time filter summary.
    pub fn summary(&self) -> &FilterSummary {
        &self.summary
    }
}

impl Deref for FrozenWindow {
    type Target = Window;

    fn deref(&self) -> &Window {
        &self.window
    }
}

/// A frozen window shared between the relay buffer and its consumers.
pub type SharedWindow = Arc<FrozenWindow>;

/// A served view of one transaction window. The unfiltered fast path hands
/// out `Shared` views that alias the relay's buffer memory (zero per-change
/// work, zero copies); filtering that actually drops changes produces an
/// `Owned` trimmed window whose surviving payload `Bytes` still alias the
/// buffer. Derefs to [`Window`], so consumers read `view.scn`,
/// `view.changes`, … unchanged.
#[derive(Debug, Clone)]
pub enum WindowView {
    /// Direct shared view of relay buffer memory.
    Shared(SharedWindow),
    /// Filter-trimmed (possibly emptied) window; payloads still share the
    /// buffer's `Bytes` allocations.
    Owned(Window),
}

impl WindowView {
    /// The window data, wherever it lives.
    pub fn as_window(&self) -> &Window {
        match self {
            WindowView::Shared(shared) => shared.window(),
            WindowView::Owned(window) => window,
        }
    }

    /// Materializes an owned window (legacy eager API).
    pub fn into_window(self) -> Window {
        match self {
            WindowView::Shared(shared) => shared.window().clone(),
            WindowView::Owned(window) => window,
        }
    }

    /// The shared frozen window, when the view is untrimmed.
    pub fn into_shared(self) -> Option<SharedWindow> {
        match self {
            WindowView::Shared(shared) => Some(shared),
            WindowView::Owned(_) => None,
        }
    }

    /// True when the view aliases relay buffer memory wholesale (the
    /// zero-copy fast path).
    pub fn is_shared(&self) -> bool {
        matches!(self, WindowView::Shared(_))
    }
}

impl Deref for WindowView {
    type Target = Window;

    fn deref(&self) -> &Window {
        self.as_window()
    }
}

impl PartialEq for WindowView {
    fn eq(&self, other: &Self) -> bool {
        self.as_window() == other.as_window()
    }
}

impl Eq for WindowView {}

impl PartialEq<Window> for WindowView {
    fn eq(&self, other: &Window) -> bool {
        self.as_window() == other
    }
}

/// The partition of a row change: a stable hash of the key's first path
/// element (the partitioning axis — Espresso's `resource_id`), mod the
/// subscriber group's partition count.
pub fn partition_of(change: &RowChange, num_partitions: u32) -> u32 {
    let basis = change
        .key
        .resource_id()
        .map(str::as_bytes)
        .unwrap_or(b"");
    (fnv1a(basis) % u64::from(num_partitions.max(1))) as u32
}

/// Server-side filter: pushed down to the relay (and bootstrap server) so
/// "multiple partitioning schemes" can be served without shipping
/// irrelevant events to the client.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerFilter {
    /// Restrict to these source tables (None = all).
    pub tables: Option<Vec<String>>,
    /// Restrict to these partitions under a `(num_partitions, ids)` mod
    /// scheme (None = all).
    pub partitions: Option<(u32, Vec<u32>)>,
}

impl ServerFilter {
    /// The pass-everything filter.
    pub fn all() -> Self {
        Self::default()
    }

    /// Filter to a set of tables.
    pub fn for_tables<I, S>(tables: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ServerFilter {
            tables: Some(tables.into_iter().map(Into::into).collect()),
            partitions: None,
        }
    }

    /// Filter to partition `id` of `num_partitions` (mod partitioning).
    pub fn for_partition(num_partitions: u32, id: u32) -> Self {
        ServerFilter {
            tables: None,
            partitions: Some((num_partitions, vec![id])),
        }
    }

    /// True when the filter passes everything (the unfiltered fast path:
    /// serving does zero per-change work).
    pub fn is_pass_all(&self) -> bool {
        self.tables.is_none() && self.partitions.is_none()
    }

    /// True when `change` passes the filter.
    pub fn matches(&self, change: &RowChange) -> bool {
        if let Some(tables) = &self.tables {
            if !tables.iter().any(|t| t == &change.table) {
                return false;
            }
        }
        if let Some((num_partitions, ids)) = &self.partitions {
            let p = partition_of(change, *num_partitions);
            if !ids.contains(&p) {
                return false;
            }
        }
        true
    }

    /// Applies the filter to a window, preserving the window (and its SCN)
    /// even when all changes are filtered out — consumers still need the
    /// checkpoint to advance.
    pub fn apply(&self, window: &Window) -> Window {
        if self.is_pass_all() {
            return window.clone();
        }
        Window {
            source_db: window.source_db.clone(),
            scn: window.scn,
            timestamp: window.timestamp,
            changes: window
                .changes
                .iter()
                .filter(|c| self.matches(c))
                .cloned()
                .collect(),
        }
    }

    /// Applies the filter to a frozen window, producing the cheapest view
    /// that is event-for-event equivalent to [`ServerFilter::apply`]:
    ///
    /// * pass-all filter → `Shared` (one `Arc` clone, zero per-change work);
    /// * summary says no change can match → `Owned` empty window without
    ///   touching a single change (the O(1) filter-skip path);
    /// * every change matches → `Shared` (the trim would be the identity);
    /// * otherwise → `Owned` trimmed window whose surviving payloads still
    ///   alias the buffer's `Bytes`.
    pub fn apply_view(&self, shared: &SharedWindow) -> WindowView {
        if self.is_pass_all() {
            return WindowView::Shared(Arc::clone(shared));
        }
        let window = shared.window();
        if !shared.summary().may_match(self) {
            return WindowView::Owned(Window {
                source_db: window.source_db.clone(),
                scn: window.scn,
                timestamp: window.timestamp,
                changes: Vec::new(),
            });
        }
        if window.changes.iter().all(|c| self.matches(c)) {
            return WindowView::Shared(Arc::clone(shared));
        }
        WindowView::Owned(Window {
            source_db: window.source_db.clone(),
            scn: window.scn,
            timestamp: window.timestamp,
            changes: window
                .changes
                .iter()
                .filter(|c| self.matches(c))
                .cloned()
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use li_sqlstore::{Op, Row, RowKey};

    fn change(table: &str, resource: &str) -> RowChange {
        RowChange {
            table: table.into(),
            key: RowKey::new([resource, "sub"]),
            op: Op::Put(Row::new(Bytes::from_static(b"v"), 1)),
        }
    }

    fn window(scn: Scn, changes: Vec<RowChange>) -> Window {
        Window {
            source_db: "primary".into(),
            scn,
            timestamp: scn * 10,
            changes,
        }
    }

    #[test]
    fn binlog_round_trip() {
        let entry = BinlogEntry {
            scn: 5,
            timestamp: 50,
            changes: vec![change("member", "42")],
        };
        let w = Window::from_binlog("primary", &entry);
        assert_eq!(w.scn, 5);
        assert_eq!(w.to_binlog(), entry);
    }

    #[test]
    fn table_filter() {
        let f = ServerFilter::for_tables(["member"]);
        assert!(f.matches(&change("member", "a")));
        assert!(!f.matches(&change("company", "a")));
        let w = window(1, vec![change("member", "a"), change("company", "b")]);
        let filtered = f.apply(&w);
        assert_eq!(filtered.len(), 1);
        assert_eq!(filtered.scn, 1, "scn preserved");
    }

    #[test]
    fn partition_filter_is_stable_and_disjoint() {
        let changes: Vec<RowChange> = (0..100)
            .map(|i| change("t", &format!("resource-{i}")))
            .collect();
        let k = 4u32;
        let mut seen = vec![0usize; k as usize];
        for c in &changes {
            let p = partition_of(c, k);
            assert_eq!(p, partition_of(c, k), "stable");
            seen[p as usize] += 1;
        }
        assert!(seen.iter().all(|&c| c > 0), "all partitions used: {seen:?}");
        // Disjoint group coverage: each change matches exactly one of the
        // k partition filters.
        for c in &changes {
            let matches = (0..k)
                .filter(|&id| ServerFilter::for_partition(k, id).matches(c))
                .count();
            assert_eq!(matches, 1);
        }
    }

    #[test]
    fn same_resource_same_partition() {
        // All sub-resources of one resource land in one partition — the
        // property that lets a partitioned consumer group preserve
        // per-resource ordering.
        let a = RowChange {
            table: "album".into(),
            key: RowKey::new(["Akon", "Trouble"]),
            op: Op::Delete,
        };
        let b = RowChange {
            table: "song".into(),
            key: RowKey::new(["Akon", "Trouble", "Locked_Up"]),
            op: Op::Delete,
        };
        assert_eq!(partition_of(&a, 16), partition_of(&b, 16));
    }

    #[test]
    fn filter_can_empty_a_window_but_keeps_scn() {
        let f = ServerFilter::for_tables(["nothing"]);
        let w = window(9, vec![change("member", "a")]);
        let filtered = f.apply(&w);
        assert!(filtered.is_empty());
        assert_eq!(filtered.scn, 9);
    }

    #[test]
    fn size_estimate_positive_and_monotonic() {
        let small = window(1, vec![change("t", "a")]);
        let big = window(1, (0..10).map(|i| change("t", &format!("r{i}"))).collect());
        assert!(small.size_estimate() > 0);
        assert!(big.size_estimate() > small.size_estimate());
    }
}
